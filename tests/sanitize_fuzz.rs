//! Differential sanitizer fuzzing: random well-formed (race-free by
//! construction) dialect programs are run under the whole ablation
//! matrix with the sanitizer on, and the set of finding kinds reported
//! under any optimized configuration must be a subset of what the
//! unoptimized `Llvm12Baseline` reports. The optimizer may remove
//! synchronization hazards (e.g. by promoting runtime globalization
//! away) but must never *introduce* one.

use omp_gpu::pipeline::{sanitize_source, SanitizeOptions};
use omp_gpu::BuildConfig;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A small integer expression over `x`, `i` with wrapping-safe
/// rendering (divisors forced odd, literals small).
#[derive(Debug, Clone)]
enum E {
    X,
    I,
    Lit(i64),
    Add(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    RemSafe(Box<E>, Box<E>),
}

impl E {
    fn to_c(&self) -> String {
        match self {
            E::X => "x".into(),
            E::I => "i".into(),
            E::Lit(v) => format!("{v}"),
            E::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            E::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            E::RemSafe(a, b) => format!("({} % (({} | 1)))", a.to_c(), b.to_c()),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::X), Just(E::I), (-20i64..20).prop_map(E::Lit)];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::RemSafe(Box::new(a), Box::new(b))),
        ]
    })
}

/// The well-formed program shapes the fuzzer draws from. Every shape is
/// race-free: threads write disjoint elements, and any cross-thread
/// read is ordered by a barrier.
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// SPMD disjoint writes: `out[i] = expr`.
    Disjoint,
    /// SPMD publish/barrier/consume: each thread writes its own slot,
    /// a barrier publishes, then each thread reads a neighbour's slot.
    PublishConsume,
    /// Generic-mode distribute + nested parallel-for, disjoint writes.
    Generic,
}

fn source(shape: Shape, e: &E, teams: u32, threads: u32) -> String {
    let n = (teams * threads) as i64;
    let header = format!(
        "// oracle-kernel: k\n// oracle-teams: {teams}\n// oracle-threads: {threads}\n\
         // oracle-arg: buf i64 {n}\n// oracle-arg: i64 3\n// oracle-arg: i64 {n}\n"
    );
    let expr = e.to_c();
    let body = match shape {
        Shape::Disjoint => format!(
            r#"
void k(long* out, long x, long n) {{
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) {{
    out[i] = {expr};
  }}
}}
"#
        ),
        Shape::PublishConsume => format!(
            r#"
void k(long* out, long x, long n) {{
  #pragma omp target parallel
  {{
    long i = (long)omp_get_thread_num();
    out[i] = {expr};
    #pragma omp barrier
    long peer = (i + 1) % (long)omp_get_num_threads();
    long v = out[peer];
    #pragma omp barrier
    out[i] = v;
  }}
}}
"#
        ),
        Shape::Generic => format!(
            r#"
void k(long* out, long x, long n) {{
  #pragma omp target teams distribute
  for (long b = 0; b < 2; b++) {{
    long base = b * (n / 2);
    #pragma omp parallel for
    for (long j = 0; j < n / 2; j++) {{
      long i = base + j;
      out[i] = {expr};
    }}
  }}
}}
"#
        ),
    };
    header + &body
}

/// The finding-kind names a run reports (plus an `error:` pseudo-kind
/// when the launch itself fails, so a config that errors out can never
/// look "cleaner" than one that runs).
fn finding_kinds(src: &str, config: BuildConfig) -> BTreeSet<String> {
    let out = sanitize_source(src, config, &SanitizeOptions::default());
    assert!(
        out.setup_error.is_none(),
        "generated program failed to build under {}: {:?}",
        config.label(),
        out.setup_error
    );
    let mut kinds: BTreeSet<String> = out
        .findings
        .iter()
        .map(|f| f.kind.name().to_string())
        .collect();
    if let Some(e) = &out.error {
        kinds.insert(format!("error:{}", e.kind.name()));
    }
    kinds
}

const OPTIMIZED: [BuildConfig; 5] = [
    BuildConfig::NoOpenmpOpt,
    BuildConfig::H2S2,
    BuildConfig::H2S2Rtc,
    BuildConfig::H2S2RtcCsm,
    BuildConfig::LlvmDev,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn optimizer_never_introduces_sanitizer_findings(
        e in expr_strategy(),
        shape_ix in 0usize..3,
        teams in 1u32..3,
        threads in prop_oneof![Just(2u32), Just(4u32)],
    ) {
        let shape = [Shape::Disjoint, Shape::PublishConsume, Shape::Generic][shape_ix];
        let src = source(shape, &e, teams, threads);
        let baseline = finding_kinds(&src, BuildConfig::Llvm12Baseline);
        for config in OPTIMIZED {
            let kinds = finding_kinds(&src, config);
            prop_assert!(
                kinds.is_subset(&baseline),
                "{} introduced findings absent at the baseline: {:?} (baseline {:?})\nprogram:\n{}",
                config.label(),
                kinds,
                baseline,
                src
            );
        }
    }
}
