//! Property-based soundness tests: random programs and random launch
//! geometries must compute identical results under every optimization
//! configuration, and must agree with a host-side evaluation.

use omp_gpu::{pipeline, BuildConfig, Device, LaunchDims, RtVal};
use proptest::prelude::*;

/// A small integer expression over three variables, mirrored between
/// the mini-C source and a host evaluator with wrapping semantics.
#[derive(Debug, Clone)]
enum E {
    X,
    Y,
    I,
    Lit(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    RemSafe(Box<E>, Box<E>),
}

impl E {
    fn to_c(&self) -> String {
        match self {
            E::X => "x".into(),
            E::Y => "y".into(),
            E::I => "i".into(),
            E::Lit(v) => format!("{v}"),
            E::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            E::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            E::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            // `| 1` keeps the divisor nonzero in both worlds.
            E::RemSafe(a, b) => format!("({} % (({} | 1)))", a.to_c(), b.to_c()),
        }
    }

    fn eval(&self, x: i64, y: i64, i: i64) -> i64 {
        match self {
            E::X => x,
            E::Y => y,
            E::I => i,
            E::Lit(v) => *v,
            E::Add(a, b) => a.eval(x, y, i).wrapping_add(b.eval(x, y, i)),
            E::Sub(a, b) => a.eval(x, y, i).wrapping_sub(b.eval(x, y, i)),
            E::Mul(a, b) => a.eval(x, y, i).wrapping_mul(b.eval(x, y, i)),
            E::RemSafe(a, b) => {
                let d = b.eval(x, y, i) | 1;
                let n = a.eval(x, y, i);
                // i64::MIN % -1 is the only remaining trap; the IR's
                // folder refuses it and the kernel would trap, so the
                // generator below keeps literals small enough that it
                // cannot occur in practice.
                n.wrapping_rem(d)
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::X),
        Just(E::Y),
        Just(E::I),
        (-50i64..50).prop_map(E::Lit),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::RemSafe(Box::new(a), Box::new(b))),
        ]
    })
}

fn kernel_source(e: &E, generic: bool) -> String {
    if generic {
        format!(
            r#"
void k(long* out, long x, long y, long n) {{
  #pragma omp target teams distribute
  for (long b = 0; b < 2; b++) {{
    long base = b * (n / 2);
    #pragma omp parallel for
    for (long j = 0; j < n / 2; j++) {{
      long i = base + j;
      out[i] = {expr};
    }}
  }}
}}
"#,
            expr = e.to_c()
        )
    } else {
        format!(
            r#"
void k(long* out, long x, long y, long n) {{
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) {{
    out[i] = {expr};
  }}
}}
"#,
            expr = e.to_c()
        )
    }
}

fn run_kernel(
    src: &str,
    cfg: BuildConfig,
    x: i64,
    y: i64,
    n: usize,
    teams: u32,
    threads: u32,
) -> Vec<i64> {
    let (m, _) = pipeline::build(src, cfg).unwrap();
    let mut dev = Device::new(&m, Default::default()).unwrap();
    let out = dev.alloc_i64(&vec![0; n]).unwrap();
    dev.launch(
        "k",
        &[
            RtVal::Ptr(out),
            RtVal::I64(x),
            RtVal::I64(y),
            RtVal::I64(n as i64),
        ],
        LaunchDims {
            teams: Some(teams),
            threads: Some(threads),
        },
    )
    .unwrap();
    dev.read_i64(out, n).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SPMD-source kernels over random expressions and geometries agree
    /// with the host evaluator under both the disabled and the full
    /// pipeline.
    #[test]
    fn spmd_kernels_match_host_eval(
        e in expr_strategy(),
        x in -100i64..100,
        y in -100i64..100,
        n in 1usize..40,
        teams in 1u32..4,
        threads in 1u32..16,
    ) {
        let src = kernel_source(&e, false);
        let expected: Vec<i64> = (0..n as i64).map(|i| e.eval(x, y, i)).collect();
        for cfg in [BuildConfig::NoOpenmpOpt, BuildConfig::LlvmDev] {
            let got = run_kernel(&src, cfg, x, y, n, teams, threads);
            prop_assert_eq!(&got, &expected, "config {:?}", cfg);
        }
    }

    /// Generic-mode kernels (worker state machine, SPMDization paths)
    /// agree across the LLVM 12 baseline, the unoptimized simplified
    /// scheme, the CSM-only pipeline, and the full pipeline.
    #[test]
    fn generic_kernels_agree_across_configs(
        e in expr_strategy(),
        x in -100i64..100,
        y in -100i64..100,
        halfn in 1usize..12,
        threads in 2u32..12,
    ) {
        let n = 2 * halfn;
        let src = kernel_source(&e, true);
        let expected: Vec<i64> = (0..n as i64).map(|i| e.eval(x, y, i)).collect();
        for cfg in [
            BuildConfig::Llvm12Baseline,
            BuildConfig::NoOpenmpOpt,
            BuildConfig::H2S2RtcCsm,
            BuildConfig::LlvmDev,
        ] {
            let got = run_kernel(&src, cfg, x, y, n, 2, threads);
            prop_assert_eq!(&got, &expected, "config {:?}", cfg);
        }
    }
}
