//! Integration tests spanning the whole crate stack:
//! frontend → analyses → OpenMP optimizations → textual IR round-trip →
//! GPU simulation.

use omp_gpu::{all_proxies, pipeline, BuildConfig, Device, LaunchDims, RtVal, Scale};

/// Every proxy module survives a print → parse → print round-trip at
/// every stage (fresh from the frontend and after full optimization).
#[test]
fn textual_ir_roundtrips_for_all_proxies() {
    for app in all_proxies(Scale::Small) {
        for config in [BuildConfig::NoOpenmpOpt, BuildConfig::LlvmDev] {
            let (m, _) = pipeline::build(&app.openmp_source(), config).unwrap();
            // Parsing renumbers value ids, so the round-trip property is
            // a fixed point after one parse: print(parse(t)) == t for
            // any t that itself came out of the parser.
            let t1 = omp_ir::printer::print_module(&m);
            let m2 = omp_ir::parser::parse_module(&t1)
                .unwrap_or_else(|e| panic!("{} {config:?}: {e}", app.name()));
            assert!(omp_ir::verifier::verify_module(&m2).is_empty());
            let t2 = omp_ir::printer::print_module(&m2);
            let m3 = omp_ir::parser::parse_module(&t2)
                .unwrap_or_else(|e| panic!("{} {config:?} (reparse): {e}", app.name()));
            let t3 = omp_ir::printer::print_module(&m3);
            assert_eq!(t2, t3, "{} under {config:?}", app.name());
        }
    }
}

/// SU3Bench's imaginary plane (not covered by the generic workload
/// verification) matches the host reference under the full pipeline.
#[test]
fn su3_imaginary_plane_is_correct() {
    use omp_benchmarks::su3bench::Su3Bench;
    use omp_benchmarks::ProxyApp;
    let app = Su3Bench::new(Scale::Small);
    let (m, _) = pipeline::build(&app.openmp_source(), BuildConfig::LlvmDev).unwrap();
    let mut dev = Device::new(&m, app.device_config()).unwrap();
    let w = app.prepare(&mut dev).unwrap();
    dev.launch(app.kernel_name(), &w.args, app.dims()).unwrap();
    let ptr_arg = |i: usize| match w.args[i] {
        RtVal::Ptr(p) => p,
        _ => panic!("arg {i} is not a pointer"),
    };
    let got = dev.read_f64(ptr_arg(5), w.out_len).unwrap();
    // Recompute the reference im plane on the host from the same device
    // buffers the kernel consumed.
    let a_re = dev.read_f64(ptr_arg(0), w.out_len).unwrap();
    let a_im = dev.read_f64(ptr_arg(1), w.out_len).unwrap();
    let b_re = dev.read_f64(ptr_arg(2), w.out_len).unwrap();
    let b_im = dev.read_f64(ptr_arg(3), w.out_len).unwrap();
    let n_sites = w.out_len / 9;
    for s in 0..n_sites {
        let base = s * 9;
        let scale = 1.0 / (1.0 + s as f64 * 0.125);
        for e in 0..9 {
            let (row, col) = (e / 3, e % 3);
            let mut im = 0.0;
            for k in 0..3 {
                im += a_re[base + row * 3 + k] * b_im[base + k * 3 + col]
                    + a_im[base + row * 3 + k] * b_re[base + k * 3 + col];
            }
            let expect = im * scale;
            let g = got[base + e];
            assert!(
                (g - expect).abs() < 1e-9,
                "im[{}]: {g} vs {expect}",
                base + e
            );
        }
    }
}

/// A device can run several launches back to back; buffers persist and
/// per-launch state (shared memory, heap) resets.
#[test]
fn repeated_launches_reset_per_launch_state() {
    let src = r#"
static void scale_cell(long* a, long i, double* t) {
  a[i] = a[i] + (long)*t;
}
void bump(long* a, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) {
    double tmp = (double)i;
    scale_cell(a, i, &tmp);
  }
}
"#;
    let (m, _) = pipeline::build(src, BuildConfig::NoOpenmpOpt).unwrap();
    let mut dev = Device::new(&m, Default::default()).unwrap();
    let n = 16usize;
    let a = dev.alloc_i64(&vec![0; n]).unwrap();
    let dims = LaunchDims {
        teams: Some(2),
        threads: Some(8),
    };
    for _ in 0..3 {
        let stats = dev
            .launch("bump", &[RtVal::Ptr(a), RtVal::I64(n as i64)], dims)
            .unwrap();
        // Runtime allocations happen every launch; the shared stack must
        // not accumulate across launches.
        assert!(stats.globalization_allocs > 0);
        assert!(stats.shared_mem_bytes < 1024);
    }
    let vals = dev.read_i64(a, n).unwrap();
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(*v, 3 * i as i64, "cell {i} after three launches");
    }
}

/// The optimizer's reports and the simulator's runtime-call statistics
/// agree: when deglobalization removes every allocation, none execute;
/// when SPMDization fires, no runtime dispatch executes.
#[test]
fn reports_agree_with_dynamic_behaviour() {
    for app in all_proxies(Scale::Small) {
        let outcome = pipeline::run_proxy(app.as_ref(), BuildConfig::LlvmDev);
        let stats = outcome.stats.expect("runs");
        let report = outcome.report.expect("optimized");
        if report.counts.heap_to_shared == 0 {
            assert_eq!(
                stats.rtl_count("__kmpc_alloc_shared"),
                0,
                "{}: h2s removed every allocation but some still ran",
                app.name()
            );
        }
        if report.counts.spmdized > 0 {
            assert_eq!(
                stats.rtl_count("__kmpc_parallel_51"),
                0,
                "{}: SPMDized kernels must not dispatch through the runtime",
                app.name()
            );
        }
    }
}

/// Internalization preserves external entry points: the original
/// external function still exists and is callable after optimization.
#[test]
fn internalization_keeps_external_symbols() {
    let src = r#"
double helper(double x) { return x * 2.0; }
void kern(double* a, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { a[i] = helper((double)i); }
}
"#;
    let (m, report) = pipeline::build(src, BuildConfig::LlvmDev).unwrap();
    assert_eq!(report.unwrap().counts.internalized, 1);
    let orig = m.function_id("helper").expect("original kept");
    assert_eq!(m.func(orig).linkage, omp_ir::Linkage::External);
    assert!(!m.func(orig).is_declaration());
    assert!(m.function_id("helper.internalized").is_some());
}
