// Seeded bug: every thread writes the same element without any
// synchronization — a textbook write/write data race. The sanitizer
// must report `data-race` on the store; see race_fixed.c for the
// clean variant.
// oracle-kernel: race
// oracle-teams: 1
// oracle-threads: 4
// oracle-arg: buf i64 4
// oracle-arg: i64 4
void race(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    out[0] = me;
  }
}
