// Fixed variant of race.c: each thread owns a distinct element, so
// there is no conflicting access and the sanitizer must stay silent.
// oracle-kernel: race
// oracle-teams: 1
// oracle-threads: 4
// oracle-arg: buf i64 4
// oracle-arg: i64 4
void race(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    out[me] = me;
  }
}
