// Seeded bug: every thread reaches *a* barrier, but thread 0 parks at
// a different barrier site than its peers. The region completes (the
// counts balance), yet the synchronization is structurally divergent —
// the sanitizer must report `barrier-divergence`. See
// divergent_barrier_fixed.c for the clean variant.
// oracle-kernel: divb
// oracle-teams: 1
// oracle-threads: 4
// oracle-arg: buf i64 8
// oracle-arg: i64 8
void divb(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    if (me == 0) {
      out[4] = 1;
      #pragma omp barrier
    } else {
      #pragma omp barrier
    }
    out[me] = out[4];
  }
}
