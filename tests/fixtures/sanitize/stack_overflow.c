// Seeded degradation: this kernel globalizes a capture struct per
// distribute iteration (when the mid-end does not promote it). Run
// with a fault plan capping the shared globalization stack
// (`shared_stack_limit: 0`), every allocation falls back to the device
// heap — the run must still complete with correct results, and the
// sanitizer must surface each fallback as a `shared-stack-fallback`
// note (not an error).
// oracle-kernel: spill
// oracle-teams: 2
// oracle-threads: 4
// oracle-arg: buf f64 16
// oracle-arg: i64 4
void spill(double* a, long n) {
  #pragma omp target teams distribute
  for (long b = 0; b < n; b++) {
    double tv = (double)(b + 1);
    #pragma omp parallel for
    for (long t = 0; t < 4; t++) {
      a[b * 4 + t] = tv;
    }
  }
}
