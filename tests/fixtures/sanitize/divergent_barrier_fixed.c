// Fixed variant of divergent_barrier.c: every thread parks at the same
// barrier site, so the synchronization is convergent and the sanitizer
// must stay silent.
// oracle-kernel: divb
// oracle-teams: 1
// oracle-threads: 4
// oracle-arg: buf i64 8
// oracle-arg: i64 8
void divb(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    if (me == 0) {
      out[4] = 1;
    }
    #pragma omp barrier
    out[me] = out[4];
  }
}
