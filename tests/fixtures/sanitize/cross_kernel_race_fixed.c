// Clean variant of cross_kernel_race.c: the same two kernels, ordered
// by `depend(inout: a)` edges. The dependency serializes the writers,
// so the sanitizer must stay silent.
// oracle-kernel: xrace
// oracle-arg: buf f64 32
// oracle-arg: i64 32
void xrace(double* a, long n) {
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) {
    a[i] = 1.0;
  }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) {
    a[i] = a[i] + 1.0;
  }
  #pragma omp taskwait
}
