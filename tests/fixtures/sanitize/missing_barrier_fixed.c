// Fixed variant of missing_barrier.c: the barrier orders thread 0's
// publication before every read, so the accesses fall into different
// barrier epochs and the sanitizer must stay silent.
// oracle-kernel: prodcons
// oracle-teams: 1
// oracle-threads: 4
// oracle-arg: buf i64 8
// oracle-arg: i64 8
void prodcons(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    if (me == 0) {
      out[4] = 7;
    }
    #pragma omp barrier
    long v = out[4];
    out[me] = v;
  }
}
