// Seeded bug: two `nowait` target kernels write the same buffer with
// no `depend` edge or `taskwait` between them — a cross-kernel
// write/write race on the launch plan. Each kernel is internally
// race-free; only the missing ordering edge is wrong. The sanitizer
// must report `cross-kernel-race` on the unordered pair; see
// cross_kernel_race_fixed.c for the clean variant.
// oracle-kernel: xrace
// oracle-arg: buf f64 32
// oracle-arg: i64 32
void xrace(double* a, long n) {
  #pragma omp target teams distribute parallel for nowait num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) {
    a[i] = 1.0;
  }
  #pragma omp target teams distribute parallel for nowait num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) {
    a[i] = a[i] + 1.0;
  }
  #pragma omp taskwait
}
