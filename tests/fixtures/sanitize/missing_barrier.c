// Seeded bug: thread 0 publishes a value that every thread then reads,
// with no barrier ordering the publication before the reads — a
// read/write data race in the same barrier epoch. The sanitizer must
// report `data-race`; see missing_barrier_fixed.c for the clean
// variant.
// oracle-kernel: prodcons
// oracle-teams: 1
// oracle-threads: 4
// oracle-arg: buf i64 8
// oracle-arg: i64 8
void prodcons(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    if (me == 0) {
      out[4] = 7;
    }
    long v = out[4];
    out[me] = v;
  }
}
