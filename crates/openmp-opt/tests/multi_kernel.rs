//! Modules with several kernels: folding must respect per-kernel
//! reachability ("every kernel reaching a check must agree",
//! Section IV-C), and kernels of different modes coexist.

use omp_frontend::{compile, FrontendOptions};
use omp_gpusim::{Device, LaunchDims, RtVal};
use omp_ir::ExecMode;
use omp_opt::OpenMpOptConfig;

const TWO_KERNELS: &str = r#"
static double shared_helper(double v) {
  return v * (double)omp_get_num_threads();
}
void spmd_k(double* out, long n) {
  #pragma omp target teams distribute parallel for thread_limit(8)
  for (long i = 0; i < n; i++) {
    out[i] = shared_helper((double)i);
  }
}
void generic_k(double* out, long n) {
  #pragma omp target teams
  {
    #pragma omp parallel for
    for (long i = 0; i < n; i++) {
      out[i] = shared_helper((double)i) + 100.0;
    }
  }
}
"#;

#[test]
fn shared_helper_blocks_mode_specific_folds() {
    let mut m = compile(TWO_KERNELS, &FrontendOptions::default()).unwrap();
    assert_eq!(m.kernels.len(), 2);
    let report = omp_opt::run(&mut m, &OpenMpOptConfig::default());
    omp_ir::verifier::assert_valid(&m);
    // The generic kernel SPMDizes, after which both kernels are SPMD
    // and mode-dependent folds in the shared helper become legal again
    // on the second folding round. What must NOT happen is folding
    // num_threads to the spmd kernel's thread_limit inside the shared
    // helper, because the generic kernel reaches it with a different
    // team size.
    let _ = report;
    let text = omp_ir::printer::print_module(&m);
    let helper_sec = text
        .split("define")
        .find(|s| s.contains("shared_helper"))
        .unwrap_or("");
    assert!(
        helper_sec.contains("omp_get_num_threads") || !helper_sec.contains("i32 8"),
        "num_threads must not fold to one kernel's thread_limit in shared code"
    );
}

#[test]
fn both_kernels_execute_correctly_after_optimization() {
    let mut m = compile(TWO_KERNELS, &FrontendOptions::default()).unwrap();
    omp_opt::run(&mut m, &OpenMpOptConfig::default());
    let mut dev = Device::new(&m, Default::default()).unwrap();
    let n = 8usize;
    let a = dev.alloc_f64(&vec![0.0; n]).unwrap();
    let b = dev.alloc_f64(&vec![0.0; n]).unwrap();
    let dims = LaunchDims {
        teams: Some(1),
        threads: Some(8),
    };
    dev.launch("spmd_k", &[RtVal::Ptr(a), RtVal::I64(n as i64)], dims)
        .unwrap();
    dev.launch("generic_k", &[RtVal::Ptr(b), RtVal::I64(n as i64)], dims)
        .unwrap();
    let va = dev.read_f64(a, n).unwrap();
    let vb = dev.read_f64(b, n).unwrap();
    for i in 0..n {
        assert_eq!(va[i], i as f64 * 8.0, "spmd kernel element {i}");
        assert_eq!(vb[i], i as f64 * 8.0 + 100.0, "generic kernel element {i}");
    }
}

#[test]
fn mixed_modes_block_exec_mode_folding_until_spmdization() {
    // With SPMDization disabled, one generic + one SPMD kernel disagree
    // on the mode, so is_spmd checks in shared code must not fold.
    let src = r#"
static double probe(double v, double* cell) {
  cell[0] = v;
  return cell[0];
}
void spmd_k(double* out, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) {
    double c = 0.0;
    out[i] = probe((double)i, &c);
  }
}
void generic_k(double* out, long n) {
  #pragma omp target teams distribute
  for (long i = 0; i < n; i++) {
    double c = 0.0;
    out[i] = probe((double)i, &c) + 7.0;
  }
}
"#;
    let cfg = OpenMpOptConfig {
        disable_spmdization: true,
        ..OpenMpOptConfig::default()
    };
    let mut m = compile(src, &FrontendOptions::default()).unwrap();
    let modes: Vec<ExecMode> = m.kernels.iter().map(|k| k.exec_mode).collect();
    assert_eq!(modes, vec![ExecMode::Spmd, ExecMode::Generic]);
    omp_opt::run(&mut m, &cfg);
    omp_ir::verifier::assert_valid(&m);
    // Still one of each after the pipeline (SPMDization disabled).
    let modes: Vec<ExecMode> = m.kernels.iter().map(|k| k.exec_mode).collect();
    assert_eq!(modes, vec![ExecMode::Spmd, ExecMode::Generic]);
}
