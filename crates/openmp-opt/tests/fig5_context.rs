//! The paper's Figures 5 and 6: the same generic device function
//! (Figure 4a) is optimized differently depending on its calling
//! context.
//!
//! * Called only from single-threaded (teams) context (Fig. 5b): `Lcl`
//!   moves to the stack and `Arg` — which escapes into an unknown
//!   callee — moves to *static shared memory* (Fig. 6a).
//! * Called (also) from a parallel context (Fig. 5c): `Arg`'s runtime
//!   allocation must stay, with an OMP112 remark (Fig. 6b / Fig. 8).

use omp_frontend::{compile, FrontendOptions};
use omp_opt::remarks::ids;
use omp_opt::OpenMpOptConfig;

const DEVICE_FUNCTION: &str = r#"
void unknown(float* p);
static double combine(float* a, noescape double* b) {
  unknown(a);
  return (double)*a + *b;
}
static double device_function(float arg) {
  double lcl = 1.5;
  return combine(&arg, &lcl);
}
"#;

fn counts_for(call_site: &str) -> (usize, usize, usize, omp_opt::Remarks) {
    let src = format!("{DEVICE_FUNCTION}\n{call_site}");
    let mut m = compile(&src, &FrontendOptions::default()).unwrap();
    // SPMDization would devirtualize and change the context; the
    // figure's scenario is about the *generic* calling contexts, so run
    // with SPMDization disabled.
    let cfg = OpenMpOptConfig {
        disable_spmdization: true,
        ..OpenMpOptConfig::default()
    };
    let r = omp_opt::run(&mut m, &cfg);
    omp_ir::verifier::assert_valid(&m);
    (
        r.counts.heap_to_stack,
        r.counts.heap_to_shared,
        r.remarks.count(ids::DATA_SHARING_REMAINS),
        r.remarks,
    )
}

#[test]
fn one_thread_only_context_gives_stack_plus_shared() {
    // Figure 5b: the only call site runs on the team main thread.
    let (h2s, h2shared, omp112, remarks) = counts_for(
        r#"
void one_thread_only(double* out, long n) {
  #pragma omp target teams distribute
  for (long i = 0; i < n; i++) {
    out[i] = device_function((float)i);
  }
}
"#,
    );
    // Lcl -> stack (OMP110); Arg -> static shared memory (OMP111).
    assert_eq!(h2s, 1, "{remarks:#?}");
    assert_eq!(h2shared, 1, "{remarks:#?}");
    assert_eq!(omp112, 0);
    assert_eq!(remarks.count(ids::MOVED_TO_STACK), 1);
    assert_eq!(remarks.count(ids::MOVED_TO_SHARED), 1);
}

#[test]
fn many_threads_context_keeps_runtime_allocation() {
    // Figure 5c: the device function is reached from a parallel region,
    // so the escaping Arg cannot get a single static shared slot.
    let (h2s, h2shared, omp112, remarks) = counts_for(
        r#"
void many_threads(double* out, long n) {
  #pragma omp target teams
  {
    #pragma omp parallel for
    for (long i = 0; i < n; i++) {
      out[i] = device_function((float)i);
    }
  }
}
"#,
    );
    // Lcl still stackifies; Arg keeps its runtime allocation and the
    // user gets the Figure 8 remark pair. (The kernel's own main-thread
    // capture struct may still be staticized — that is the one
    // permissible OMP111 here, and it must be on the kernel, not on
    // device_function.)
    assert_eq!(h2s, 1, "{remarks:#?}");
    assert!(h2shared <= 1, "{remarks:#?}");
    assert!(omp112 >= 1, "{remarks:#?}");
    assert_eq!(remarks.count(ids::MOVED_TO_STACK), 1);
    for r in remarks.with_id(ids::MOVED_TO_SHARED) {
        assert!(
            r.function.contains("__omp_offloading"),
            "Arg must not be staticized in a parallel context: {r}"
        );
    }
}
