//! End-to-end: source → IR → OpenMP optimizations → simulated GPU.
//!
//! The central soundness property (which the paper claims and we can
//! actually check): every optimization configuration computes the same
//! results, and the full pipeline is faster than no pipeline.

use omp_frontend::{compile, FrontendOptions, GlobalizationScheme};
use omp_gpusim::{Device, DeviceConfig, LaunchDims, RtVal};
use omp_ir::ExecMode;
use omp_opt::OpenMpOptConfig;

const FIG1_LIKE: &str = r#"
static double compute(long seed) {
  return (double)(seed * 7 % 13) + 0.5;
}
void kern(double* out, long nblocks, long nthreads) {
  #pragma omp target teams distribute
  for (long b = 0; b < nblocks; b++) {
    double team_val = compute(b);
    #pragma omp parallel for
    for (long t = 0; t < nthreads; t++) {
      double thread_val = compute(t);
      out[b * nthreads + t] = team_val * 100.0 + thread_val;
    }
  }
}
"#;

fn compile_opt(src: &str, cfg: &OpenMpOptConfig) -> (omp_ir::Module, omp_opt::OptReport) {
    let mut m = compile(src, &FrontendOptions::default()).unwrap();
    omp_ir::verifier::assert_valid(&m);
    let report = omp_opt::run(&mut m, cfg);
    omp_ir::verifier::assert_valid(&m);
    (m, report)
}

fn run_fig1(m: &omp_ir::Module) -> (Vec<f64>, omp_gpusim::KernelStats) {
    let (nb, nt) = (6i64, 8i64);
    let mut dev = Device::new(m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_f64(&vec![0.0; (nb * nt) as usize]).unwrap();
    let stats = dev
        .launch(
            "kern",
            &[RtVal::Ptr(out), RtVal::I64(nb), RtVal::I64(nt)],
            LaunchDims {
                teams: Some(2),
                threads: Some(8),
            },
        )
        .unwrap();
    (dev.read_f64(out, (nb * nt) as usize).unwrap(), stats)
}

#[test]
fn all_configurations_compute_identical_results() {
    let configs = [
        ("disabled", OpenMpOptConfig::all_disabled()),
        ("default", OpenMpOptConfig::default()),
        (
            "no-spmd",
            OpenMpOptConfig {
                disable_spmdization: true,
                ..OpenMpOptConfig::default()
            },
        ),
        (
            "no-deglob",
            OpenMpOptConfig {
                disable_deglobalization: true,
                ..OpenMpOptConfig::default()
            },
        ),
        (
            "no-fold",
            OpenMpOptConfig {
                disable_folding: true,
                ..OpenMpOptConfig::default()
            },
        ),
        (
            "no-csm",
            OpenMpOptConfig {
                disable_state_machine_rewrite: true,
                disable_spmdization: true,
                ..OpenMpOptConfig::default()
            },
        ),
        (
            "no-capture-chase",
            OpenMpOptConfig {
                spmd_capture_heap_to_stack: false,
                ..OpenMpOptConfig::default()
            },
        ),
    ];
    let (reference, _) = run_fig1(&compile_opt(FIG1_LIKE, &OpenMpOptConfig::all_disabled()).0);
    for (name, cfg) in configs {
        let (m, _) = compile_opt(FIG1_LIKE, &cfg);
        let (vals, _) = run_fig1(&m);
        assert_eq!(vals, reference, "configuration `{name}` changed results");
    }
    // Legacy frontend too.
    let mut m = compile(
        FIG1_LIKE,
        &FrontendOptions {
            globalization: GlobalizationScheme::Legacy,
            ..FrontendOptions::default()
        },
    )
    .unwrap();
    omp_passes::run_pipeline(&mut m);
    let (vals, _) = run_fig1(&m);
    assert_eq!(vals, reference, "legacy frontend changed results");
}

#[test]
fn full_pipeline_is_faster_and_spmdizes() {
    let (m_off, _) = compile_opt(FIG1_LIKE, &OpenMpOptConfig::all_disabled());
    let (m_on, report) = compile_opt(FIG1_LIKE, &OpenMpOptConfig::default());
    assert_eq!(report.counts.spmdized, 1);
    assert_eq!(m_on.kernels[0].exec_mode, ExecMode::Spmd);
    let (_, s_off) = run_fig1(&m_off);
    let (_, s_on) = run_fig1(&m_on);
    assert!(
        s_on.cycles * 2 < s_off.cycles,
        "expected at least 2x: {} vs {}",
        s_on.cycles,
        s_off.cycles
    );
    // No runtime globalization calls remain.
    assert_eq!(
        s_on.globalization_allocs, 0,
        "h2s should remove allocations"
    );
    // The worker state machine is gone: no generic dispatches.
    assert_eq!(s_on.parallel_regions, 0);
}

#[test]
fn csm_alone_removes_indirect_calls() {
    let cfg = OpenMpOptConfig {
        disable_spmdization: true,
        ..OpenMpOptConfig::default()
    };
    let (m, report) = compile_opt(FIG1_LIKE, &cfg);
    assert_eq!(report.counts.spmdized, 0);
    assert_eq!(report.counts.csm_rewritten, 1);
    let (_, stats) = run_fig1(&m);
    assert_eq!(stats.indirect_calls, 0, "cascade should dispatch directly");
    // Register count benefits from the eliminated function pointers.
    let (m_nocsm, _) = compile_opt(
        FIG1_LIKE,
        &OpenMpOptConfig {
            disable_spmdization: true,
            disable_state_machine_rewrite: true,
            ..OpenMpOptConfig::default()
        },
    );
    let (_, s_nocsm) = run_fig1(&m_nocsm);
    assert!(s_nocsm.indirect_calls > 0);
    assert!(
        stats.registers < s_nocsm.registers,
        "CSM should reduce the register estimate ({} vs {})",
        stats.registers,
        s_nocsm.registers
    );
}

#[test]
fn spmdization_beats_csm_for_light_regions() {
    let csm_only = OpenMpOptConfig {
        disable_spmdization: true,
        ..OpenMpOptConfig::default()
    };
    let (m_csm, _) = compile_opt(FIG1_LIKE, &csm_only);
    let (m_full, _) = compile_opt(FIG1_LIKE, &OpenMpOptConfig::default());
    let (_, s_csm) = run_fig1(&m_csm);
    let (_, s_full) = run_fig1(&m_full);
    assert!(
        s_full.cycles < s_csm.cycles,
        "SPMDization ({}) should beat CSM ({})",
        s_full.cycles,
        s_csm.cycles
    );
}

#[test]
fn remarks_tell_the_fig8_story() {
    // Paper Figure 8: a device function whose Arg escapes into an
    // unknown callee gets OMP112 (data sharing) while Lcl gets OMP110
    // (moved to stack).
    let src = r#"
void unknown(float* p);
double combine(float* a, noescape double* b) {
  unknown(a);
  return (double)*a + *b;
}
void kern(double* out, long n) {
  #pragma omp target teams distribute
  for (long b = 0; b < n; b++) {
    float arg = (float)b;
    double lcl = 1.5;
    out[b] = combine(&arg, &lcl);
  }
}
"#;
    let (_, report) = compile_opt(src, &OpenMpOptConfig::default());
    use omp_opt::remarks::ids;
    assert!(
        report.remarks.count(ids::MOVED_TO_STACK) >= 1,
        "{:#?}",
        report.remarks
    );
    assert!(
        report.remarks.count(ids::DATA_SHARING_REMAINS) >= 1
            || report.remarks.count(ids::MOVED_TO_SHARED) >= 1
    );
    let text: Vec<String> = report.remarks.all().iter().map(|r| r.to_string()).collect();
    assert!(text.iter().any(|t| t.contains("[OMP110]")));
}

#[test]
fn spmd_source_kernels_get_init_fold_and_no_worker_machinery() {
    let src = r#"
void axpy(double* x, double* y, double a, long n) {
  #pragma omp target teams distribute parallel for thread_limit(32)
  for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
}
"#;
    let (m, report) = compile_opt(src, &OpenMpOptConfig::default());
    assert!(report.counts.folds_exec_mode >= 1, "{:?}", report.counts);
    assert!(report.counts.folds_launch_params >= 1);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let n = 64usize;
    let x = dev.alloc_f64(&vec![1.0; n]).unwrap();
    let y = dev.alloc_f64(&vec![2.0; n]).unwrap();
    let stats = dev
        .launch(
            "axpy",
            &[
                RtVal::Ptr(x),
                RtVal::Ptr(y),
                RtVal::F64(3.0),
                RtVal::I64(n as i64),
            ],
            LaunchDims {
                teams: Some(2),
                threads: Some(32),
            },
        )
        .unwrap();
    assert_eq!(dev.read_f64(y, n).unwrap(), vec![5.0; n]);
    assert_eq!(stats.indirect_calls, 0);
}

#[test]
fn guarded_side_effects_execute_exactly_once() {
    // After SPMDization, main-thread stores must not be replicated.
    let src = r#"
void kern(long* counter, double* out, long nb, long nt) {
  #pragma omp target teams distribute
  for (long b = 0; b < nb; b++) {
    counter[b] = counter[b] + 1; // guarded side effect
    #pragma omp parallel for
    for (long t = 0; t < nt; t++) {
      out[b * nt + t] = (double)counter[b];
    }
  }
}
"#;
    let (m, report) = compile_opt(src, &OpenMpOptConfig::default());
    assert_eq!(report.counts.spmdized, 1);
    assert!(report.counts.guard_regions >= 1);
    let (nb, nt) = (4i64, 8i64);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let counter = dev.alloc_i64(&vec![0; nb as usize]).unwrap();
    let out = dev.alloc_f64(&vec![0.0; (nb * nt) as usize]).unwrap();
    dev.launch(
        "kern",
        &[
            RtVal::Ptr(counter),
            RtVal::Ptr(out),
            RtVal::I64(nb),
            RtVal::I64(nt),
        ],
        LaunchDims {
            teams: Some(1),
            threads: Some(nt as u32),
        },
    )
    .unwrap();
    let counts = dev.read_i64(counter, nb as usize).unwrap();
    assert_eq!(
        counts,
        vec![1; nb as usize],
        "guards must not replicate stores"
    );
    let vals = dev.read_f64(out, (nb * nt) as usize).unwrap();
    assert!(vals.iter().all(|&v| v == 1.0));
}

#[test]
fn optimizer_is_idempotent() {
    // Running the pipeline twice must be a no-op the second time:
    // same IR text, no new transformations.
    {
        let src = FIG1_LIKE;
        let mut m = compile(src, &FrontendOptions::default()).unwrap();
        let r1 = omp_opt::run(&mut m, &OpenMpOptConfig::default());
        let t1 = omp_ir::printer::print_module(&m);
        let r2 = omp_opt::run(&mut m, &OpenMpOptConfig::default());
        let t2 = omp_ir::printer::print_module(&m);
        assert_eq!(t1, t2, "second run changed the module");
        assert_eq!(r2.counts.heap_to_stack, 0);
        assert_eq!(r2.counts.heap_to_shared, 0);
        assert_eq!(r2.counts.spmdized, 0);
        assert!(r1.counts.spmdized > 0);
    }
}

#[test]
fn optimizer_accepts_parsed_back_modules() {
    // The textual format carries enough information (kernel metadata,
    // attributes) for the optimizer to run on a re-parsed module.
    let mut m = compile(FIG1_LIKE, &FrontendOptions::default()).unwrap();
    let text = omp_ir::printer::print_module(&m);
    let mut reparsed = omp_ir::parser::parse_module(&text).unwrap();
    let direct = omp_opt::run(&mut m, &OpenMpOptConfig::default());
    let via_text = omp_opt::run(&mut reparsed, &OpenMpOptConfig::default());
    assert_eq!(direct.counts.spmdized, via_text.counts.spmdized);
    assert_eq!(direct.counts.heap_to_stack, via_text.counts.heap_to_stack);
    omp_ir::verifier::assert_valid(&reparsed);
}
