//! # omp-opt
//!
//! The paper's contribution: OpenMP-aware inter-procedural analyses and
//! optimizations over `omp-ir`, reproducing LLVM's `OpenMPOpt` pass as
//! described in *"Efficient Execution of OpenMP on GPUs"* (CGO 2022):
//!
//! * aggressive [`internalize`]-ation for full caller visibility;
//! * [`spmdization`] of generic-mode kernels with side-effect guard
//!   grouping (Figure 7), value broadcasts, and parallel-region
//!   devirtualization;
//! * deglobalization: [`heap_to_stack`] and [`heap_to_shared`]
//!   (Section IV-A, Figures 4–6);
//! * the custom [`state_machine`] rewrite eliminating function pointers
//!   and indirect dispatch (Section IV-B2);
//! * OpenMP runtime-call [`folding`] (Section IV-C);
//! * optimization [`remarks`] with `OMPxxx` identifiers and OpenMP 5.1
//!   assumption handling (Section IV-D).
//!
//! [`run`] drives everything in the order the paper's pipeline uses and
//! returns the per-category counts of the paper's Figure 9.
//!
//! Every remark additionally carries a structured payload — emitting
//! pass, enclosing function, call site, action verb, and bytes moved —
//! serialized as stable JSON lines ([`Remarks::to_json_lines`]); see
//! `docs/remarks.md` for the format contract. [`OptReport::pass_stats`]
//! folds the stream into per-pass transformed/missed/bytes-moved
//! counters consumed by the differential oracle (`ompgpu verify`).

pub mod config;
pub mod folding;
pub mod heap_to_shared;
pub mod heap_to_stack;
pub mod internalize;
pub mod remarks;
pub mod spmdization;
pub mod state_machine;

pub use config::OpenMpOptConfig;
pub use remarks::{actions, passes, Remark, RemarkKind, Remarks};

use omp_analysis::{CallGraph, ExecutionDomains};
use omp_ir::{FuncId, InstId, InstKind, Module, RtlFn, Value};
use std::collections::HashSet;

/// Optimization statistics: the columns of the paper's Figure 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptCounts {
    /// Externally visible functions duplicated for analysis precision.
    pub internalized: usize,
    /// Globalized variables moved to the stack (h2s).
    pub heap_to_stack: usize,
    /// Globalized variables moved to static shared memory.
    pub heap_to_shared: usize,
    /// Generic kernels converted to SPMD mode.
    pub spmdized: usize,
    /// Generic kernels where a custom state machine was possible
    /// (reported in parentheses when SPMDization obsoletes it).
    pub csm_possible: usize,
    /// Custom state machines actually generated (no fallback).
    pub csm_rewritten: usize,
    /// Custom state machines that kept the indirect fallback.
    pub csm_with_fallback: usize,
    /// Execution-mode / thread-execution runtime calls folded (EM).
    pub folds_exec_mode: usize,
    /// Parallel-level runtime calls folded (PL).
    pub folds_parallel_level: usize,
    /// Launch-parameter runtime calls folded.
    pub folds_launch_params: usize,
    /// Guard regions emitted by SPMDization (after grouping).
    pub guard_regions: usize,
    /// Values broadcast out of guard regions.
    pub broadcasts: usize,
}

/// Result of one optimizer run.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// Figure 9 counters.
    pub counts: OptCounts,
    /// All emitted remarks (Section IV-D).
    pub remarks: Remarks,
    /// Cumulative statistics of the cleanup pipeline rounds (mem2reg,
    /// constprop, DCE, simplify-cfg) run between the OpenMP passes.
    pub cleanup: omp_passes::PipelineStats,
    /// Per-stage timing and IR-size deltas for the mid-end schedule, in
    /// execution order (empty unless the driving pass manager records
    /// them). Printed by `ompgpu --time-passes`.
    pub pass_timings: Vec<PassTiming>,
}

/// Wall time and IR-size delta of one mid-end stage. Stages that run
/// several times (the GVN → LICM → cleanup fixpoint rounds) are merged
/// into one entry: wall time and `runs` accumulate, `*_before` keeps the
/// first observation and `*_after` the last.
///
/// Wall time is the only non-deterministic field; everything folded into
/// determinism-compared artifacts (remarks, profiles) must use the IR
/// deltas only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTiming {
    /// Stable stage label (e.g. `early-inline`, `openmp-opt`, `gvn`).
    pub pass: String,
    /// Accumulated wall time over all runs, in nanoseconds.
    pub wall_nanos: u64,
    /// Number of times the stage ran.
    pub runs: u32,
    /// Live instructions before the first run.
    pub insts_before: usize,
    /// Live instructions after the last run.
    pub insts_after: usize,
    /// Basic blocks before the first run.
    pub blocks_before: usize,
    /// Basic blocks after the last run.
    pub blocks_after: usize,
    /// Functions before the first run.
    pub funcs_before: usize,
    /// Functions after the last run.
    pub funcs_after: usize,
}

/// Per-pass statistics, derived from the structured remarks and Figure 9
/// counters. One row per pass in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStat {
    /// Stable pass name (see [`remarks::passes`]).
    pub pass: &'static str,
    /// Transformations performed.
    pub transformed: usize,
    /// Opportunities identified but missed.
    pub missed: usize,
    /// Bytes moved by the pass (deglobalization only).
    pub bytes_moved: u64,
}

impl OptReport {
    /// Per-pass statistics in pipeline order. `internalize` counts come
    /// from [`OptCounts`] (the pass emits no per-site remarks); every
    /// other row is aggregated from the structured remarks.
    pub fn pass_stats(&self) -> Vec<PassStat> {
        remarks::passes::ALL
            .iter()
            .map(|&pass| {
                let rs = self.remarks.for_pass(pass);
                let transformed = if pass == remarks::passes::INTERNALIZE {
                    self.counts.internalized
                } else {
                    rs.iter().filter(|r| r.kind == RemarkKind::Passed).count()
                };
                PassStat {
                    pass,
                    transformed,
                    missed: rs.iter().filter(|r| r.kind == RemarkKind::Missed).count(),
                    bytes_moved: self.remarks.bytes_moved(pass),
                }
            })
            .collect()
    }
}

/// Runs the OpenMP optimization pipeline on `m`.
pub fn run(m: &mut Module, cfg: &OpenMpOptConfig) -> OptReport {
    let mut report = OptReport::default();

    // 0. Early cleanup: promote memory to SSA so the inter-procedural
    //    analyses see through parameter cells (LLVM runs SROA/mem2reg
    //    before OpenMPOpt for the same reason).
    if cfg.run_cleanup_pipeline {
        accumulate(&mut report.cleanup, omp_passes::run_pipeline(m));
    }

    // 1. Internalization.
    if !cfg.disable_internalization {
        report.counts.internalized = internalize::run_with_remarks(m, &mut report.remarks);
    }

    // 2. Snapshot main-thread-only allocation facts and recursion before
    //    SPMDization rewrites control flow.
    let (main_only_allocs, recursive) = collect_alloc_facts(m);

    // 3. Custom-state-machine feasibility (analysis only, for Figure 9's
    //    parenthesized counts).
    report.counts.csm_possible = state_machine::possible(m);

    // 4. SPMDization.
    if !cfg.disable_spmdization {
        let r = spmdization::run_with_grouping(m, !cfg.disable_guard_grouping, &mut report.remarks);
        report.counts.spmdized = r.spmdized;
        report.counts.guard_regions = r.guard_regions;
        report.counts.broadcasts = r.broadcasts;
    }

    // 5. Deglobalization: HeapToStack (with capture chasing after
    //    devirtualization), then HeapToShared for the rest.
    if !cfg.disable_deglobalization {
        let h2s = heap_to_stack::run(m, cfg.spmd_capture_heap_to_stack, &mut report.remarks);
        report.counts.heap_to_stack = h2s.moved;
        let h2sh = heap_to_shared::run(m, &main_only_allocs, &recursive, &mut report.remarks);
        report.counts.heap_to_shared = h2sh.moved;
    }

    // 6. Custom state machine for kernels that stayed generic.
    if !cfg.disable_state_machine_rewrite {
        let r = state_machine::run(m, &mut report.remarks);
        report.counts.csm_rewritten = r.rewritten;
        report.counts.csm_with_fallback = r.with_fallback;
    }

    // 7. Runtime-call folding.
    if !cfg.disable_folding {
        let f = folding::run(m, &mut report.remarks);
        report.counts.folds_exec_mode = f.exec_mode;
        report.counts.folds_parallel_level = f.parallel_level;
        report.counts.folds_launch_params = f.launch_params;
    }

    // 8. Cleanup + a second folding round (folding exposes constants the
    //    pipeline propagates, which can expose more foldable calls).
    if cfg.run_cleanup_pipeline {
        accumulate(&mut report.cleanup, omp_passes::run_pipeline(m));
        if !cfg.disable_folding {
            let f = folding::run(m, &mut report.remarks);
            report.counts.folds_exec_mode += f.exec_mode;
            report.counts.folds_parallel_level += f.parallel_level;
            report.counts.folds_launch_params += f.launch_params;
            accumulate(&mut report.cleanup, omp_passes::run_pipeline(m));
        }
    }

    // 9. Async-offload launch analysis: surface capture-and-replay and
    //    stream-overlap eligibility derived from the frontend's launch
    //    metadata (analysis only — no IR is changed).
    emit_launch_remarks(m, &mut report.remarks);
    report
}

/// Emits OMP240/OMP241 analysis remarks for kernels whose launch
/// attributes make them part of a `taskgraph` capture-and-replay region
/// or candidates for asynchronous (`nowait`) stream overlap.
fn emit_launch_remarks(m: &Module, remarks: &mut Remarks) {
    use remarks::{actions, ids, passes, Remark, RemarkKind};
    for k in &m.kernels {
        let name = &m.func(k.func).name;
        if let Some(g) = k.launch.graph {
            remarks.push(
                Remark::new(
                    ids::TASKGRAPH_CAPTURED,
                    RemarkKind::Analysis,
                    name.clone(),
                    format!(
                        "Kernel is part of `taskgraph` region {g}: the host launch \
                         plan is captured once (lookup, validation, argument \
                         marshalling, plan resolution) and replayed without \
                         per-launch setup."
                    ),
                )
                .in_pass(passes::TASKGRAPH)
                .with_action(actions::CAPTURE_REPLAY),
            );
        } else if k.launch.nowait {
            remarks.push(
                Remark::new(
                    ids::ASYNC_OFFLOAD,
                    RemarkKind::Analysis,
                    name.clone(),
                    "Kernel is launched with `nowait`: eligible for asynchronous \
                     stream overlap with sibling launches, ordered only by its \
                     `depend` edges."
                        .to_string(),
                )
                .in_pass(passes::TASKGRAPH)
                .with_action(actions::ASYNC_OVERLAP),
            );
        }
    }
}

fn accumulate(total: &mut omp_passes::PipelineStats, round: omp_passes::PipelineStats) {
    total.promoted_allocas += round.promoted_allocas;
    total.folded += round.folded;
    total.dce_removed += round.dce_removed;
    total.blocks_removed += round.blocks_removed;
    total.iterations += round.iterations;
}

/// Collects `(function, alloc-instruction)` pairs proven to execute on
/// the team main thread only, plus the set of (potentially) recursive
/// functions — the preconditions HeapToShared needs, computed before
/// SPMDization changes execution domains.
fn collect_alloc_facts(m: &Module) -> (HashSet<(FuncId, InstId)>, HashSet<FuncId>) {
    let cg = CallGraph::build(m);
    let domains = ExecutionDomains::compute(m, &cg);
    let mut main_only = HashSet::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        f.for_each_inst(|b, i, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                ..
            } = k
            {
                if m.func(*c).name == RtlFn::AllocShared.name() && domains.is_main_only(fid, b) {
                    main_only.insert((fid, i));
                }
            }
        });
    }
    // Recursion: a function reachable from its own callees.
    let mut recursive = HashSet::new();
    for fid in m.func_ids() {
        if m.func(fid).is_declaration() {
            continue;
        }
        let from_callees = cg.reachable_from(cg.callees_of(fid).iter().copied());
        if from_callees.contains(&fid) {
            recursive.insert(fid);
        }
    }
    (main_only, recursive)
}
