//! # omp-opt
//!
//! The paper's contribution: OpenMP-aware inter-procedural analyses and
//! optimizations over `omp-ir`, reproducing LLVM's `OpenMPOpt` pass as
//! described in *"Efficient Execution of OpenMP on GPUs"* (CGO 2022):
//!
//! * aggressive [`internalize`]-ation for full caller visibility;
//! * [`spmdization`] of generic-mode kernels with side-effect guard
//!   grouping (Figure 7), value broadcasts, and parallel-region
//!   devirtualization;
//! * deglobalization: [`heap_to_stack`] and [`heap_to_shared`]
//!   (Section IV-A, Figures 4–6);
//! * the custom [`state_machine`] rewrite eliminating function pointers
//!   and indirect dispatch (Section IV-B2);
//! * OpenMP runtime-call [`folding`] (Section IV-C);
//! * optimization [`remarks`] with `OMPxxx` identifiers and OpenMP 5.1
//!   assumption handling (Section IV-D).
//!
//! [`run`] drives everything in the order the paper's pipeline uses and
//! returns the per-category counts of the paper's Figure 9.

pub mod config;
pub mod folding;
pub mod heap_to_shared;
pub mod heap_to_stack;
pub mod internalize;
pub mod remarks;
pub mod spmdization;
pub mod state_machine;

pub use config::OpenMpOptConfig;
pub use remarks::{Remark, RemarkKind, Remarks};

use omp_analysis::{CallGraph, ExecutionDomains};
use omp_ir::{FuncId, InstId, InstKind, Module, RtlFn, Value};
use std::collections::HashSet;

/// Optimization statistics: the columns of the paper's Figure 9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptCounts {
    /// Externally visible functions duplicated for analysis precision.
    pub internalized: usize,
    /// Globalized variables moved to the stack (h2s).
    pub heap_to_stack: usize,
    /// Globalized variables moved to static shared memory.
    pub heap_to_shared: usize,
    /// Generic kernels converted to SPMD mode.
    pub spmdized: usize,
    /// Generic kernels where a custom state machine was possible
    /// (reported in parentheses when SPMDization obsoletes it).
    pub csm_possible: usize,
    /// Custom state machines actually generated (no fallback).
    pub csm_rewritten: usize,
    /// Custom state machines that kept the indirect fallback.
    pub csm_with_fallback: usize,
    /// Execution-mode / thread-execution runtime calls folded (EM).
    pub folds_exec_mode: usize,
    /// Parallel-level runtime calls folded (PL).
    pub folds_parallel_level: usize,
    /// Launch-parameter runtime calls folded.
    pub folds_launch_params: usize,
    /// Guard regions emitted by SPMDization (after grouping).
    pub guard_regions: usize,
    /// Values broadcast out of guard regions.
    pub broadcasts: usize,
}

/// Result of one optimizer run.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// Figure 9 counters.
    pub counts: OptCounts,
    /// All emitted remarks (Section IV-D).
    pub remarks: Remarks,
}

/// Runs the OpenMP optimization pipeline on `m`.
pub fn run(m: &mut Module, cfg: &OpenMpOptConfig) -> OptReport {
    let mut report = OptReport::default();

    // 0. Early cleanup: promote memory to SSA so the inter-procedural
    //    analyses see through parameter cells (LLVM runs SROA/mem2reg
    //    before OpenMPOpt for the same reason).
    if cfg.run_cleanup_pipeline {
        omp_passes::run_pipeline(m);
    }

    // 1. Internalization.
    if !cfg.disable_internalization {
        report.counts.internalized = internalize::run(m);
    }

    // 2. Snapshot main-thread-only allocation facts and recursion before
    //    SPMDization rewrites control flow.
    let (main_only_allocs, recursive) = collect_alloc_facts(m);

    // 3. Custom-state-machine feasibility (analysis only, for Figure 9's
    //    parenthesized counts).
    report.counts.csm_possible = state_machine::possible(m);

    // 4. SPMDization.
    if !cfg.disable_spmdization {
        let r = spmdization::run_with_grouping(
            m,
            !cfg.disable_guard_grouping,
            &mut report.remarks,
        );
        report.counts.spmdized = r.spmdized;
        report.counts.guard_regions = r.guard_regions;
        report.counts.broadcasts = r.broadcasts;
    }

    // 5. Deglobalization: HeapToStack (with capture chasing after
    //    devirtualization), then HeapToShared for the rest.
    if !cfg.disable_deglobalization {
        let h2s = heap_to_stack::run(m, cfg.spmd_capture_heap_to_stack, &mut report.remarks);
        report.counts.heap_to_stack = h2s.moved;
        let h2sh = heap_to_shared::run(m, &main_only_allocs, &recursive, &mut report.remarks);
        report.counts.heap_to_shared = h2sh.moved;
    }

    // 6. Custom state machine for kernels that stayed generic.
    if !cfg.disable_state_machine_rewrite {
        let r = state_machine::run(m, &mut report.remarks);
        report.counts.csm_rewritten = r.rewritten;
        report.counts.csm_with_fallback = r.with_fallback;
    }

    // 7. Runtime-call folding.
    if !cfg.disable_folding {
        let f = folding::run(m, &mut report.remarks);
        report.counts.folds_exec_mode = f.exec_mode;
        report.counts.folds_parallel_level = f.parallel_level;
        report.counts.folds_launch_params = f.launch_params;
    }

    // 8. Cleanup + a second folding round (folding exposes constants the
    //    pipeline propagates, which can expose more foldable calls).
    if cfg.run_cleanup_pipeline {
        omp_passes::run_pipeline(m);
        if !cfg.disable_folding {
            let f = folding::run(m, &mut report.remarks);
            report.counts.folds_exec_mode += f.exec_mode;
            report.counts.folds_parallel_level += f.parallel_level;
            report.counts.folds_launch_params += f.launch_params;
            omp_passes::run_pipeline(m);
        }
    }
    report
}

/// Collects `(function, alloc-instruction)` pairs proven to execute on
/// the team main thread only, plus the set of (potentially) recursive
/// functions — the preconditions HeapToShared needs, computed before
/// SPMDization changes execution domains.
fn collect_alloc_facts(m: &Module) -> (HashSet<(FuncId, InstId)>, HashSet<FuncId>) {
    let cg = CallGraph::build(m);
    let domains = ExecutionDomains::compute(m, &cg);
    let mut main_only = HashSet::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        f.for_each_inst(|b, i, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                ..
            } = k
            {
                if m.func(*c).name == RtlFn::AllocShared.name()
                    && domains.is_main_only(fid, b)
                {
                    main_only.insert((fid, i));
                }
            }
        });
    }
    // Recursion: a function reachable from its own callees.
    let mut recursive = HashSet::new();
    for fid in m.func_ids() {
        if m.func(fid).is_declaration() {
            continue;
        }
        let from_callees = cg.reachable_from(cg.callees_of(fid).iter().copied());
        if from_callees.contains(&fid) {
            recursive.insert(fid);
        }
    }
    (main_only, recursive)
}
