//! SPMDization (paper Section IV-B3).
//!
//! Converts a generic-mode kernel into SPMD mode:
//!
//! 1. **Legality**: every side effect in the sequential (main-thread
//!    only) part must be guardable — stores to non-replicated memory and
//!    writing calls get main-thread guards; unknown callees, barriers in
//!    callees, or callees mixing writes with nested parallelism block
//!    the transformation (remark OMP121, suggesting
//!    `ext_spmd_amenable`).
//! 2. **Guard grouping** (Figure 7): within each block, consecutive
//!    guardable side effects are grouped into a single
//!    `if (omp_get_thread_num() == 0) { ... } barrier` region,
//!    reordering them past SPMD-amenable code as long as no data-flow or
//!    memory dependence is violated.
//! 3. **Broadcasts**: a guarded call whose result is used outside the
//!    guard writes it to a compiler-created shared slot; all threads
//!    reload it after the barrier.
//! 4. **Devirtualization**: `__kmpc_parallel_51` becomes a direct call
//!    to the region followed by a team barrier — every thread executes
//!    its own dispatch, eliminating the handshake.
//! 5. **Mode flip**: the `__kmpc_target_init`/`deinit` mode constants
//!    and the kernel metadata switch to SPMD; the worker state machine
//!    becomes dead code that folding + CFG cleanup remove.

use crate::remarks::{actions, ids, passes, Remark, RemarkKind, Remarks};
use omp_analysis::{CallGraph, Effects, SideEffectKind};
use omp_ir::omprtl::{MODE_GENERIC, MODE_SPMD};
use omp_ir::{
    AddrSpace, BlockId, CmpOp, ExecMode, FuncId, Global, InstId, InstKind, Module, RtlFn,
    Terminator, Type, Value,
};
use std::collections::HashSet;

/// Outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpmdizationResult {
    /// Kernels converted to SPMD mode.
    pub spmdized: usize,
    /// Guard regions emitted (after grouping).
    pub guard_regions: usize,
    /// Values broadcast out of guard regions.
    pub broadcasts: usize,
}

/// Runs SPMDization over all generic kernels (with guard grouping).
pub fn run(m: &mut Module, remarks: &mut Remarks) -> SpmdizationResult {
    run_with_grouping(m, true, remarks)
}

/// Runs SPMDization with explicit control over guard grouping
/// (`grouping = false` reproduces the naive one-guard-per-side-effect
/// scheme of the paper's Figure 7b, as an ablation).
pub fn run_with_grouping(
    m: &mut Module,
    grouping: bool,
    remarks: &mut Remarks,
) -> SpmdizationResult {
    let mut result = SpmdizationResult::default();
    let kernels: Vec<usize> = (0..m.kernels.len())
        .filter(|&k| m.kernels[k].exec_mode == ExecMode::Generic)
        .collect();
    for k in kernels {
        let kfunc = m.kernels[k].func;
        let kname = m.func(kfunc).name.clone();
        match try_spmdize(m, kfunc, grouping) {
            Ok((guards, broadcasts)) => {
                m.kernels[k].exec_mode = ExecMode::Spmd;
                result.spmdized += 1;
                result.guard_regions += guards;
                result.broadcasts += broadcasts;
                remarks.push(
                    Remark::new(
                        ids::SPMDIZED,
                        RemarkKind::Passed,
                        kname.clone(),
                        "Transformed generic-mode kernel to SPMD-mode.",
                    )
                    .in_pass(passes::SPMDIZATION)
                    .with_action(actions::SPMDIZE),
                );
                remarks.push(
                    Remark::new(
                        ids::DEAD_RUNTIME_CODE,
                        RemarkKind::Passed,
                        kname,
                        "Removing unused worker state machine from SPMD-mode kernel.",
                    )
                    .in_pass(passes::SPMDIZATION)
                    .with_action(actions::REMOVE_DEAD_RUNTIME),
                );
            }
            Err(reason) => {
                remarks.push(
                    Remark::new(
                        ids::SPMD_BLOCKED,
                        RemarkKind::Missed,
                        kname,
                        format!(
                            "Value has potential side effects preventing SPMD-mode \
                             execution ({reason}). Add `#pragma omp assume \
                             ext_spmd_amenable` if the callee can be executed by \
                             all threads."
                        ),
                    )
                    .in_pass(passes::SPMDIZATION)
                    .with_action(actions::SPMD_BLOCKED)
                    .at(reason),
                );
            }
        }
    }
    result
}

/// Attempts the transformation on one kernel function. Returns
/// `(guard_regions, broadcasts)` on success.
fn try_spmdize(m: &mut Module, kfunc: FuncId, grouping: bool) -> Result<(usize, usize), String> {
    let cg = CallGraph::build(m);
    let effects = Effects::compute(m, &cg);
    let main_blocks = omp_analysis::domain::main_only_blocks(m, kfunc);
    if main_blocks.is_empty() {
        return Err("no sequential region found".to_string());
    }
    // Exclude the worker-loop side: blocks that contain (or reach only
    // through) the worker machinery are not part of the sequential code.
    // main_only_blocks already excludes them (they are on the worker
    // edge).

    // Legality scan + classification.
    let f = m.func(kfunc);
    let mut plan: Vec<(BlockId, Vec<Segment>)> = Vec::new();
    for b in f.block_ids() {
        if !main_blocks.contains(&b) {
            continue;
        }
        let segments = plan_block(m, &effects, kfunc, b, grouping)?;
        if segments.iter().any(|s| matches!(s, Segment::Guard(_))) {
            plan.push((b, segments));
        }
    }
    // Apply guard surgery.
    let mut guard_regions = 0;
    let mut broadcasts = 0;
    for (b, segments) in plan {
        let (g, br) = apply_guards(m, kfunc, b, segments);
        guard_regions += g;
        broadcasts += br;
    }
    // Devirtualize parallel dispatches (anywhere in the kernel function).
    devirtualize_parallel(m, kfunc);
    // Flip the mode constants.
    flip_mode(m, kfunc);
    Ok((guard_regions, broadcasts))
}

/// One planned segment of a block.
enum Segment {
    /// Instructions that every thread executes.
    Plain(Vec<InstId>),
    /// Instructions wrapped in a main-thread guard + barrier.
    Guard(Vec<InstId>),
}

/// Plans the guard grouping for one block (Figure 7's reordering):
/// guardable side effects accumulate into a pending group that floats
/// downward past SPMD-amenable instructions; memory reads, runtime
/// boundaries, and uses of pending results flush the group.
fn plan_block(
    m: &Module,
    effects: &Effects,
    kfunc: FuncId,
    b: BlockId,
    grouping: bool,
) -> Result<Vec<Segment>, String> {
    let f = m.func(kfunc);
    let mut segments: Vec<Segment> = Vec::new();
    let mut plain: Vec<InstId> = Vec::new();
    let mut pending: Vec<InstId> = Vec::new();

    let flush =
        |segments: &mut Vec<Segment>, plain: &mut Vec<InstId>, pending: &mut Vec<InstId>| {
            if !plain.is_empty() {
                segments.push(Segment::Plain(std::mem::take(plain)));
            }
            if !pending.is_empty() {
                segments.push(Segment::Guard(std::mem::take(pending)));
            }
        };

    for &i in &f.block(b).insts {
        let kind = f.inst(i);
        let class =
            effects.classify_for_spmdization(m, kind, |ptr| targets_replicated_object(m, f, ptr));
        match class {
            SideEffectKind::Blocking => {
                let desc = match kind {
                    InstKind::Call {
                        callee: Value::Func(c),
                        ..
                    } => format!("call to @{}", m.func(*c).name),
                    _ => "indirect call".to_string(),
                };
                return Err(desc);
            }
            SideEffectKind::Guardable => {
                pending.push(i);
                if !grouping {
                    // Naive scheme: every side effect gets its own guard
                    // region (and barrier).
                    flush(&mut segments, &mut plain, &mut pending);
                }
            }
            SideEffectKind::None | SideEffectKind::Amenable => {
                // Does this instruction force a flush? Uses of a pending
                // result do; so do reads that could observe a pending
                // store (loads from non-replicated memory, calls that may
                // read, and parallel-region boundaries).
                let uses_pending = {
                    let mut u = false;
                    kind.for_each_operand(|v| {
                        if let Value::Inst(x) = v {
                            u |= pending.contains(&x);
                        }
                    });
                    u
                };
                let reads_memory = match kind {
                    InstKind::Load { ptr, .. } => !targets_replicated_object(m, f, *ptr),
                    InstKind::Call {
                        callee: Value::Func(c),
                        ..
                    } => {
                        let name = &m.func(*c).name;
                        match RtlFn::from_name(name) {
                            Some(RtlFn::Parallel51) => true,
                            Some(r) => r.is_synchronizing(),
                            None => {
                                // Known functions that read memory observe
                                // guarded stores; math intrinsics do not.
                                omp_ir::omprtl::math_fn_signature(name).is_none()
                                    && effects.summary(*c).reads_memory
                            }
                        }
                    }
                    InstKind::Call { .. } => true,
                    _ => false,
                };
                if !pending.is_empty() && (uses_pending || reads_memory) {
                    flush(&mut segments, &mut plain, &mut pending);
                }
                plain.push(i);
            }
        }
    }
    // The terminator may also use pending results.
    let mut term_uses_pending = false;
    f.block(b).term.for_each_operand(|v| {
        if let Value::Inst(x) = v {
            term_uses_pending |= pending.contains(&x);
        }
    });
    let _ = term_uses_pending; // guarded values are broadcast either way
    flush(&mut segments, &mut plain, &mut pending);
    Ok(segments)
}

/// Whether a store through `ptr` targets memory that is replicated per
/// thread after SPMDization: an `alloca` or a globalization allocation
/// made by this function (the paper's "OpenMP-specific allocation
/// related code" interaction).
fn targets_replicated_object(m: &Module, f: &omp_ir::Function, mut ptr: Value) -> bool {
    for _ in 0..16 {
        match ptr {
            Value::Inst(i) => match f.inst(i) {
                InstKind::Alloca { .. } => return true,
                InstKind::Gep { base, .. } => ptr = *base,
                InstKind::Call {
                    callee: Value::Func(c),
                    ..
                } => {
                    let name = &m.func(*c).name;
                    return RtlFn::from_name(name).is_some_and(|r| r.is_globalization_alloc());
                }
                _ => return false,
            },
            _ => return false,
        }
    }
    false
}

/// Applies the planned segments: splits the block, wraps guard segments
/// in `if (thread_num == 0)` + barrier, broadcasts escaping values.
fn apply_guards(
    m: &mut Module,
    kfunc: FuncId,
    b: BlockId,
    segments: Vec<Segment>,
) -> (usize, usize) {
    let mut guards = 0;
    let mut broadcasts = 0;
    let term = m.func(kfunc).block(b).term.clone();
    let orig_succs = term.successors();
    // Pre-compute, per guard segment, which results are used outside the
    // segment (they need broadcasting). This must happen while the block
    // is intact so every use is visible.
    let escaping_per_segment: Vec<Vec<InstId>> = segments
        .iter()
        .map(|seg| match seg {
            Segment::Plain(_) => Vec::new(),
            Segment::Guard(insts) => insts
                .iter()
                .copied()
                .filter(|&i| {
                    let f = m.func(kfunc);
                    if f.inst(i).result_type() == Type::Void {
                        return false;
                    }
                    let mut used_outside = false;
                    f.for_each_inst(|_, j, k| {
                        if insts.contains(&j) {
                            return;
                        }
                        k.for_each_operand(|v| {
                            used_outside |= v == Value::Inst(i);
                        });
                    });
                    for bb in f.block_ids() {
                        f.block(bb).term.for_each_operand(|v| {
                            used_outside |= v == Value::Inst(i);
                        });
                    }
                    used_outside
                })
                .collect(),
        })
        .collect();

    // Phase A: rebuild the block chain structurally. Broadcasts are
    // deferred to phase B so that every use is placed and visible when
    // values are rewired.
    let (tn_params, tn_ret) = RtlFn::ThreadNum.signature();
    let tn = m.get_or_declare(RtlFn::ThreadNum.name(), tn_params, tn_ret);
    let (bar_params, bar_ret) = RtlFn::BarrierSimpleSpmd.signature();
    let bar = m.get_or_declare(RtlFn::BarrierSimpleSpmd.name(), bar_params, bar_ret);
    m.func_mut(kfunc).block_mut(b).insts.clear();
    let mut cur = b;
    // (guard block, join block, escaping values)
    let mut guard_sites: Vec<(BlockId, BlockId, Vec<InstId>)> = Vec::new();
    for (seg_idx, seg) in segments.into_iter().enumerate() {
        match seg {
            Segment::Plain(insts) => {
                m.func_mut(kfunc).block_mut(cur).insts.extend(insts);
            }
            Segment::Guard(insts) => {
                guards += 1;
                let gbb = m.func_mut(kfunc).add_block();
                let jbb = m.func_mut(kfunc).add_block();
                let f = m.func_mut(kfunc);
                let tid = f.append_inst(
                    cur,
                    InstKind::Call {
                        callee: Value::Func(tn),
                        args: vec![],
                        ret: Type::I32,
                    },
                );
                let c = f.append_inst(
                    cur,
                    InstKind::Cmp {
                        op: CmpOp::Eq,
                        ty: Type::I32,
                        lhs: Value::Inst(tid),
                        rhs: Value::i32(0),
                    },
                );
                f.block_mut(cur).term = Terminator::CondBr {
                    cond: Value::Inst(c),
                    then_bb: gbb,
                    else_bb: jbb,
                };
                f.block_mut(gbb).insts = insts;
                f.block_mut(gbb).term = Terminator::Br(jbb);
                f.append_inst(
                    jbb,
                    InstKind::Call {
                        callee: Value::Func(bar),
                        args: vec![],
                        ret: Type::Void,
                    },
                );
                guard_sites.push((gbb, jbb, escaping_per_segment[seg_idx].clone()));
                cur = jbb;
            }
        }
    }
    // The final block inherits the original terminator.
    m.func_mut(kfunc).block_mut(cur).term = term;
    if cur != b {
        // Successor phis must name the new predecessor.
        for s in orig_succs {
            let insts = m.func(kfunc).block(s).insts.clone();
            let f = m.func_mut(kfunc);
            for i in insts {
                if let InstKind::Phi { incoming, .. } = f.inst_mut(i) {
                    for (p, _) in incoming.iter_mut() {
                        if *p == b {
                            *p = cur;
                        }
                    }
                }
            }
        }
    }

    // Phase B: broadcasts. Everything is placed now, so rewiring uses is
    // safe.
    for (gbb, jbb, escaping) in guard_sites {
        for v in escaping {
            broadcasts += 1;
            let ty = m.func(kfunc).inst(v).result_type();
            let g = m.add_global(Global {
                name: format!("__omp_bcast.{}.{}", kfunc.0, v.0),
                size: ty.size().max(1),
                align: 8,
                space: AddrSpace::Shared,
                init: None,
                is_const: false,
            });
            let f = m.func_mut(kfunc);
            // Load after the barrier (position 1 in the join block).
            let loaded = f.insert_inst(
                jbb,
                1,
                InstKind::Load {
                    ptr: Value::Global(g),
                    ty,
                },
            );
            // All uses read the broadcast value...
            f.replace_all_uses(Value::Inst(v), Value::Inst(loaded));
            // ...except inside the guard itself (including the store we
            // add below, which must store the original).
            let guarded: Vec<InstId> = f.block(gbb).insts.clone();
            for gi in guarded {
                f.inst_mut(gi).map_operands(|op| {
                    if op == Value::Inst(loaded) {
                        Value::Inst(v)
                    } else {
                        op
                    }
                });
            }
            let gpos = f.block(gbb).insts.len();
            f.insert_inst(
                gbb,
                gpos,
                InstKind::Store {
                    ptr: Value::Global(g),
                    val: Value::Inst(v),
                },
            );
        }
    }
    (guards, broadcasts)
}

/// Replaces `__kmpc_parallel_51(token, n, args)` with a direct call to
/// the region followed by a team barrier.
fn devirtualize_parallel(m: &mut Module, kfunc: FuncId) {
    let mut sites: Vec<(BlockId, InstId, FuncId, Value)> = Vec::new();
    {
        let f = m.func(kfunc);
        for (b, i) in f.inst_ids() {
            if let InstKind::Call {
                callee: Value::Func(c),
                args,
                ..
            } = f.inst(i)
            {
                if m.func(*c).name == RtlFn::Parallel51.name() {
                    if let Some(Value::Func(r)) = args.first() {
                        sites.push((b, i, *r, args.get(2).copied().unwrap_or(Value::Null)));
                    }
                }
            }
        }
    }
    if sites.is_empty() {
        return;
    }
    let (bar_params, bar_ret) = RtlFn::BarrierSimpleSpmd.signature();
    let bar = m.get_or_declare(RtlFn::BarrierSimpleSpmd.name(), bar_params, bar_ret);
    for (b, i, region, args_val) in sites {
        let f = m.func_mut(kfunc);
        f.replace_inst(
            i,
            InstKind::Call {
                callee: Value::Func(region),
                args: vec![args_val],
                ret: Type::Void,
            },
        );
        let pos = f
            .block(b)
            .insts
            .iter()
            .position(|&x| x == i)
            .expect("site in block");
        f.insert_inst(
            b,
            pos + 1,
            InstKind::Call {
                callee: Value::Func(bar),
                args: vec![],
                ret: Type::Void,
            },
        );
    }
}

/// Switches the `__kmpc_target_init` / `__kmpc_target_deinit` mode
/// constants from generic to SPMD.
fn flip_mode(m: &mut Module, kfunc: FuncId) {
    let mut edits: Vec<InstId> = Vec::new();
    {
        let f = m.func(kfunc);
        f.for_each_inst(|_, i, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                args,
                ..
            } = k
            {
                let name = &m.func(*c).name;
                if (name == RtlFn::TargetInit.name() || name == RtlFn::TargetDeinit.name())
                    && matches!(args.first(), Some(v) if v.is_int_const(MODE_GENERIC))
                {
                    edits.push(i);
                }
            }
        });
    }
    let f = m.func_mut(kfunc);
    for i in edits {
        if let InstKind::Call { args, .. } = f.inst_mut(i) {
            args[0] = Value::ConstInt(MODE_SPMD, Type::I32);
        }
    }
}

/// Set of function ids usable by tests.
pub fn spmdized_kernels(m: &Module) -> HashSet<FuncId> {
    m.kernels
        .iter()
        .filter(|k| k.exec_mode == ExecMode::Spmd)
        .map(|k| k.func)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_frontend::{compile, FrontendOptions};

    const SU3_LIKE: &str = r#"
void kern(double* out, long nb, long nt) {
  #pragma omp target teams distribute
  for (long b = 0; b < nb; b++) {
    double tv = (double)b * 2.0;
    #pragma omp parallel for
    for (long t = 0; t < nt; t++) {
      out[b * nt + t] = tv + (double)t;
    }
  }
}
"#;

    #[test]
    fn converts_generic_kernel() {
        let mut m = compile(SU3_LIKE, &FrontendOptions::default()).unwrap();
        assert_eq!(m.kernels[0].exec_mode, ExecMode::Generic);
        let mut rem = Remarks::default();
        let r = run(&mut m, &mut rem);
        assert_eq!(r.spmdized, 1);
        assert_eq!(m.kernels[0].exec_mode, ExecMode::Spmd);
        omp_ir::verifier::assert_valid(&m);
        let text = omp_ir::printer::print_module(&m);
        // Mode constants flipped.
        assert!(text.contains("call @__kmpc_target_init(i32 2)"));
        assert!(!text.contains("call @__kmpc_target_init(i32 1)"));
        // Dispatch devirtualized.
        assert!(!text.contains("call @__kmpc_parallel_51"));
        assert!(text.contains("__kmpc_barrier_simple_spmd"));
        assert_eq!(rem.count(ids::SPMDIZED), 1);
    }

    #[test]
    fn unknown_callee_blocks_spmdization() {
        let src = r#"
void mystery(double* p);
void kern(double* out, long nb) {
  #pragma omp target teams distribute
  for (long b = 0; b < nb; b++) {
    mystery(out);
    #pragma omp parallel
    { out[0] = 1.0; }
  }
}
"#;
        let mut m = compile(src, &FrontendOptions::default()).unwrap();
        let mut rem = Remarks::default();
        let r = run(&mut m, &mut rem);
        assert_eq!(r.spmdized, 0);
        assert_eq!(m.kernels[0].exec_mode, ExecMode::Generic);
        assert_eq!(rem.count(ids::SPMD_BLOCKED), 1);
        assert!(rem.with_id(ids::SPMD_BLOCKED)[0]
            .message
            .contains("ext_spmd_amenable"));
    }

    #[test]
    fn assumption_unblocks_spmdization() {
        let src = r#"
#pragma omp assume ext_spmd_amenable
void mystery(double* p);
void kern(double* out, long nb) {
  #pragma omp target teams distribute
  for (long b = 0; b < nb; b++) {
    mystery(out);
    #pragma omp parallel
    { out[0] = 1.0; }
  }
}
"#;
        let mut m = compile(src, &FrontendOptions::default()).unwrap();
        let mut rem = Remarks::default();
        let r = run(&mut m, &mut rem);
        assert_eq!(r.spmdized, 1);
    }

    #[test]
    fn guards_are_grouped_like_fig7() {
        // Two guardable stores separated by amenable code collapse into
        // one guard region.
        let src = r#"
void kern(double* a, double* b, long n) {
  #pragma omp target teams
  {
    a[0] = 1.0;
    double x = 3.0 * 4.0;
    b[0] = x;
    #pragma omp parallel for
    for (long t = 0; t < n; t++) { a[t] = b[0] + (double)t; }
  }
}
"#;
        let mut m = compile(src, &FrontendOptions::default()).unwrap();
        let mut rem = Remarks::default();
        let r = run(&mut m, &mut rem);
        assert_eq!(r.spmdized, 1);
        // The two stores share one guard: x is an alloca store
        // (replicated, no guard needed), a[0] and b[0] are global.
        assert_eq!(r.guard_regions, 1, "grouping failed: {r:?}");
        omp_ir::verifier::assert_valid(&m);
    }
}
