//! Runtime-call constant folding (paper Section IV-C).
//!
//! Replaces OpenMP runtime queries with constants when the answer is
//! statically known through inter-procedural analysis:
//!
//! * **Execution mode** — `__kmpc_is_spmd_exec_mode` folds when every
//!   kernel reaching the call agrees on the mode; the result of
//!   `__kmpc_target_init` folds to `-1` in SPMD kernels, which lets the
//!   cleanup pipeline delete the dead worker state machine.
//! * **Parallel level** — `__kmpc_parallel_level` folds to 0 in
//!   main-thread-only code and to 1 in code reachable only from
//!   non-nested parallel regions, removing the sequential fallback for
//!   nested parallelism.
//! * **Thread execution** — `__kmpc_is_generic_main_thread` folds in
//!   main-only or SPMD-only contexts.
//! * **Launch parameters** — `omp_get_num_teams`/`omp_get_num_threads`
//!   fold when the clauses are compile-time constants, and
//!   `__kmpc_get_warp_size` folds to the device constant.

use crate::remarks::{actions, ids, passes, Remark, RemarkKind, Remarks};
use omp_analysis::{CallGraph, ExecDomain, ExecutionDomains};
use omp_ir::{ExecMode, FuncId, InstId, InstKind, Module, RtlFn, Type, Value};
use std::collections::{HashMap, HashSet};

/// Per-category fold counters (the paper's Figure 9 "RTOpt" columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldCounts {
    /// Execution-mode and thread-execution folds (EM).
    pub exec_mode: usize,
    /// Parallel-level folds (PL).
    pub parallel_level: usize,
    /// Launch-parameter folds (num_teams / thread_limit / warp size).
    pub launch_params: usize,
}

/// The warp size folded for `__kmpc_get_warp_size`.
pub const DEVICE_WARP_SIZE: i32 = 32;

/// Runs one folding sweep. Returns the counts of performed folds.
pub fn run(m: &mut Module, remarks: &mut Remarks) -> FoldCounts {
    let cg = CallGraph::build(m);
    let domains = ExecutionDomains::compute(m, &cg);
    let kernels_reaching = cg.kernels_reaching(m);
    let regions_have_nesting = regions_reach_parallel(m, &cg, &domains);

    let mut counts = FoldCounts::default();
    let mut edits: Vec<(FuncId, InstId, Value, &'static str, &'static str)> = Vec::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        let reaching = kernels_reaching.get(&fid).map(Vec::as_slice).unwrap_or(&[]);
        let all_modes: Option<ExecMode> = {
            let modes: HashSet<ExecMode> =
                reaching.iter().map(|&k| m.kernels[k].exec_mode).collect();
            if modes.len() == 1 {
                modes.into_iter().next()
            } else {
                None
            }
        };
        let ctx = domains.func_context.get(&fid).copied();
        f.for_each_inst(|_, i, k| {
            let InstKind::Call {
                callee: Value::Func(c),
                ..
            } = k
            else {
                return;
            };
            let Some(rtl) = RtlFn::from_name(&m.func(*c).name) else {
                return;
            };
            match rtl {
                RtlFn::IsSpmdExecMode => {
                    if let Some(mode) = all_modes {
                        edits.push((
                            fid,
                            i,
                            Value::bool(mode == ExecMode::Spmd),
                            "em",
                            "__kmpc_is_spmd_exec_mode",
                        ));
                    }
                }
                RtlFn::TargetInit
                    // In SPMD kernels the initializer returns -1 for all
                    // threads; folding the *result* (the call stays for
                    // its effects) lets the worker branch die. Skip when
                    // the result is already unused (e.g. a second
                    // folding round) so counts and remarks stay exact.
                    if m.kernel_for(fid).map(|ki| ki.exec_mode) == Some(ExecMode::Spmd)
                        && f.count_uses(Value::Inst(i)) > 0
                    => {
                        edits.push((fid, i, Value::i32(-1), "em-init", "__kmpc_target_init"));
                    }
                RtlFn::IsGenericMainThread => {
                    if ctx == Some(ExecDomain::MainOnly) && all_modes == Some(ExecMode::Generic) {
                        edits.push((
                            fid,
                            i,
                            Value::bool(true),
                            "em",
                            "__kmpc_is_generic_main_thread",
                        ));
                    } else if all_modes == Some(ExecMode::Spmd) {
                        edits.push((
                            fid,
                            i,
                            Value::bool(false),
                            "em",
                            "__kmpc_is_generic_main_thread",
                        ));
                    }
                }
                RtlFn::ParallelLevel => {
                    if ctx == Some(ExecDomain::MainOnly) {
                        edits.push((fid, i, Value::i32(0), "pl", "__kmpc_parallel_level"));
                    } else if domains.parallel_regions.contains(&fid) && !regions_have_nesting {
                        edits.push((fid, i, Value::i32(1), "pl", "__kmpc_parallel_level"));
                    } else if m.kernel_for(fid).map(|ki| ki.exec_mode) == Some(ExecMode::Spmd)
                        && !regions_have_nesting
                    {
                        // In the base SPMD context the level is 0.
                        edits.push((fid, i, Value::i32(0), "pl", "__kmpc_parallel_level"));
                    }
                }
                RtlFn::NumTeams => {
                    let teams: HashSet<Option<u32>> =
                        reaching.iter().map(|&k| m.kernels[k].num_teams).collect();
                    if teams.len() == 1 {
                        if let Some(Some(t)) = teams.into_iter().next() {
                            edits.push((
                                fid,
                                i,
                                Value::i32(t as i32),
                                "launch",
                                "omp_get_num_teams",
                            ));
                        }
                    }
                }
                RtlFn::NumThreads
                    // Foldable only when every reaching kernel is SPMD
                    // with the same thread_limit and no dispatch narrows
                    // the team (no explicit num_threads clauses).
                    if all_modes == Some(ExecMode::Spmd) && !reaching.is_empty() => {
                        let limits: HashSet<Option<u32>> = reaching
                            .iter()
                            .map(|&k| m.kernels[k].thread_limit)
                            .collect();
                        if limits.len() == 1 {
                            if let Some(Some(t)) = limits.into_iter().next() {
                                if !module_has_narrowing_dispatch(m) {
                                    edits.push((
                                        fid,
                                        i,
                                        Value::i32(t as i32),
                                        "launch",
                                        "omp_get_num_threads",
                                    ));
                                }
                            }
                        }
                    }
                RtlFn::WarpSize => {
                    edits.push((
                        fid,
                        i,
                        Value::i32(DEVICE_WARP_SIZE),
                        "launch",
                        "__kmpc_get_warp_size",
                    ));
                }
                _ => {}
            }
        });
    }
    // Apply.
    let mut removed_calls: HashMap<FuncId, Vec<InstId>> = HashMap::new();
    for (fid, i, v, cat, name) in edits {
        let fname = m.func(fid).name.clone();
        let fm = m.func_mut(fid);
        fm.replace_all_uses(Value::Inst(i), v);
        match cat {
            "em-init" => {
                // Keep the call: it has runtime effects.
                counts.exec_mode += 1;
            }
            _ => {
                removed_calls.entry(fid).or_default().push(i);
                match cat {
                    "em" => counts.exec_mode += 1,
                    "pl" => counts.parallel_level += 1,
                    _ => counts.launch_params += 1,
                }
            }
        }
        remarks.push(
            Remark::new(
                ids::RUNTIME_CALL_FOLDED,
                RemarkKind::Passed,
                fname,
                format!("Replacing OpenMP runtime call {name} with a constant."),
            )
            .in_pass(passes::FOLDING)
            .with_action(actions::FOLD)
            .at(name),
        );
    }
    for (fid, insts) in removed_calls {
        let fm = m.func_mut(fid);
        for i in insts {
            fm.remove_inst(i);
        }
    }
    counts
}

/// Whether any parallel-region function can (transitively) start another
/// parallel region — i.e. real nesting exists in the module.
fn regions_reach_parallel(m: &Module, cg: &CallGraph, domains: &ExecutionDomains) -> bool {
    let reach = cg.reachable_from(domains.parallel_regions.iter().copied());
    for f in reach {
        let fun = m.func(f);
        if fun.is_declaration() {
            if RtlFn::from_name(&fun.name) == Some(RtlFn::Parallel51) {
                continue; // the declaration itself is not a call site
            }
            continue;
        }
        let mut has = false;
        fun.for_each_inst(|_, _, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                ..
            } = k
            {
                if m.func(*c).name == RtlFn::Parallel51.name() {
                    has = true;
                }
            }
        });
        if has {
            return true;
        }
    }
    false
}

/// Whether any `__kmpc_parallel_51` dispatch uses an explicit
/// `num_threads` clause (second argument not `-1`).
fn module_has_narrowing_dispatch(m: &Module) -> bool {
    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        let mut narrowing = false;
        f.for_each_inst(|_, _, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                args,
                ..
            } = k
            {
                if m.func(*c).name == RtlFn::Parallel51.name()
                    && !matches!(args.get(1), Some(Value::ConstInt(-1, Type::I32)))
                {
                    narrowing = true;
                }
            }
        });
        if narrowing {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::{Builder, Function, KernelInfo, Linkage, Terminator};

    fn make_kernel(m: &mut Module, name: &str, mode: ExecMode) -> FuncId {
        let f = m.add_function(Function::definition(name, vec![], Type::Void));
        m.kernels.push(KernelInfo {
            func: f,
            exec_mode: mode,
            num_teams: Some(8),
            thread_limit: Some(64),
            source_name: name.into(),
            launch: Default::default(),
        });
        f
    }

    #[test]
    fn folds_exec_mode_when_unambiguous() {
        let mut m = Module::new("t");
        let helper = m.add_function(Function::definition("helper", vec![], Type::I1));
        {
            let mut b = Builder::at_entry(&mut m, helper);
            let v = b.call_rtl(RtlFn::IsSpmdExecMode, vec![]);
            b.ret(Some(v));
        }
        m.func_mut(helper).linkage = Linkage::Internal;
        let k = make_kernel(&mut m, "k", ExecMode::Spmd);
        {
            let mut b = Builder::at_entry(&mut m, k);
            b.call(helper, vec![]);
            b.ret(None);
        }
        let mut rem = Remarks::default();
        let counts = run(&mut m, &mut rem);
        assert!(counts.exec_mode >= 1);
        match &m.func(helper).block(m.func(helper).entry()).term {
            Terminator::Ret(Some(v)) => assert_eq!(*v, Value::bool(true)),
            t => panic!("{t:?}"),
        }
        assert!(rem.count(ids::RUNTIME_CALL_FOLDED) >= 1);
    }

    #[test]
    fn no_exec_mode_fold_with_mixed_kernels() {
        let mut m = Module::new("t");
        let helper = m.add_function(Function::definition("helper", vec![], Type::I1));
        {
            let mut b = Builder::at_entry(&mut m, helper);
            let v = b.call_rtl(RtlFn::IsSpmdExecMode, vec![]);
            b.ret(Some(v));
        }
        m.func_mut(helper).linkage = Linkage::Internal;
        for (name, mode) in [("k1", ExecMode::Spmd), ("k2", ExecMode::Generic)] {
            let k = make_kernel(&mut m, name, mode);
            let mut b = Builder::at_entry(&mut m, k);
            b.call(helper, vec![]);
            b.ret(None);
        }
        let mut rem = Remarks::default();
        run(&mut m, &mut rem);
        // The call must still be there.
        let text = omp_ir::printer::print_module(&m);
        assert!(text.contains("__kmpc_is_spmd_exec_mode"));
    }

    #[test]
    fn folds_parallel_level_in_main_only_context() {
        let mut m = Module::new("t");
        let helper = m.add_function(Function::definition("seq", vec![], Type::I32));
        {
            let mut b = Builder::at_entry(&mut m, helper);
            let v = b.call_rtl(RtlFn::ParallelLevel, vec![]);
            b.ret(Some(v));
        }
        m.func_mut(helper).linkage = Linkage::Internal;
        // Internal function with no callers: optimistically MainOnly.
        let mut rem = Remarks::default();
        let counts = run(&mut m, &mut rem);
        assert_eq!(counts.parallel_level, 1);
        match &m.func(helper).block(m.func(helper).entry()).term {
            Terminator::Ret(Some(v)) => assert_eq!(*v, Value::i32(0)),
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn folds_launch_params() {
        let mut m = Module::new("t");
        let k = make_kernel(&mut m, "k", ExecMode::Spmd);
        {
            let mut b = Builder::at_entry(&mut m, k);
            b.call_rtl(RtlFn::NumTeams, vec![]);
            b.call_rtl(RtlFn::NumThreads, vec![]);
            b.call_rtl(RtlFn::WarpSize, vec![]);
            b.ret(None);
        }
        let mut rem = Remarks::default();
        let counts = run(&mut m, &mut rem);
        assert_eq!(counts.launch_params, 3);
        let text = omp_ir::printer::print_module(&m);
        assert!(!text.contains("call @omp_get_num_teams"));
        // Declarations linger but no calls remain.
        assert!(!text.contains("call @omp_get_num_threads"));
    }

    #[test]
    fn folds_spmd_init_result_keeping_call() {
        let mut m = Module::new("t");
        let k = make_kernel(&mut m, "k", ExecMode::Spmd);
        {
            let mut b = Builder::at_entry(&mut m, k);
            let tid = b.call_rtl(RtlFn::TargetInit, vec![Value::i32(2)]);
            let c = b.cmp(omp_ir::CmpOp::Sge, Type::I32, tid, Value::i32(0));
            let w = b.new_block();
            let main = b.new_block();
            b.cond_br(c, w, main);
            b.switch_to(w);
            b.ret(None);
            b.switch_to(main);
            b.ret(None);
        }
        let mut rem = Remarks::default();
        let counts = run(&mut m, &mut rem);
        assert!(counts.exec_mode >= 1);
        // Init call still present; its result replaced by -1 so the
        // branch folds away after constprop.
        let text = omp_ir::printer::print_module(&m);
        assert!(text.contains("__kmpc_target_init"));
        assert!(text.contains("cmp sge i32 i32 -1"));
        omp_passes::run_pipeline(&mut m);
        assert_eq!(m.func(k).num_blocks(), 1);
    }
}
