//! HeapToShared (paper Section IV-A).
//!
//! When HeapToStack cannot fire (the pointer is genuinely shared with
//! other threads), but the runtime allocation is only executed by the
//! team's main thread, the allocation is replaced by a statically
//! allocated shared-memory global. This removes all allocation
//! instructions, exposes the memory to later optimizations, and trades
//! kernel-lifetime occupancy for speed — exactly the trade the paper
//! found always worthwhile.

use crate::remarks::{actions, ids, passes, Remark, RemarkKind, Remarks};
use omp_ir::{AddrSpace, FuncId, Global, InstId, InstKind, Module, RtlFn, Value};
use std::collections::HashSet;

/// Result counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapToSharedResult {
    /// Allocations replaced by static shared memory.
    pub moved: usize,
    /// Allocations left as runtime calls (data-sharing remark emitted).
    pub remaining: usize,
}

/// Maximum size moved to shared memory without user opt-in.
const MAX_SHARED_BYTES: u64 = 16 * 1024;

/// Runs HeapToShared. `main_only_allocs` holds the `(function, alloc)`
/// pairs proven (before any SPMDization) to execute on the team main
/// thread only; `recursive` the set of functions that may recurse (their
/// allocations cannot get a single static slot).
pub fn run(
    m: &mut Module,
    main_only_allocs: &HashSet<(FuncId, InstId)>,
    recursive: &HashSet<FuncId>,
    remarks: &mut Remarks,
) -> HeapToSharedResult {
    let mut result = HeapToSharedResult::default();
    let mut counter = 0usize;
    for fid in m.func_ids().collect::<Vec<_>>() {
        if m.func(fid).is_declaration() {
            continue;
        }
        let fname = m.func(fid).name.clone();
        // Collect candidates.
        let mut candidates: Vec<(InstId, u64)> = Vec::new();
        let mut blocked: Vec<InstId> = Vec::new();
        m.func(fid).for_each_inst(|_, i, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                args,
                ..
            } = k
            {
                if m.func(*c).name != RtlFn::AllocShared.name() {
                    return;
                }
                let size = match args.first() {
                    Some(Value::ConstInt(s, _)) if *s >= 0 => *s as u64,
                    _ => {
                        blocked.push(i);
                        return;
                    }
                };
                if main_only_allocs.contains(&(fid, i))
                    && !recursive.contains(&fid)
                    && size <= MAX_SHARED_BYTES
                {
                    candidates.push((i, size));
                } else {
                    blocked.push(i);
                }
            }
        });
        for (alloc, size) in candidates {
            let g = m.add_global(Global {
                name: format!("__omp_static_shared.{counter}"),
                size,
                align: 8,
                space: AddrSpace::Shared,
                init: None,
                is_const: false,
            });
            counter += 1;
            sharify(m, fid, alloc, g);
            result.moved += 1;
            remarks.push(
                Remark::new(
                    ids::MOVED_TO_SHARED,
                    RemarkKind::Passed,
                    fname.clone(),
                    format!("Replacing globalized variable with {size} bytes of shared memory."),
                )
                .in_pass(passes::HEAP_TO_SHARED)
                .with_action(actions::SHARIFY)
                .at(format!("%{}", alloc.index()))
                .with_bytes(size),
            );
        }
        for alloc in &blocked {
            result.remaining += 1;
            remarks.push(
                Remark::new(
                    ids::DATA_SHARING_REMAINS,
                    RemarkKind::Missed,
                    fname.clone(),
                    "Found thread data sharing on the GPU. Expect degraded performance \
                     due to data globalization.",
                )
                .in_pass(passes::HEAP_TO_SHARED)
                .with_action(actions::KEEP_GLOBALIZED)
                .at(format!("%{}", alloc.index())),
            );
        }
    }
    result
}

fn sharify(m: &mut Module, fid: FuncId, alloc: InstId, g: omp_ir::GlobalId) {
    let p = Value::Inst(alloc);
    let f = m.func(fid);
    let mut frees: Vec<InstId> = Vec::new();
    f.for_each_inst(|_, i, k| {
        if let InstKind::Call {
            callee: Value::Func(c),
            args,
            ..
        } = k
        {
            if m.func(*c).name == RtlFn::FreeShared.name() && args.first() == Some(&p) {
                frees.push(i);
            }
        }
    });
    let fm = m.func_mut(fid);
    for i in frees {
        fm.remove_inst(i);
    }
    fm.replace_all_uses(p, Value::Global(g));
    fm.remove_inst(alloc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::{Builder, Function, Type};

    fn setup() -> (Module, FuncId, InstId) {
        let mut m = Module::new("t");
        let sink = m.add_function(Function::declaration("sink", vec![Type::Ptr], Type::Void));
        let f = m.add_function(Function::definition("f", vec![], Type::Void));
        let mut b = Builder::at_entry(&mut m, f);
        let p = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(16)]);
        b.call(sink, vec![p]); // escapes: HeapToStack would fail
        b.call_rtl(RtlFn::FreeShared, vec![p, Value::i64(16)]);
        b.ret(None);
        let Value::Inst(alloc) = p else { panic!() };
        (m, f, alloc)
    }

    #[test]
    fn main_only_allocation_becomes_static_shared() {
        let (mut m, f, alloc) = setup();
        let mut rem = Remarks::default();
        let facts: HashSet<_> = [(f, alloc)].into_iter().collect();
        let r = run(&mut m, &facts, &HashSet::new(), &mut rem);
        assert_eq!(r.moved, 1);
        assert_eq!(r.remaining, 0);
        assert_eq!(m.static_shared_bytes(), 16);
        assert_eq!(rem.count(ids::MOVED_TO_SHARED), 1);
        omp_ir::verifier::assert_valid(&m);
        let text = omp_ir::printer::print_module(&m);
        assert!(!text.contains("call @__kmpc_alloc_shared"));
        assert!(text.contains("__omp_static_shared.0 : shared 16"));
    }

    #[test]
    fn multi_thread_allocation_stays_with_remark() {
        let (mut m, _f, _alloc) = setup();
        let mut rem = Remarks::default();
        let r = run(&mut m, &HashSet::new(), &HashSet::new(), &mut rem);
        assert_eq!(r.moved, 0);
        assert_eq!(r.remaining, 1);
        assert_eq!(rem.count(ids::DATA_SHARING_REMAINS), 1);
        let text = omp_ir::printer::print_module(&m);
        assert!(text.contains("__kmpc_alloc_shared"));
    }

    #[test]
    fn recursive_functions_are_skipped() {
        let (mut m, f, alloc) = setup();
        let mut rem = Remarks::default();
        let facts: HashSet<_> = [(f, alloc)].into_iter().collect();
        let rec: HashSet<_> = [f].into_iter().collect();
        let r = run(&mut m, &facts, &rec, &mut rem);
        assert_eq!(r.moved, 0);
        assert_eq!(r.remaining, 1);
    }

    #[test]
    fn oversized_allocations_are_skipped() {
        let mut m = Module::new("t");
        let sink = m.add_function(Function::declaration("sink", vec![Type::Ptr], Type::Void));
        let f = m.add_function(Function::definition("f", vec![], Type::Void));
        let mut b = Builder::at_entry(&mut m, f);
        let p = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(64 * 1024)]);
        b.call(sink, vec![p]);
        b.call_rtl(RtlFn::FreeShared, vec![p, Value::i64(64 * 1024)]);
        b.ret(None);
        let Value::Inst(alloc) = p else { panic!() };
        let facts: HashSet<_> = [(f, alloc)].into_iter().collect();
        let mut rem = Remarks::default();
        let r = run(&mut m, &facts, &HashSet::new(), &mut rem);
        assert_eq!(r.moved, 0);
        assert_eq!(r.remaining, 1);
    }
}
