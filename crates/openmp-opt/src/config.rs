//! Configuration of the OpenMP optimization pass, mirroring the LLVM
//! flags listed in the paper's artifact appendix.

/// Which OpenMP-specific optimizations run. Field names follow the
/// artifact's `openmp-opt-disable-*` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenMpOptConfig {
    /// `openmp-opt-disable-spmdization`.
    pub disable_spmdization: bool,
    /// `openmp-opt-disable-deglobalization` (HeapToStack + HeapToShared).
    pub disable_deglobalization: bool,
    /// `openmp-opt-disable-state-machine-rewrite`.
    pub disable_state_machine_rewrite: bool,
    /// `openmp-opt-disable-folding` (runtime-call constant folding).
    pub disable_folding: bool,
    /// Disable aggressive internalization of external definitions.
    pub disable_internalization: bool,
    /// Enable the D102107-style HeapToStack extension that chases
    /// pointers through capture structs of SPMDized (devirtualized)
    /// parallel regions. With it SU3Bench's locals land on the stack as
    /// in the paper's Figure 9; without it they land in shared memory as
    /// in the published artifact.
    pub spmd_capture_heap_to_stack: bool,
    /// Run the generic cleanup pipeline (mem2reg/const-prop/DCE/CFG)
    /// after the OpenMP transformations.
    pub run_cleanup_pipeline: bool,
    /// Ablation: emit one guard region per side effect (the naive
    /// scheme of Figure 7b) instead of grouping side effects into
    /// shared guard regions (Figure 7c).
    pub disable_guard_grouping: bool,
}

impl Default for OpenMpOptConfig {
    fn default() -> Self {
        OpenMpOptConfig {
            disable_spmdization: false,
            disable_deglobalization: false,
            disable_state_machine_rewrite: false,
            disable_folding: false,
            disable_internalization: false,
            spmd_capture_heap_to_stack: true,
            run_cleanup_pipeline: true,
            disable_guard_grouping: false,
        }
    }
}

impl OpenMpOptConfig {
    /// Everything off — the "No OpenMP Optimization" configuration of
    /// the paper's Figure 11.
    pub fn all_disabled() -> OpenMpOptConfig {
        OpenMpOptConfig {
            disable_spmdization: true,
            disable_deglobalization: true,
            disable_state_machine_rewrite: true,
            disable_folding: true,
            disable_internalization: true,
            spmd_capture_heap_to_stack: false,
            run_cleanup_pipeline: true,
            disable_guard_grouping: false,
        }
    }

    /// Everything on (the LLVM Dev configuration).
    pub fn all_enabled() -> OpenMpOptConfig {
        OpenMpOptConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let off = OpenMpOptConfig::all_disabled();
        assert!(off.disable_spmdization && off.disable_folding);
        assert!(off.run_cleanup_pipeline);
        let on = OpenMpOptConfig::all_enabled();
        assert!(!on.disable_spmdization);
        assert!(on.spmd_capture_heap_to_stack);
    }
}
