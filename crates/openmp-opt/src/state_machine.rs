//! Custom state-machine rewrite (paper Section IV-B2).
//!
//! The frontend's generic-mode worker loop dispatches parallel regions
//! through an indirect call on the communicated work token. If all
//! parallel regions reachable from a kernel are statically known, the
//! indirect call is replaced with an if-cascade of direct calls. When
//! the world is closed we additionally eliminate the function pointers
//! entirely: the `__kmpc_parallel_51` token becomes a small integer id,
//! removing the address-taken uses that inflate register counts
//! (PR46450), and the indirect fallback becomes `unreachable`.

use crate::remarks::{actions, ids, passes, Remark, RemarkKind, Remarks};
use omp_analysis::CallGraph;
use omp_ir::{
    BlockId, CastOp, CmpOp, ExecMode, FuncId, InstId, InstKind, Module, RtlFn, Terminator, Type,
    Value,
};
use std::collections::HashMap;

/// Outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateMachineResult {
    /// Kernels rewritten with a closed-world cascade (no fallback, no
    /// function pointers).
    pub rewritten: usize,
    /// Kernels rewritten but keeping the indirect fallback.
    pub with_fallback: usize,
}

/// Analysis only: whether each generic kernel could get a custom state
/// machine (used for the Figure 9 "(1)" reporting even when SPMDization
/// obsoletes the rewrite).
pub fn possible(m: &Module) -> usize {
    let cg = CallGraph::build(m);
    m.kernels
        .iter()
        .filter(|k| k.exec_mode == ExecMode::Generic)
        .filter(|k| !known_regions(m, &cg, k.func).is_empty())
        .count()
}

/// Collects the statically known parallel regions reachable from the
/// kernel, or an empty vector when unknown dispatch is possible.
fn known_regions(m: &Module, cg: &CallGraph, kernel: FuncId) -> Vec<FuncId> {
    let reach = cg.reachable_from([kernel]);
    let mut regions = Vec::new();
    for f in &reach {
        let fun = m.func(*f);
        if fun.is_declaration() {
            continue;
        }
        let mut unknown = false;
        fun.for_each_inst(|_, _, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                args,
                ..
            } = k
            {
                let callee = m.func(*c);
                if callee.name == RtlFn::Parallel51.name() {
                    match args.first() {
                        Some(Value::Func(r)) => {
                            if !regions.contains(r) {
                                regions.push(*r);
                            }
                        }
                        _ => unknown = true,
                    }
                } else if callee.is_declaration()
                    && RtlFn::from_name(&callee.name).is_none()
                    && omp_ir::omprtl::math_fn_signature(&callee.name).is_none()
                    && !callee.attrs.no_openmp
                    && !callee.attrs.pure_fn
                {
                    // An unknown external callee could contain parallel
                    // regions we cannot enumerate.
                    unknown = true;
                }
            }
        });
        if unknown {
            return Vec::new();
        }
    }
    regions
}

/// Locates the worker dispatch site in a generic kernel: the indirect
/// call whose callee is the result of `__kmpc_kernel_parallel`.
fn find_dispatch(m: &Module, kernel: FuncId) -> Option<(BlockId, InstId, Value, Value)> {
    let f = m.func(kernel);
    let mut token_calls: Vec<InstId> = Vec::new();
    f.for_each_inst(|_, i, k| {
        if let InstKind::Call {
            callee: Value::Func(c),
            ..
        } = k
        {
            if m.func(*c).name == RtlFn::KernelParallel.name() {
                token_calls.push(i);
            }
        }
    });
    for (b, i) in f.inst_ids() {
        if let InstKind::Call { callee, args, .. } = f.inst(i) {
            if let Value::Inst(t) = callee {
                if token_calls.contains(t) {
                    return Some((b, i, *callee, args.first().copied().unwrap_or(Value::Null)));
                }
            }
        }
    }
    None
}

/// Runs the rewrite on every still-generic kernel. Region ids are
/// assigned module-wide so every rewritten kernel shares the mapping.
pub fn run(m: &mut Module, remarks: &mut Remarks) -> StateMachineResult {
    let cg = CallGraph::build(m);
    let mut result = StateMachineResult::default();
    // Closed world across the whole module: every parallel_51 token is a
    // direct function reference.
    let mut module_closed = true;
    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        f.for_each_inst(|_, _, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                args,
                ..
            } = k
            {
                if m.func(*c).name == RtlFn::Parallel51.name()
                    && !matches!(args.first(), Some(Value::Func(_)))
                {
                    module_closed = false;
                }
            }
        });
    }

    let kernels: Vec<FuncId> = m
        .kernels
        .iter()
        .filter(|k| k.exec_mode == ExecMode::Generic)
        .map(|k| k.func)
        .collect();
    let mut region_ids: HashMap<FuncId, i64> = HashMap::new();
    for kernel in kernels {
        let regions = known_regions(m, &cg, kernel);
        let kname = m.func(kernel).name.clone();
        if regions.is_empty() {
            // Either no parallel regions at all (nothing to rewrite) or
            // unknown dispatch.
            let has_dispatch = find_dispatch(m, kernel).is_some();
            if has_dispatch {
                remarks.push(
                    Remark::new(
                        ids::PARALLEL_REGION_UNKNOWN,
                        RemarkKind::Missed,
                        kname,
                        "Parallel region is used in unknown ways. Will not attempt to \
                         rewrite the state machine.",
                    )
                    .in_pass(passes::STATE_MACHINE)
                    .with_action(actions::KEEP_STATE_MACHINE),
                );
            }
            continue;
        }
        let Some((dispatch_block, dispatch_inst, token, args_val)) = find_dispatch(m, kernel)
        else {
            continue;
        };
        for (n, r) in regions.iter().enumerate() {
            region_ids.entry(*r).or_insert(n as i64 + 1);
        }
        let closed = module_closed;
        rewrite_dispatch(
            m,
            kernel,
            dispatch_block,
            dispatch_inst,
            token,
            args_val,
            &regions,
            &region_ids,
            closed,
        );
        if closed {
            result.rewritten += 1;
            remarks.push(
                Remark::new(
                    ids::CUSTOM_STATE_MACHINE,
                    RemarkKind::Passed,
                    kname,
                    "Rewriting generic-mode kernel with a customized state machine.",
                )
                .in_pass(passes::STATE_MACHINE)
                .with_action(actions::CUSTOM_STATE_MACHINE),
            );
        } else {
            result.with_fallback += 1;
            remarks.push(
                Remark::new(
                    ids::STATE_MACHINE_FALLBACK,
                    RemarkKind::Passed,
                    kname,
                    "Generic-mode kernel is executed with a customized state machine \
                     that requires a fallback.",
                )
                .in_pass(passes::STATE_MACHINE)
                .with_action(actions::STATE_MACHINE_FALLBACK),
            );
        }
    }
    // With a closed world, replace every parallel_51 function-pointer
    // token with its small-integer id (eliminating address-taken uses).
    if module_closed && !region_ids.is_empty() {
        replace_tokens_with_ids(m, &region_ids);
        for (&f, &id) in &region_ids {
            if !m.parallel_region_ids.iter().any(|(i, _)| *i == id) {
                m.parallel_region_ids.push((id, f));
            }
        }
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn rewrite_dispatch(
    m: &mut Module,
    kernel: FuncId,
    block: BlockId,
    dispatch: InstId,
    token: Value,
    args_val: Value,
    regions: &[FuncId],
    region_ids: &HashMap<FuncId, i64>,
    closed: bool,
) {
    // Split the block at the dispatch instruction.
    let f = m.func_mut(kernel);
    let insts = f.block(block).insts.clone();
    let pos = insts.iter().position(|&i| i == dispatch).expect("dispatch");
    let after: Vec<InstId> = insts[pos + 1..].to_vec();
    let term = f.block(block).term.clone();
    f.block_mut(block).insts.truncate(pos);

    // Continuation block holding everything after the dispatch.
    let cont = f.add_block();
    f.block_mut(cont).insts = after;
    f.block_mut(cont).term = term;
    // Successor phis now come from `cont`.
    let succs: Vec<BlockId> = f.block(cont).term.successors();
    for s in succs {
        let insts = f.block(s).insts.clone();
        for i in insts {
            if let InstKind::Phi { incoming, .. } = f.inst_mut(i) {
                for (p, _) in incoming.iter_mut() {
                    if *p == block {
                        *p = cont;
                    }
                }
            }
        }
    }
    // Build the cascade.
    let mut cur = block;
    for &r in regions {
        let test_bb = cur;
        let call_bb = f.add_block();
        let next_bb = f.add_block();
        let expected: Value = if closed {
            let id = region_ids[&r];
            let cast = f.append_inst(
                test_bb,
                InstKind::Cast {
                    op: CastOp::IntToPtr,
                    val: Value::i64(id),
                    to: Type::Ptr,
                },
            );
            Value::Inst(cast)
        } else {
            Value::Func(r)
        };
        let cmp = f.append_inst(
            test_bb,
            InstKind::Cmp {
                op: CmpOp::Eq,
                ty: Type::Ptr,
                lhs: token,
                rhs: expected,
            },
        );
        f.block_mut(test_bb).term = Terminator::CondBr {
            cond: Value::Inst(cmp),
            then_bb: call_bb,
            else_bb: next_bb,
        };
        f.append_inst(
            call_bb,
            InstKind::Call {
                callee: Value::Func(r),
                args: vec![args_val],
                ret: Type::Void,
            },
        );
        f.block_mut(call_bb).term = Terminator::Br(cont);
        cur = next_bb;
    }
    // Fallback.
    if closed {
        f.block_mut(cur).term = Terminator::Unreachable;
        f.remove_inst(dispatch);
    } else {
        // Move the original indirect call into the fallback block.
        f.block_mut(cur).insts.push(dispatch);
        f.block_mut(cur).term = Terminator::Br(cont);
    }
}

/// Replaces `parallel_51` function-pointer tokens with integer ids.
fn replace_tokens_with_ids(m: &mut Module, region_ids: &HashMap<FuncId, i64>) {
    for fid in m.func_ids().collect::<Vec<_>>() {
        if m.func(fid).is_declaration() {
            continue;
        }
        // Find parallel_51 calls with Func tokens.
        let mut sites: Vec<(BlockId, InstId, FuncId)> = Vec::new();
        {
            let f = m.func(fid);
            for (b, i) in f.inst_ids() {
                if let InstKind::Call {
                    callee: Value::Func(c),
                    args,
                    ..
                } = f.inst(i)
                {
                    if m.func(*c).name == RtlFn::Parallel51.name() {
                        if let Some(Value::Func(r)) = args.first() {
                            if region_ids.contains_key(r) {
                                sites.push((b, i, *r));
                            }
                        }
                    }
                }
            }
        }
        for (b, i, r) in sites {
            let id = region_ids[&r];
            let f = m.func_mut(fid);
            let pos = f
                .block(b)
                .insts
                .iter()
                .position(|&x| x == i)
                .expect("site in block");
            let cast = f.insert_inst(
                b,
                pos,
                InstKind::Cast {
                    op: CastOp::IntToPtr,
                    val: Value::i64(id),
                    to: Type::Ptr,
                },
            );
            if let InstKind::Call { args, .. } = f.inst_mut(i) {
                args[0] = Value::Inst(cast);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_analysis::CallGraph;
    use omp_frontend::{compile, FrontendOptions};

    const GENERIC_SRC: &str = r#"
void kern(double* out, long nb, long nt) {
  #pragma omp target teams distribute
  for (long b = 0; b < nb; b++) {
    double tv = (double)b;
    #pragma omp parallel for
    for (long t = 0; t < nt; t++) {
      out[b * nt + t] = tv + (double)t;
    }
  }
}
"#;

    #[test]
    fn detects_possible_rewrites() {
        let m = compile(GENERIC_SRC, &FrontendOptions::default()).unwrap();
        assert_eq!(possible(&m), 1);
    }

    #[test]
    fn closed_world_rewrite_removes_function_pointers() {
        let mut m = compile(GENERIC_SRC, &FrontendOptions::default()).unwrap();
        let mut rem = Remarks::default();
        let r = run(&mut m, &mut rem);
        assert_eq!(r.rewritten, 1);
        assert_eq!(r.with_fallback, 0);
        omp_ir::verifier::assert_valid(&m);
        // No address-taken functions remain (tokens are integer ids).
        let cg = CallGraph::build(&m);
        assert!(
            cg.address_taken.is_empty(),
            "address-taken: {:?}",
            cg.address_taken
        );
        // No indirect calls remain in the kernel.
        let k = m.kernels[0].func;
        assert!(!cg.has_indirect_call.contains(&k));
        assert_eq!(rem.count(ids::CUSTOM_STATE_MACHINE), 1);
    }

    #[test]
    fn unknown_callee_forces_fallback_detection() {
        let src = r#"
void mystery(double* x);
void kern(double* out, long nb) {
  #pragma omp target teams distribute
  for (long b = 0; b < nb; b++) {
    mystery(out);
    #pragma omp parallel
    { out[0] = 1.0; }
  }
}
"#;
        let m = compile(src, &FrontendOptions::default()).unwrap();
        // `mystery` could start parallel regions we cannot see.
        assert_eq!(possible(&m), 0);
        let mut m = m;
        let mut rem = Remarks::default();
        let r = run(&mut m, &mut rem);
        assert_eq!(r.rewritten, 0);
        assert_eq!(rem.count(ids::PARALLEL_REGION_UNKNOWN), 1);
    }

    #[test]
    fn spmd_amenable_assumption_restores_rewrite() {
        let src = r#"
#pragma omp assume ext_no_openmp
void mystery(double* x);
void kern(double* out, long nb) {
  #pragma omp target teams distribute
  for (long b = 0; b < nb; b++) {
    mystery(out);
    #pragma omp parallel
    { out[0] = 1.0; }
  }
}
"#;
        let mut m = compile(src, &FrontendOptions::default()).unwrap();
        assert_eq!(possible(&m), 1);
        let mut rem = Remarks::default();
        let r = run(&mut m, &mut rem);
        assert_eq!(r.rewritten, 1);
    }
}
