//! Aggressive internalization (paper Section IV, preamble).
//!
//! The inter-procedural analyses "perform best with full visibility of
//! the kernel, called functions, and the callers of all functions". An
//! externally visible function could be called from anywhere, poisoning
//! execution-domain and escape facts. We therefore duplicate every
//! external-linkage definition: the internal copy is used by all callers
//! inside the module (full caller visibility), while the original is
//! kept for unknown external callers.

use crate::remarks::{actions, ids, passes, Remark, RemarkKind, Remarks};
use omp_ir::{FuncId, Function, InstKind, Linkage, Module, RtlFn, Value};

/// Runs internalization and reports external declarations the analyses
/// stay blind to (OMP142). Returns the number of functions duplicated.
pub fn run_with_remarks(m: &mut Module, remarks: &mut Remarks) -> usize {
    let n = run(m);
    // A declaration has no body to duplicate: callers keep full
    // visibility of nothing, and every inter-procedural fact about the
    // callee degrades to "unknown". Surface each one actually called
    // from this module — runtime and math intrinsics excluded, their
    // semantics are modeled exactly.
    let mut called: Vec<FuncId> = Vec::new();
    for fid in m.func_ids() {
        if m.func(fid).is_declaration() {
            continue;
        }
        m.func(fid).for_each_inst(|_, _, k| {
            if let InstKind::Call {
                callee: Value::Func(c),
                ..
            } = k
            {
                if !called.contains(c) {
                    called.push(*c);
                }
            }
        });
    }
    for callee in called {
        let f = m.func(callee);
        if !f.is_declaration()
            || RtlFn::from_name(&f.name).is_some()
            || omp_ir::math_fn_signature(&f.name).is_some()
        {
            continue;
        }
        remarks.push(
            Remark::new(
                ids::INTERNALIZATION_FAILED,
                RemarkKind::Missed,
                &f.name,
                "Could not internalize function. Some optimizations may not \
                 be possible.",
            )
            .in_pass(passes::INTERNALIZE)
            .with_action(actions::KEEP_EXTERNAL),
        );
    }
    n
}

/// Runs internalization. Returns the number of functions duplicated.
pub fn run(m: &mut Module) -> usize {
    let candidates: Vec<FuncId> = m
        .func_ids()
        .filter(|&f| {
            let fun = m.func(f);
            !fun.is_declaration()
                && fun.linkage == Linkage::External
                && !m.is_kernel(f)
                && !fun.attrs.internalized_copy
                && m.function_id(&format!("{}.internalized", fun.name))
                    .is_none()
        })
        .collect();
    let mut mapping: Vec<(FuncId, FuncId)> = Vec::new();
    for orig in candidates {
        let mut copy: Function = m.func(orig).clone();
        copy.name = format!("{}.internalized", copy.name);
        copy.linkage = Linkage::Internal;
        copy.attrs.internalized_copy = true;
        let copy_id = m.add_function(copy);
        mapping.push((orig, copy_id));
    }
    // Redirect every module-internal use to the internal copy (call
    // sites and address-taken uses alike).
    for fid in m.func_ids().collect::<Vec<_>>() {
        if m.func(fid).is_declaration() {
            continue;
        }
        for &(orig, copy) in &mapping {
            m.func_mut(fid)
                .replace_all_uses(Value::Func(orig), Value::Func(copy));
        }
    }
    mapping.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::{Builder, ExecMode, KernelInfo, Type};

    #[test]
    fn duplicates_external_definitions() {
        let mut m = Module::new("t");
        let helper = m.add_function(Function::definition("helper", vec![], Type::Void));
        {
            let mut b = Builder::at_entry(&mut m, helper);
            b.ret(None);
        }
        let kern = m.add_function(Function::definition("kern", vec![], Type::Void));
        {
            let mut b = Builder::at_entry(&mut m, kern);
            b.call(helper, vec![]);
            b.ret(None);
        }
        m.kernels.push(KernelInfo {
            func: kern,
            exec_mode: ExecMode::Generic,
            num_teams: None,
            thread_limit: None,
            source_name: "kern".into(),
            launch: Default::default(),
        });
        assert_eq!(run(&mut m), 1);
        let copy = m.function_id("helper.internalized").unwrap();
        assert_eq!(m.func(copy).linkage, Linkage::Internal);
        assert!(m.func(copy).attrs.internalized_copy);
        // The kernel now calls the copy.
        let kf = m.func(kern);
        let mut calls_copy = false;
        kf.for_each_inst(|_, _, k| {
            if let omp_ir::InstKind::Call {
                callee: Value::Func(c),
                ..
            } = k
            {
                calls_copy |= *c == copy;
            }
        });
        assert!(calls_copy);
        // Original remains, externally visible.
        assert_eq!(m.func(helper).linkage, Linkage::External);
    }

    #[test]
    fn skips_kernels_declarations_and_internals() {
        let mut m = Module::new("t");
        m.add_function(Function::declaration("decl", vec![], Type::Void));
        let mut internal = Function::definition("already", vec![], Type::Void);
        internal.linkage = Linkage::Internal;
        let i = m.add_function(internal);
        {
            let mut b = Builder::at_entry(&mut m, i);
            b.ret(None);
        }
        let kern = m.add_function(Function::definition("kern", vec![], Type::Void));
        {
            let mut b = Builder::at_entry(&mut m, kern);
            b.ret(None);
        }
        m.kernels.push(KernelInfo {
            func: kern,
            exec_mode: ExecMode::Spmd,
            num_teams: None,
            thread_limit: None,
            source_name: "kern".into(),
            launch: Default::default(),
        });
        assert_eq!(run(&mut m), 0);
    }

    #[test]
    fn called_external_declaration_gets_omp142() {
        let mut m = Module::new("t");
        let ext = m.add_function(Function::declaration("mystery", vec![], Type::Void));
        let sqrt = m.add_function(Function::declaration("sqrt", vec![Type::F64], Type::F64));
        let kern = m.add_function(Function::definition("kern", vec![], Type::Void));
        {
            let mut b = Builder::at_entry(&mut m, kern);
            b.call(ext, vec![]);
            b.call(sqrt, vec![Value::f64(2.0)]);
            b.ret(None);
        }
        let mut remarks = Remarks::default();
        run_with_remarks(&mut m, &mut remarks);
        let r: Vec<_> = remarks
            .all()
            .iter()
            .filter(|r| r.id == ids::INTERNALIZATION_FAILED)
            .cloned()
            .collect();
        // The opaque declaration is reported; the math intrinsic is not.
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].function, "mystery");
        assert_eq!(r[0].pass, passes::INTERNALIZE);
        assert_eq!(r[0].action, actions::KEEP_EXTERNAL);
        assert_eq!(r[0].kind, RemarkKind::Missed);
    }

    #[test]
    fn idempotent_on_copies() {
        let mut m = Module::new("t");
        let f = m.add_function(Function::definition("f", vec![], Type::Void));
        {
            let mut b = Builder::at_entry(&mut m, f);
            b.ret(None);
        }
        assert_eq!(run(&mut m), 1);
        // Running again must not duplicate the copy (only `f` itself,
        // which already has a copy — but re-running would clash on the
        // name; the attribute check prevents re-copying copies, and the
        // unique-name assertion guards the rest).
        // `f` would be duplicated again under a clashing name; verify
        // the copy is not.
        let copy = m.function_id("f.internalized").unwrap();
        assert!(m.func(copy).attrs.internalized_copy);
    }
}
