//! Optimization remarks (paper Section IV-D) — the observability
//! surface of the optimizer.
//!
//! Every transformation emits a remark identified by a unique `OMPxxx`
//! number, mirroring the identifiers documented at
//! `https://openmp.llvm.org/remarks/OptimizationRemarks.html`. Remarks
//! either report a performed transformation or a missed opportunity
//! together with actionable advice.
//!
//! Beyond the human-readable message, every remark carries a
//! *structured* payload consumed by tooling (the differential oracle,
//! `ompgpu verify`, and the `remarks` bench binary):
//!
//! * [`Remark::pass`] — the emitting pass (`heap-to-stack`,
//!   `heap-to-shared`, `spmdization`, `state-machine`, `folding`);
//! * [`Remark::action`] — a machine-readable verb for what happened
//!   (e.g. `stackify`, `sharify`, `spmdize`, `fold`, `keep-globalized`);
//! * [`Remark::callsite`] — the IR location acted upon, when one exists
//!   (instruction name, or the folded runtime entry point);
//! * [`Remark::bytes`] — bytes moved by deglobalization actions.
//!
//! The serialized form is one JSON object per line (see
//! [`Remarks::to_json_lines`]); `docs/remarks.md` documents the format
//! and its stability guarantees.

use omp_json::escape_into as json_escape_into;
use std::fmt;

/// Remark category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemarkKind {
    /// A transformation was performed.
    Passed,
    /// An opportunity was identified but could not be taken.
    Missed,
    /// Neutral analysis information.
    Analysis,
}

impl RemarkKind {
    /// Stable lowercase name used in the serialized form.
    pub fn name(self) -> &'static str {
        match self {
            RemarkKind::Passed => "passed",
            RemarkKind::Missed => "missed",
            RemarkKind::Analysis => "analysis",
        }
    }

    fn from_name(s: &str) -> Option<RemarkKind> {
        Some(match s {
            "passed" => RemarkKind::Passed,
            "missed" => RemarkKind::Missed,
            "analysis" => RemarkKind::Analysis,
            _ => return None,
        })
    }
}

/// One optimization remark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remark {
    /// `OMPxxx` identifier (e.g. 110 for "moved to stack").
    pub id: u32,
    /// Category.
    pub kind: RemarkKind,
    /// Emitting pass (stable kebab-case name; empty when unattributed).
    pub pass: &'static str,
    /// Function the remark is attached to.
    pub function: String,
    /// IR location the remark refers to (instruction or callee name),
    /// when one exists.
    pub callsite: Option<String>,
    /// Machine-readable verb for the action taken or missed (stable
    /// kebab-case; empty when unattributed).
    pub action: &'static str,
    /// Bytes moved by the action (deglobalization passes).
    pub bytes: Option<u64>,
    /// Human-readable message.
    pub message: String,
}

impl Remark {
    /// Creates a remark carrying only the human-readable fields; attach
    /// the structured payload with the builder methods.
    pub fn new(
        id: u32,
        kind: RemarkKind,
        function: impl Into<String>,
        message: impl Into<String>,
    ) -> Remark {
        Remark {
            id,
            kind,
            pass: "",
            function: function.into(),
            callsite: None,
            action: "",
            bytes: None,
            message: message.into(),
        }
    }

    /// Attributes the remark to a pass.
    pub fn in_pass(mut self, pass: &'static str) -> Remark {
        self.pass = pass;
        self
    }

    /// Records the IR location the remark refers to.
    pub fn at(mut self, callsite: impl Into<String>) -> Remark {
        self.callsite = Some(callsite.into());
        self
    }

    /// Records the machine-readable action verb.
    pub fn with_action(mut self, action: &'static str) -> Remark {
        self.action = action;
        self
    }

    /// Records the bytes moved by the action.
    pub fn with_bytes(mut self, bytes: u64) -> Remark {
        self.bytes = Some(bytes);
        self
    }

    /// Serializes to one stable JSON object (field order and spelling
    /// are guaranteed; see `docs/remarks.md`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"id\":");
        s.push_str(&self.id.to_string());
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.name());
        s.push_str("\",\"pass\":\"");
        json_escape_into(&mut s, self.pass);
        s.push_str("\",\"function\":\"");
        json_escape_into(&mut s, &self.function);
        s.push_str("\",\"callsite\":");
        match &self.callsite {
            Some(c) => {
                s.push('"');
                json_escape_into(&mut s, c);
                s.push('"');
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"action\":\"");
        json_escape_into(&mut s, self.action);
        s.push_str("\",\"bytes\":");
        match self.bytes {
            Some(b) => s.push_str(&b.to_string()),
            None => s.push_str("null"),
        }
        s.push_str(",\"message\":\"");
        json_escape_into(&mut s, &self.message);
        s.push_str("\"}");
        s
    }

    /// Parses one remark from its serialized form. Accepts exactly the
    /// output of [`Remark::to_json`] (flat object, any field order).
    pub fn from_json(line: &str) -> Result<Remark, String> {
        let fields = parse_flat_json_object(line)?;
        let get = |k: &str| -> Result<&JsonValue, String> {
            fields
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        let id = match get("id")? {
            JsonValue::Number(n) => *n as u32,
            _ => return Err("field \"id\" must be a number".into()),
        };
        let kind = match get("kind")? {
            JsonValue::String(s) => {
                RemarkKind::from_name(s).ok_or_else(|| format!("unknown kind {s:?}"))?
            }
            _ => return Err("field \"kind\" must be a string".into()),
        };
        let pass = match get("pass")? {
            JsonValue::String(s) => intern_pass(s),
            _ => return Err("field \"pass\" must be a string".into()),
        };
        let function = match get("function")? {
            JsonValue::String(s) => s.clone(),
            _ => return Err("field \"function\" must be a string".into()),
        };
        let callsite = match get("callsite")? {
            JsonValue::String(s) => Some(s.clone()),
            JsonValue::Null => None,
            _ => return Err("field \"callsite\" must be a string or null".into()),
        };
        let action = match get("action")? {
            JsonValue::String(s) => intern_action(s),
            _ => return Err("field \"action\" must be a string".into()),
        };
        let bytes = match get("bytes")? {
            JsonValue::Number(n) => Some(*n as u64),
            JsonValue::Null => None,
            _ => return Err("field \"bytes\" must be a number or null".into()),
        };
        let message = match get("message")? {
            JsonValue::String(s) => s.clone(),
            _ => return Err("field \"message\" must be a string".into()),
        };
        Ok(Remark {
            id,
            kind,
            pass,
            function,
            callsite,
            action,
            bytes,
            message,
        })
    }
}

/// Stable pass names (the values of [`Remark::pass`]).
pub mod passes {
    /// HeapToStack deglobalization.
    pub const HEAP_TO_STACK: &str = "heap-to-stack";
    /// HeapToShared deglobalization.
    pub const HEAP_TO_SHARED: &str = "heap-to-shared";
    /// Generic-to-SPMD kernel conversion.
    pub const SPMDIZATION: &str = "spmdization";
    /// Custom state-machine rewrite.
    pub const STATE_MACHINE: &str = "state-machine";
    /// Runtime-call constant folding.
    pub const FOLDING: &str = "folding";
    /// Aggressive internalization.
    pub const INTERNALIZE: &str = "internalize";
    /// Size-budgeted function inlining (classic mid-end; runs before
    /// and after the OpenMP-aware passes).
    pub const INLINE: &str = "inline";
    /// Global value numbering / CSE (classic mid-end).
    pub const GVN: &str = "gvn";
    /// Loop-invariant code motion (classic mid-end).
    pub const LICM: &str = "licm";
    /// Task-graph / async-offload launch analysis (capture-and-replay
    /// eligibility and `nowait` overlap, from kernel launch metadata).
    pub const TASKGRAPH: &str = "taskgraph";
    /// The pass manager itself (stage timing / IR-delta remarks).
    pub const PIPELINE: &str = "pipeline";

    /// All pass names, in pipeline order.
    pub const ALL: [&str; 11] = [
        INLINE,
        INTERNALIZE,
        SPMDIZATION,
        HEAP_TO_STACK,
        HEAP_TO_SHARED,
        STATE_MACHINE,
        FOLDING,
        GVN,
        LICM,
        TASKGRAPH,
        PIPELINE,
    ];
}

/// Stable action verbs (the values of [`Remark::action`]).
pub mod actions {
    /// Allocation replaced by a stack slot.
    pub const STACKIFY: &str = "stackify";
    /// Allocation replaced by static shared memory.
    pub const SHARIFY: &str = "sharify";
    /// Allocation kept as a runtime globalization call.
    pub const KEEP_GLOBALIZED: &str = "keep-globalized";
    /// Generic kernel converted to SPMD mode.
    pub const SPMDIZE: &str = "spmdize";
    /// SPMD conversion blocked by side effects.
    pub const SPMD_BLOCKED: &str = "spmd-blocked";
    /// Dead worker machinery removed.
    pub const REMOVE_DEAD_RUNTIME: &str = "remove-dead-runtime";
    /// State machine rewritten without fallback.
    pub const CUSTOM_STATE_MACHINE: &str = "custom-state-machine";
    /// State machine rewritten, indirect fallback kept.
    pub const STATE_MACHINE_FALLBACK: &str = "state-machine-fallback";
    /// State machine kept: unknown parallel-region uses.
    pub const KEEP_STATE_MACHINE: &str = "keep-state-machine";
    /// Runtime call replaced with a constant.
    pub const FOLD: &str = "fold";
    /// External declaration left opaque to the analyses.
    pub const KEEP_EXTERNAL: &str = "keep-external";
    /// Callee body spliced over a callsite.
    pub const INLINE: &str = "inline";
    /// Callsite kept (budget, recursion, or structural runtime calls).
    pub const KEEP_CALL: &str = "keep-call";
    /// Redundant expressions replaced by dominating duplicates.
    pub const CSE: &str = "cse";
    /// Loop-invariant instructions moved to a preheader.
    pub const HOIST: &str = "hoist";
    /// Kernel is part of a `taskgraph` capture-and-replay region.
    pub const CAPTURE_REPLAY: &str = "capture-replay";
    /// `nowait` kernel eligible for asynchronous stream overlap.
    pub const ASYNC_OVERLAP: &str = "async-overlap";
}

fn intern_pass(s: &str) -> &'static str {
    passes::ALL.iter().find(|p| **p == s).copied().unwrap_or("")
}

fn intern_action(s: &str) -> &'static str {
    const ALL: [&str; 17] = [
        actions::STACKIFY,
        actions::SHARIFY,
        actions::KEEP_GLOBALIZED,
        actions::SPMDIZE,
        actions::SPMD_BLOCKED,
        actions::REMOVE_DEAD_RUNTIME,
        actions::CUSTOM_STATE_MACHINE,
        actions::STATE_MACHINE_FALLBACK,
        actions::KEEP_STATE_MACHINE,
        actions::FOLD,
        actions::KEEP_EXTERNAL,
        actions::INLINE,
        actions::KEEP_CALL,
        actions::CSE,
        actions::HOIST,
        actions::CAPTURE_REPLAY,
        actions::ASYNC_OVERLAP,
    ];
    ALL.iter().find(|a| **a == s).copied().unwrap_or("")
}

impl fmt::Display for Remark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flag = match self.kind {
            RemarkKind::Passed => "-Rpass=openmp-opt",
            RemarkKind::Missed => "-Rpass-missed=openmp-opt",
            RemarkKind::Analysis => "-Rpass-analysis=openmp-opt",
        };
        write!(
            f,
            "{}: remark: {} [OMP{}] [{}]",
            self.function, self.message, self.id, flag
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    String(String),
    Number(i64),
    Null,
}

/// Parses a flat JSON object with string / integer / null values — the
/// exact shape [`Remark::to_json`] emits. Not a general JSON parser.
fn parse_flat_json_object(s: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let b: Vec<char> = s.trim().chars().collect();
    let mut i = 0usize;
    let err = |what: &str, at: usize| format!("{what} at offset {at}");
    let skip_ws = |b: &[char], mut i: usize| {
        while i < b.len() && b[i].is_whitespace() {
            i += 1;
        }
        i
    };
    let parse_string = |b: &[char], mut i: usize| -> Result<(String, usize), String> {
        if b.get(i) != Some(&'"') {
            return Err(err("expected '\"'", i));
        }
        i += 1;
        let mut out = String::new();
        while i < b.len() {
            match b[i] {
                '"' => return Ok((out, i + 1)),
                '\\' => {
                    let e = *b.get(i + 1).ok_or_else(|| err("dangling escape", i))?;
                    match e {
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hex: String = b
                                .get(i + 2..i + 6)
                                .ok_or_else(|| err("short \\u escape", i))?
                                .iter()
                                .collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| err("bad \\u escape", i))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            i += 4;
                        }
                        other => out.push(other),
                    }
                    i += 2;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        Err(err("unterminated string", i))
    };
    i = skip_ws(&b, i);
    if b.get(i) != Some(&'{') {
        return Err(err("expected '{'", i));
    }
    i += 1;
    let mut fields = Vec::new();
    loop {
        i = skip_ws(&b, i);
        if b.get(i) == Some(&'}') {
            return Ok(fields);
        }
        let (key, ni) = parse_string(&b, i)?;
        i = skip_ws(&b, ni);
        if b.get(i) != Some(&':') {
            return Err(err("expected ':'", i));
        }
        i = skip_ws(&b, i + 1);
        let value = match b.get(i) {
            Some('"') => {
                let (v, ni) = parse_string(&b, i)?;
                i = ni;
                JsonValue::String(v)
            }
            Some('n') => {
                if b.get(i..i + 4).map(|c| c.iter().collect::<String>()) == Some("null".into()) {
                    i += 4;
                    JsonValue::Null
                } else {
                    return Err(err("expected null", i));
                }
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let start = i;
                if b[i] == '-' {
                    i += 1;
                }
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                JsonValue::Number(text.parse().map_err(|_| err("bad number", start))?)
            }
            _ => return Err(err("expected value", i)),
        };
        fields.push((key, value));
        i = skip_ws(&b, i);
        match b.get(i) {
            Some(',') => i += 1,
            Some('}') => return Ok(fields),
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
}

/// Remark identifiers used by this implementation (aligned with the
/// LLVM `openmp-opt` numbering where one exists).
pub mod ids {
    /// Moving globalized variable to the stack (HeapToStack).
    pub const MOVED_TO_STACK: u32 = 110;
    /// Replacing globalized variable with shared memory (HeapToShared).
    pub const MOVED_TO_SHARED: u32 = 111;
    /// Found thread data sharing on the GPU (globalization remains).
    pub const DATA_SHARING_REMAINS: u32 = 112;
    /// Could not move globalized variable to the stack.
    pub const STACK_MOVE_FAILED: u32 = 113;
    /// Transformed generic-mode kernel to SPMD mode.
    pub const SPMDIZED: u32 = 120;
    /// Value has potential side effects preventing SPMD-mode execution.
    pub const SPMD_BLOCKED: u32 = 121;
    /// Generic-mode kernel is executed with a customized state machine.
    pub const CUSTOM_STATE_MACHINE: u32 = 131;
    /// Generic-mode kernel needs the fallback indirect dispatch.
    pub const STATE_MACHINE_FALLBACK: u32 = 132;
    /// Parallel region is used in unknown ways; state machine kept.
    pub const PARALLEL_REGION_UNKNOWN: u32 = 133;
    /// Internalization failed for an externally visible function.
    pub const INTERNALIZATION_FAILED: u32 = 142;
    /// Replacing an OpenMP runtime call with a constant.
    pub const RUNTIME_CALL_FOLDED: u32 = 170;
    /// Removing unused/dead OpenMP runtime machinery.
    pub const DEAD_RUNTIME_CODE: u32 = 180;
    /// Callsite inlined by the classic mid-end inliner.
    pub const INLINED: u32 = 201;
    /// Callsite deliberately kept by the inliner.
    pub const INLINE_SKIPPED: u32 = 202;
    /// Redundant expressions eliminated by GVN/CSE.
    pub const CSE_ELIMINATED: u32 = 210;
    /// Loop-invariant instructions hoisted by LICM.
    pub const LOOP_INVARIANT_HOISTED: u32 = 220;
    /// Pass-manager stage summary: runs and IR-size delta (analysis).
    /// The message carries IR deltas only — never wall time — so remark
    /// streams stay deterministic across runs.
    pub const PASS_TIMING: u32 = 230;
    /// Kernel belongs to a `taskgraph` region: the host plan is
    /// captured once and replayed without per-launch setup (analysis).
    pub const TASKGRAPH_CAPTURED: u32 = 240;
    /// Kernel launched with `nowait`: eligible for asynchronous stream
    /// overlap with its sibling launches (analysis).
    pub const ASYNC_OFFLOAD: u32 = 241;
}

/// A collection of remarks with convenience queries.
#[derive(Debug, Clone, Default)]
pub struct Remarks {
    entries: Vec<Remark>,
}

impl Remarks {
    /// Adds a remark.
    pub fn push(&mut self, r: Remark) {
        self.entries.push(r);
    }

    /// All remarks in emission order.
    pub fn all(&self) -> &[Remark] {
        &self.entries
    }

    /// Number of remarks emitted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no remarks were emitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remarks with the given id.
    pub fn with_id(&self, id: u32) -> Vec<&Remark> {
        self.entries.iter().filter(|r| r.id == id).collect()
    }

    /// Count of remarks with the given id.
    pub fn count(&self, id: u32) -> usize {
        self.entries.iter().filter(|r| r.id == id).count()
    }

    /// Count of missed-opportunity remarks.
    pub fn missed(&self) -> usize {
        self.entries
            .iter()
            .filter(|r| r.kind == RemarkKind::Missed)
            .count()
    }

    /// Remarks emitted by the given pass.
    pub fn for_pass(&self, pass: &str) -> Vec<&Remark> {
        self.entries.iter().filter(|r| r.pass == pass).collect()
    }

    /// Total bytes moved by remarks of the given pass (deglobalization).
    pub fn bytes_moved(&self, pass: &str) -> u64 {
        self.entries
            .iter()
            .filter(|r| r.pass == pass && r.kind == RemarkKind::Passed)
            .filter_map(|r| r.bytes)
            .sum()
    }

    /// Serializes every remark, one JSON object per line.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.entries {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a [`Remarks::to_json_lines`] document (empty lines are
    /// skipped).
    pub fn from_json_lines(text: &str) -> Result<Remarks, String> {
        let mut rs = Remarks::default();
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            rs.push(Remark::from_json(line).map_err(|e| format!("line {}: {e}", n + 1))?);
        }
        Ok(rs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_matches_clang_style() {
        let r = Remark::new(
            ids::DATA_SHARING_REMAINS,
            RemarkKind::Missed,
            "device_function",
            "Found thread data sharing on the GPU. Expect degraded performance due to data globalization.",
        );
        let s = r.to_string();
        assert!(s.contains("[OMP112]"));
        assert!(s.contains("-Rpass-missed=openmp-opt"));
        assert!(s.contains("device_function"));
    }

    #[test]
    fn collection_queries() {
        let mut rs = Remarks::default();
        assert!(rs.is_empty());
        rs.push(Remark::new(
            ids::MOVED_TO_STACK,
            RemarkKind::Passed,
            "f",
            "x",
        ));
        rs.push(Remark::new(
            ids::MOVED_TO_STACK,
            RemarkKind::Passed,
            "g",
            "y",
        ));
        rs.push(Remark::new(ids::SPMD_BLOCKED, RemarkKind::Missed, "k", "z"));
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.count(ids::MOVED_TO_STACK), 2);
        assert_eq!(rs.with_id(ids::SPMD_BLOCKED).len(), 1);
        assert_eq!(rs.missed(), 1);
    }

    #[test]
    fn structured_fields_and_aggregates() {
        let mut rs = Remarks::default();
        rs.push(
            Remark::new(ids::MOVED_TO_STACK, RemarkKind::Passed, "f", "m")
                .in_pass(passes::HEAP_TO_STACK)
                .with_action(actions::STACKIFY)
                .at("%v3")
                .with_bytes(8),
        );
        rs.push(
            Remark::new(ids::MOVED_TO_SHARED, RemarkKind::Passed, "f", "m")
                .in_pass(passes::HEAP_TO_SHARED)
                .with_action(actions::SHARIFY)
                .with_bytes(16),
        );
        assert_eq!(rs.for_pass(passes::HEAP_TO_STACK).len(), 1);
        assert_eq!(rs.bytes_moved(passes::HEAP_TO_STACK), 8);
        assert_eq!(rs.bytes_moved(passes::HEAP_TO_SHARED), 16);
        assert_eq!(rs.bytes_moved(passes::FOLDING), 0);
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut rs = Remarks::default();
        rs.push(
            Remark::new(
                ids::RUNTIME_CALL_FOLDED,
                RemarkKind::Passed,
                "kern",
                "Replacing OpenMP runtime call \"x\" with a constant.\nnewline + tab\t.",
            )
            .in_pass(passes::FOLDING)
            .with_action(actions::FOLD)
            .at("__kmpc_get_warp_size"),
        );
        rs.push(Remark::new(
            ids::SPMD_BLOCKED,
            RemarkKind::Missed,
            "k",
            "plain",
        ));
        let text = rs.to_json_lines();
        let back = Remarks::from_json_lines(&text).unwrap();
        assert_eq!(back.all(), rs.all());
        // Stability: the serialized field spelling is part of the format.
        let first = text.lines().next().unwrap();
        for key in [
            "\"id\":",
            "\"kind\":",
            "\"pass\":",
            "\"function\":",
            "\"callsite\":",
            "\"action\":",
            "\"bytes\":",
            "\"message\":",
        ] {
            assert!(first.contains(key), "{key} missing in {first}");
        }
    }

    #[test]
    fn json_parser_rejects_malformed_lines() {
        assert!(Remark::from_json("{}").is_err());
        assert!(Remark::from_json("{\"id\":1").is_err());
        assert!(Remark::from_json("not json").is_err());
        let ok = Remark::new(ids::MOVED_TO_STACK, RemarkKind::Passed, "f", "m").to_json();
        assert!(Remark::from_json(&ok).is_ok());
    }
}
