//! Optimization remarks (paper Section IV-D).
//!
//! Every transformation emits a remark identified by a unique `OMPxxx`
//! number, mirroring the identifiers documented at
//! `https://openmp.llvm.org/remarks/OptimizationRemarks.html`. Remarks
//! either report a performed transformation or a missed opportunity
//! together with actionable advice.

use std::fmt;

/// Remark category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemarkKind {
    /// A transformation was performed.
    Passed,
    /// An opportunity was identified but could not be taken.
    Missed,
    /// Neutral analysis information.
    Analysis,
}

/// One optimization remark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remark {
    /// `OMPxxx` identifier (e.g. 110 for "moved to stack").
    pub id: u32,
    /// Category.
    pub kind: RemarkKind,
    /// Function the remark is attached to.
    pub function: String,
    /// Human-readable message.
    pub message: String,
}

impl Remark {
    /// Creates a remark.
    pub fn new(
        id: u32,
        kind: RemarkKind,
        function: impl Into<String>,
        message: impl Into<String>,
    ) -> Remark {
        Remark {
            id,
            kind,
            function: function.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Remark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flag = match self.kind {
            RemarkKind::Passed => "-Rpass=openmp-opt",
            RemarkKind::Missed => "-Rpass-missed=openmp-opt",
            RemarkKind::Analysis => "-Rpass-analysis=openmp-opt",
        };
        write!(
            f,
            "{}: remark: {} [OMP{}] [{}]",
            self.function, self.message, self.id, flag
        )
    }
}

/// Remark identifiers used by this implementation (aligned with the
/// LLVM `openmp-opt` numbering where one exists).
pub mod ids {
    /// Moving globalized variable to the stack (HeapToStack).
    pub const MOVED_TO_STACK: u32 = 110;
    /// Replacing globalized variable with shared memory (HeapToShared).
    pub const MOVED_TO_SHARED: u32 = 111;
    /// Found thread data sharing on the GPU (globalization remains).
    pub const DATA_SHARING_REMAINS: u32 = 112;
    /// Could not move globalized variable to the stack.
    pub const STACK_MOVE_FAILED: u32 = 113;
    /// Transformed generic-mode kernel to SPMD mode.
    pub const SPMDIZED: u32 = 120;
    /// Value has potential side effects preventing SPMD-mode execution.
    pub const SPMD_BLOCKED: u32 = 121;
    /// Generic-mode kernel is executed with a customized state machine.
    pub const CUSTOM_STATE_MACHINE: u32 = 131;
    /// Generic-mode kernel needs the fallback indirect dispatch.
    pub const STATE_MACHINE_FALLBACK: u32 = 132;
    /// Parallel region is used in unknown ways; state machine kept.
    pub const PARALLEL_REGION_UNKNOWN: u32 = 133;
    /// Internalization failed for an externally visible function.
    pub const INTERNALIZATION_FAILED: u32 = 142;
    /// Replacing an OpenMP runtime call with a constant.
    pub const RUNTIME_CALL_FOLDED: u32 = 170;
    /// Removing unused/dead OpenMP runtime machinery.
    pub const DEAD_RUNTIME_CODE: u32 = 180;
}

/// A collection of remarks with convenience queries.
#[derive(Debug, Clone, Default)]
pub struct Remarks {
    entries: Vec<Remark>,
}

impl Remarks {
    /// Adds a remark.
    pub fn push(&mut self, r: Remark) {
        self.entries.push(r);
    }

    /// All remarks in emission order.
    pub fn all(&self) -> &[Remark] {
        &self.entries
    }

    /// Number of remarks emitted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no remarks were emitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remarks with the given id.
    pub fn with_id(&self, id: u32) -> Vec<&Remark> {
        self.entries.iter().filter(|r| r.id == id).collect()
    }

    /// Count of remarks with the given id.
    pub fn count(&self, id: u32) -> usize {
        self.entries.iter().filter(|r| r.id == id).count()
    }

    /// Count of missed-opportunity remarks.
    pub fn missed(&self) -> usize {
        self.entries
            .iter()
            .filter(|r| r.kind == RemarkKind::Missed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format_matches_clang_style() {
        let r = Remark::new(
            ids::DATA_SHARING_REMAINS,
            RemarkKind::Missed,
            "device_function",
            "Found thread data sharing on the GPU. Expect degraded performance due to data globalization.",
        );
        let s = r.to_string();
        assert!(s.contains("[OMP112]"));
        assert!(s.contains("-Rpass-missed=openmp-opt"));
        assert!(s.contains("device_function"));
    }

    #[test]
    fn collection_queries() {
        let mut rs = Remarks::default();
        assert!(rs.is_empty());
        rs.push(Remark::new(ids::MOVED_TO_STACK, RemarkKind::Passed, "f", "x"));
        rs.push(Remark::new(ids::MOVED_TO_STACK, RemarkKind::Passed, "g", "y"));
        rs.push(Remark::new(ids::SPMD_BLOCKED, RemarkKind::Missed, "k", "z"));
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.count(ids::MOVED_TO_STACK), 2);
        assert_eq!(rs.with_id(ids::SPMD_BLOCKED).len(), 1);
        assert_eq!(rs.missed(), 1);
    }
}
