//! HeapToStack (paper Section IV-A).
//!
//! Replaces `__kmpc_alloc_shared` allocations with `alloca`s when the
//! pointer provably never becomes visible to another thread. The
//! matching `__kmpc_free_shared` calls are removed.
//!
//! With [`crate::OpenMpOptConfig::spmd_capture_heap_to_stack`] enabled,
//! the analysis additionally chases pointers stored into the capture
//! structs of *devirtualized* parallel regions (SPMDized kernels call
//! their regions directly on the same thread, so the indirection is
//! thread-local) — the D102107 extension the paper's Figure 9 relies on
//! for SU3Bench.

use crate::remarks::{actions, ids, passes, Remark, RemarkKind, Remarks};
use omp_analysis::{pointer_escapes, underlying_alloca, EscapeResult};
use omp_ir::{FuncId, InstId, InstKind, Module, RtlFn, Value};

/// Result counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapToStackResult {
    /// User variables moved to the stack.
    pub moved: usize,
    /// Compiler-synthesized parallel-region capture structs moved to the
    /// stack (counted separately: the paper's Figure 9 counts user
    /// variables).
    pub capture_structs: usize,
    /// Allocations that could not be moved (left for HeapToShared).
    pub failed: usize,
}

/// Runs HeapToStack on every function. `chase_captures` enables the
/// capture-struct extension.
pub fn run(m: &mut Module, chase_captures: bool, remarks: &mut Remarks) -> HeapToStackResult {
    let mut result = HeapToStackResult::default();
    for fid in m.func_ids().collect::<Vec<_>>() {
        if m.func(fid).is_declaration() {
            continue;
        }
        while let Some((alloc, size)) = find_candidate(m, fid, chase_captures) {
            let capture = is_capture_struct(m, fid, alloc);
            stackify(m, fid, alloc, size);
            if capture {
                result.capture_structs += 1;
            } else {
                result.moved += 1;
                remarks.push(
                    Remark::new(
                        ids::MOVED_TO_STACK,
                        RemarkKind::Passed,
                        m.func(fid).name.clone(),
                        "Moving globalized variable to the stack.",
                    )
                    .in_pass(passes::HEAP_TO_STACK)
                    .with_action(actions::STACKIFY)
                    .at(format!("%{}", alloc.index()))
                    .with_bytes(size),
                );
            }
        }
        // Count the survivors for reporting.
        let f = m.func(fid);
        let mut remaining = 0;
        f.for_each_inst(|_, _, k| {
            if is_alloc_call(m, k) {
                remaining += 1;
            }
        });
        result.failed += remaining;
    }
    result
}

fn is_alloc_call(m: &Module, k: &InstKind) -> bool {
    matches!(
        k,
        InstKind::Call {
            callee: Value::Func(c),
            ..
        } if m.func(*c).name == RtlFn::AllocShared.name()
    )
}

/// Finds one transformable allocation: an `__kmpc_alloc_shared` call
/// with a constant size whose pointer does not escape the thread.
fn find_candidate(m: &Module, fid: FuncId, chase: bool) -> Option<(InstId, u64)> {
    let f = m.func(fid);
    let mut found = None;
    f.for_each_inst(|_, i, k| {
        if found.is_some() {
            return;
        }
        if let InstKind::Call {
            callee: Value::Func(c),
            args,
            ..
        } = k
        {
            if m.func(*c).name != RtlFn::AllocShared.name() {
                return;
            }
            let Some(Value::ConstInt(size, _)) = args.first() else {
                return;
            };
            if *size < 0 {
                return;
            }
            if thread_local_pointer(m, fid, Value::Inst(i), chase, 0) {
                found = Some((i, *size as u64));
            }
        }
    });
    found
}

/// Whether the pointer is only ever used by the thread that produced
/// it. Beyond the plain escape analysis, the capture-chasing extension
/// accepts a store into a slot of a thread-local capture struct that is
/// only passed to direct calls of internal definitions, following the
/// corresponding loads in the callees.
fn thread_local_pointer(m: &Module, fid: FuncId, p: Value, chase: bool, depth: usize) -> bool {
    if depth > 4 {
        return false;
    }
    match pointer_escapes(m, fid, p) {
        EscapeResult::NoEscape => true,
        EscapeResult::Escapes(_) if chase => capture_chase(m, fid, p, depth),
        EscapeResult::Escapes(_) => false,
    }
}

/// The capture-chasing extension. Every escaping use must be a store of
/// `p` into a constant slot of a capture object whose own uses are
/// thread-local: slot stores, frees, and direct calls to internal
/// definitions where the loaded slot value stays thread-local.
fn capture_chase(m: &Module, fid: FuncId, p: Value, depth: usize) -> bool {
    let f = m.func(fid);
    // Gather all direct uses of p (and of geps derived from it).
    let mut roots = vec![p];
    let mut idx = 0;
    while idx < roots.len() {
        let root = roots[idx];
        idx += 1;
        let mut ok = true;
        let mut derived: Vec<Value> = Vec::new();
        f.for_each_inst(|_, i, k| {
            if !ok {
                return;
            }
            match k {
                InstKind::Gep { base, .. } if *base == root => {
                    derived.push(Value::Inst(i));
                }
                InstKind::Store { val, ptr } if *val == root => {
                    // p stored into a capture slot: verify the slot.
                    if !store_target_is_threadlocal_capture(m, fid, *ptr, root, depth) {
                        ok = false;
                    }
                }
                InstKind::Store { ptr, .. } if *ptr == root => {}
                InstKind::Call {
                    callee: Value::Func(c),
                    args,
                    ..
                } if args.contains(&root) => {
                    let cf = m.func(*c);
                    let name = &cf.name;
                    if name == RtlFn::FreeShared.name() {
                        return;
                    }
                    if cf
                        .param_attrs
                        .iter()
                        .zip(args)
                        .any(|(pa, a)| *a == root && pa.noescape)
                    {
                        return;
                    }
                    if cf.is_declaration() {
                        ok = false;
                        return;
                    }
                    // Follow into the definition.
                    for (j, a) in args.iter().enumerate() {
                        if *a == root
                            && !thread_local_pointer(m, *c, Value::Arg(j as u32), true, depth + 1)
                        {
                            ok = false;
                        }
                    }
                }
                InstKind::Call { args, .. } if args.contains(&root) => {
                    ok = false; // indirect call
                }
                _ => {
                    let mut used = false;
                    k.for_each_operand(|v| used |= v == root);
                    if used
                        && matches!(
                            k,
                            InstKind::Select { .. } | InstKind::Phi { .. } | InstKind::Cast { .. }
                        )
                    {
                        ok = false; // too clever; give up
                    }
                }
            }
        });
        // Escape through the terminator (return) is not thread-local.
        for b in f.block_ids() {
            f.block(b).term.for_each_operand(|v| {
                if v == root {
                    ok = false;
                }
            });
        }
        if !ok {
            return false;
        }
        for d in derived {
            if !roots.contains(&d) {
                roots.push(d);
            }
        }
    }
    true
}

/// Verifies that `slot` (the store target) belongs to a thread-local
/// capture object and that callees reading the slot keep the loaded
/// pointer thread-local.
fn store_target_is_threadlocal_capture(
    m: &Module,
    fid: FuncId,
    slot: Value,
    _stored: Value,
    depth: usize,
) -> bool {
    let f = m.func(fid);
    // The slot must be a (possibly gep-derived) pointer into an object
    // allocated in this function: an alloca or an alloc_shared call.
    let slot_offset;
    let base_obj: Value = match slot {
        Value::Inst(i) => match f.inst(i) {
            InstKind::Gep {
                base,
                index: Value::ConstInt(k, _),
                scale,
                offset,
            } => {
                slot_offset = *k * *scale as i64 + *offset;
                *base
            }
            InstKind::Alloca { .. } | InstKind::Call { .. } => {
                slot_offset = 0;
                Value::Inst(i)
            }
            _ => return false,
        },
        _ => return false,
    };
    let is_local_object = match base_obj {
        Value::Inst(i) => match f.inst(i) {
            InstKind::Alloca { .. } => true,
            k @ InstKind::Call { .. } => is_alloc_call(m, k),
            _ => underlying_alloca(f, base_obj).is_some(),
        },
        _ => false,
    };
    if !is_local_object {
        return false;
    }
    // Every use of the capture object must be: slot stores, frees, or
    // direct calls of internal definitions.
    let mut ok = true;
    let mut callees: Vec<(FuncId, u32)> = Vec::new();
    f.for_each_inst(|_, _, k| {
        if !ok {
            return;
        }
        match k {
            InstKind::Store { val, .. } if *val == base_obj => ok = false,
            InstKind::Store { .. } => {}
            InstKind::Gep { base, .. } if *base == base_obj => {}
            InstKind::Call {
                callee: Value::Func(c),
                args,
                ..
            } if args.contains(&base_obj) => {
                let cf = m.func(*c);
                if cf.name == RtlFn::FreeShared.name() {
                    return;
                }
                if cf.name == RtlFn::Parallel51.name() {
                    // Not devirtualized: workers on other threads read it.
                    ok = false;
                    return;
                }
                if cf.is_declaration() {
                    ok = false;
                    return;
                }
                for (j, a) in args.iter().enumerate() {
                    if *a == base_obj {
                        callees.push((*c, j as u32));
                    }
                }
            }
            InstKind::Call { args, .. } if args.contains(&base_obj) => ok = false,
            _ => {}
        }
    });
    if !ok {
        return false;
    }
    // Loads of the slot in this same function must stay thread-local.
    let mut local_loads: Vec<InstId> = Vec::new();
    f.for_each_inst(|_, i, k| {
        if let InstKind::Load { ptr, .. } = k {
            let off = if *ptr == base_obj {
                Some(0)
            } else if let Value::Inst(g) = ptr {
                match f.inst(*g) {
                    InstKind::Gep {
                        base,
                        index: Value::ConstInt(k2, _),
                        scale,
                        offset,
                    } if *base == base_obj => Some(*k2 * *scale as i64 + *offset),
                    _ => None,
                }
            } else {
                None
            };
            if off == Some(slot_offset) {
                local_loads.push(i);
            }
        }
    });
    for l in local_loads {
        if !thread_local_pointer(m, fid, Value::Inst(l), true, depth + 1)
            || written_through(m.func(fid), Value::Inst(l))
        {
            return false;
        }
    }
    // In each callee, the loads of our slot must stay thread-local.
    for (callee, argno) in callees {
        let cf = m.func(callee);
        let mut loads: Vec<InstId> = Vec::new();
        cf.for_each_inst(|_, i, k| {
            if let InstKind::Load { ptr, .. } = k {
                let off = match ptr {
                    Value::Arg(n) if *n == argno => Some(0),
                    Value::Inst(g) => match cf.inst(*g) {
                        InstKind::Gep {
                            base: Value::Arg(n),
                            index: Value::ConstInt(k2, _),
                            scale,
                            offset,
                        } if *n == argno => Some(*k2 * *scale as i64 + *offset),
                        _ => None,
                    },
                    _ => None,
                };
                if off == Some(slot_offset) {
                    loads.push(i);
                }
            }
        });
        for l in loads {
            // The loaded pointer must stay thread-local AND read-only:
            // if the region writes through it, threads communicate
            // through the variable and per-thread replication (stack)
            // would be wrong — HeapToShared handles those instead.
            if !thread_local_pointer(m, callee, Value::Inst(l), true, depth + 1)
                || written_through(cf, Value::Inst(l))
            {
                return false;
            }
        }
    }
    true
}

/// Whether the allocation is a compiler-synthesized parallel-region
/// capture struct: its pointer is passed to an outlined region (either
/// directly after devirtualization, or as the args operand of
/// `__kmpc_parallel_51`).
fn is_capture_struct(m: &Module, fid: FuncId, alloc: InstId) -> bool {
    let f = m.func(fid);
    let p = Value::Inst(alloc);
    let mut capture = false;
    f.for_each_inst(|_, _, k| {
        if let InstKind::Call {
            callee: Value::Func(c),
            args,
            ..
        } = k
        {
            let name = &m.func(*c).name;
            if name.starts_with("__omp_outlined.") && args.first() == Some(&p) {
                capture = true;
            }
            if name == RtlFn::Parallel51.name() && args.get(2) == Some(&p) {
                capture = true;
            }
        }
    });
    capture
}

/// Whether any store writes through `root` (or a gep derived from it)
/// in `f`.
fn written_through(f: &omp_ir::Function, root: Value) -> bool {
    let mut ptrs = vec![root];
    let mut idx = 0;
    while idx < ptrs.len() {
        let p = ptrs[idx];
        idx += 1;
        let mut hit = false;
        f.for_each_inst(|_, i, k| match k {
            InstKind::Store { ptr, .. } if *ptr == p => hit = true,
            InstKind::Gep { base, .. } if *base == p && !ptrs.contains(&Value::Inst(i)) => {
                ptrs.push(Value::Inst(i));
            }
            _ => {}
        });
        if hit {
            return true;
        }
    }
    false
}

/// Performs the replacement: alloc call becomes an `alloca`; frees on
/// the pointer are removed.
fn stackify(m: &mut Module, fid: FuncId, alloc: InstId, size: u64) {
    let p = Value::Inst(alloc);
    // Remove frees first.
    let f = m.func(fid);
    let mut frees: Vec<InstId> = Vec::new();
    f.for_each_inst(|_, i, k| {
        if let InstKind::Call {
            callee: Value::Func(c),
            args,
            ..
        } = k
        {
            if m.func(*c).name == RtlFn::FreeShared.name() && args.first() == Some(&p) {
                frees.push(i);
            }
        }
    });
    let fm = m.func_mut(fid);
    for i in frees {
        fm.remove_inst(i);
    }
    fm.replace_inst(alloc, InstKind::Alloca { size, align: 8 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::{Builder, Function, Linkage, Type};

    fn count_allocas(m: &Module, f: FuncId) -> usize {
        let mut n = 0;
        m.func(f).for_each_inst(|_, _, k| {
            if matches!(k, InstKind::Alloca { .. }) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn simple_local_allocation_is_stackified() {
        let mut m = Module::new("t");
        let f = m.add_function(Function::definition("f", vec![], Type::F64));
        let mut b = Builder::at_entry(&mut m, f);
        let p = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        b.store(Value::f64(1.0), p);
        let v = b.load(Type::F64, p);
        b.call_rtl(RtlFn::FreeShared, vec![p, Value::i64(8)]);
        b.ret(Some(v));
        let mut rem = Remarks::default();
        let r = run(&mut m, false, &mut rem);
        assert_eq!(r.moved, 1);
        assert_eq!(r.failed, 0);
        assert_eq!(count_allocas(&m, f), 1);
        assert_eq!(rem.count(ids::MOVED_TO_STACK), 1);
        omp_ir::verifier::assert_valid(&m);
        // No runtime calls remain.
        let text = omp_ir::printer::print_module(&m);
        assert!(!text.contains("call @__kmpc_alloc_shared"));
        assert!(!text.contains("call @__kmpc_free_shared"));
    }

    #[test]
    fn escaping_allocation_is_kept() {
        let mut m = Module::new("t");
        let sink = m.add_function(Function::declaration("sink", vec![Type::Ptr], Type::Void));
        let f = m.add_function(Function::definition("f", vec![], Type::Void));
        let mut b = Builder::at_entry(&mut m, f);
        let p = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        b.call(sink, vec![p]);
        b.call_rtl(RtlFn::FreeShared, vec![p, Value::i64(8)]);
        b.ret(None);
        let mut rem = Remarks::default();
        let r = run(&mut m, false, &mut rem);
        assert_eq!(r.moved, 0);
        assert_eq!(r.failed, 1);
    }

    #[test]
    fn paper_fig5_lcl_moves_arg_does_not() {
        // combine(ArgPtr, LclPtr) { unknown(ArgPtr); *LclPtr + *ArgPtr }
        let mut m = Module::new("t");
        let unknown = m.add_function(Function::declaration(
            "unknown",
            vec![Type::Ptr],
            Type::Void,
        ));
        let combine = m.add_function(Function::definition(
            "combine",
            vec![Type::Ptr, Type::Ptr],
            Type::F64,
        ));
        {
            let mut b = Builder::at_entry(&mut m, combine);
            b.call(unknown, vec![Value::Arg(0)]);
            let v = b.load(Type::F64, Value::Arg(1));
            b.ret(Some(v));
        }
        m.func_mut(combine).linkage = Linkage::Internal;
        let dev = m.add_function(Function::definition(
            "device_function",
            vec![Type::F32],
            Type::F64,
        ));
        let mut b = Builder::at_entry(&mut m, dev);
        let argp = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(4)]);
        let lclp = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        b.store(Value::Arg(0), argp);
        b.store(Value::f64(0.0), lclp);
        let v = b.call(combine, vec![argp, lclp]);
        b.call_rtl(RtlFn::FreeShared, vec![argp, Value::i64(4)]);
        b.call_rtl(RtlFn::FreeShared, vec![lclp, Value::i64(8)]);
        b.ret(Some(v));
        let mut rem = Remarks::default();
        let r = run(&mut m, false, &mut rem);
        // Lcl only read through a known function -> stack; Arg escapes
        // into `unknown` -> stays globalized.
        assert_eq!(r.moved, 1);
        assert_eq!(r.failed, 1);
        let text = omp_ir::printer::print_module(&m);
        assert!(text.contains("__kmpc_alloc_shared(i64 4)"));
        assert!(!text.contains("__kmpc_alloc_shared(i64 8)"));
    }

    #[test]
    fn written_capture_is_rejected() {
        // A region that writes through the captured pointer communicates
        // across threads: replication on the stack would be wrong, so the
        // chase must reject it (HeapToShared handles it instead).
        let mut m = Module::new("t");
        let region = m.add_function(Function::definition("wregion", vec![Type::Ptr], Type::Void));
        {
            let mut b = Builder::at_entry(&mut m, region);
            let slot = b.gep(Value::Arg(0), Value::i64(0), 8, 0);
            let tv = b.load(Type::Ptr, slot);
            b.store(Value::f64(1.0), tv);
            b.ret(None);
        }
        m.func_mut(region).linkage = Linkage::Internal;
        let k = m.add_function(Function::definition("k", vec![], Type::Void));
        let mut b = Builder::at_entry(&mut m, k);
        let tv = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        let cap = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        let slot = b.gep(cap, Value::i64(0), 8, 0);
        b.store(tv, slot);
        b.call(region, vec![cap]);
        b.call_rtl(RtlFn::FreeShared, vec![cap, Value::i64(8)]);
        b.call_rtl(RtlFn::FreeShared, vec![tv, Value::i64(8)]);
        b.ret(None);
        let mut rem = Remarks::default();
        let r = run(&mut m, true, &mut rem);
        assert_eq!(r.moved, 1, "only the capture struct moves");
        assert_eq!(r.failed, 1, "the written-through variable stays");
    }

    #[test]
    fn capture_chase_through_devirtualized_region() {
        // Mimics a SPMDized kernel: team_val allocated, its address
        // stored into a capture struct, which is passed directly to the
        // (internal) region that only loads through it.
        let mut m = Module::new("t");
        let region = m.add_function(Function::definition("region", vec![Type::Ptr], Type::Void));
        {
            let mut b = Builder::at_entry(&mut m, region);
            let slot = b.gep(Value::Arg(0), Value::i64(0), 8, 0);
            let tv = b.load(Type::Ptr, slot);
            let v = b.load(Type::F64, tv);
            let _ = v;
            b.ret(None);
        }
        m.func_mut(region).linkage = Linkage::Internal;
        let k = m.add_function(Function::definition("k", vec![], Type::Void));
        let mut b = Builder::at_entry(&mut m, k);
        let tv = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        let cap = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        let slot = b.gep(cap, Value::i64(0), 8, 0);
        b.store(tv, slot);
        b.call(region, vec![cap]);
        b.call_rtl(RtlFn::FreeShared, vec![cap, Value::i64(8)]);
        b.call_rtl(RtlFn::FreeShared, vec![tv, Value::i64(8)]);
        b.ret(None);
        // Without chasing: both stay.
        let mut rem = Remarks::default();
        let r = run(&mut m.clone(), false, &mut rem);
        assert_eq!(r.moved, 1, "only the capture struct itself moves");
        // With chasing: both move.
        let mut rem = Remarks::default();
        let r = run(&mut m, true, &mut rem);
        assert_eq!(r.moved, 2);
        assert_eq!(r.failed, 0);
        omp_ir::verifier::assert_valid(&m);
    }

    #[test]
    fn parallel51_capture_blocks_chase() {
        // Not devirtualized: the capture goes to __kmpc_parallel_51, so
        // other threads read it — no stackification of team_val.
        let mut m = Module::new("t");
        let region = m.add_function(Function::definition("region", vec![Type::Ptr], Type::Void));
        {
            let mut b = Builder::at_entry(&mut m, region);
            b.ret(None);
        }
        m.func_mut(region).linkage = Linkage::Internal;
        let k = m.add_function(Function::definition("k", vec![], Type::Void));
        let mut b = Builder::at_entry(&mut m, k);
        let tv = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        let cap = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        let slot = b.gep(cap, Value::i64(0), 8, 0);
        b.store(tv, slot);
        b.call_rtl(
            RtlFn::Parallel51,
            vec![Value::Func(region), Value::i32(-1), cap],
        );
        b.call_rtl(RtlFn::FreeShared, vec![cap, Value::i64(8)]);
        b.call_rtl(RtlFn::FreeShared, vec![tv, Value::i64(8)]);
        b.ret(None);
        let mut rem = Remarks::default();
        let r = run(&mut m, true, &mut rem);
        assert_eq!(r.moved, 0);
        assert_eq!(r.failed, 2);
    }
}
