//! # omp-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Section V):
//!
//! * `fig9` — optimization opportunities and remarks per benchmark
//!   (Figure 9);
//! * `fig10` — kernel time, shared memory and register usage per build
//!   (Figure 10);
//! * `fig11` — relative kernel performance per configuration
//!   (Figures 11a–11d), with the paper's reported values alongside;
//! * Criterion benches over the same workloads (see `benches/`).

use omp_benchmarks::Scale;
use omp_gpu::pipeline::RunOutcome;
use omp_gpu::{all_proxies, pipeline};

/// Results for one proxy application across every configuration.
pub struct ProxyResults {
    /// Benchmark name.
    pub name: &'static str,
    /// One outcome per [`omp_gpu::BuildConfig::ALL`] entry.
    pub outcomes: Vec<RunOutcome>,
}

/// Runs every proxy under every configuration at the given scale.
pub fn collect(scale: Scale) -> Vec<ProxyResults> {
    all_proxies(scale)
        .into_iter()
        .map(|app| ProxyResults {
            name: match app.name() {
                "XSBench" => "XSBench",
                "RSBench" => "RSBench",
                "SU3Bench" => "SU3Bench",
                _ => "miniQMC",
            },
            outcomes: pipeline::run_all_configs(app.as_ref()),
        })
        .collect()
}

/// Parses the scale from argv / env (`--scale bench|small`,
/// `OMP_BENCH_SCALE`); defaults to `Bench`.
pub fn scale_from_args() -> Scale {
    let mut args = std::env::args().skip(1);
    let mut scale = std::env::var("OMP_BENCH_SCALE").unwrap_or_default();
    while let Some(a) = args.next() {
        if a == "--scale" {
            scale = args.next().unwrap_or_default();
        }
    }
    match scale.as_str() {
        "small" => Scale::Small,
        _ => Scale::Bench,
    }
}

/// Formats a cycle count with thousands separators.
pub fn fmt_cycles(c: u64) -> String {
    let s = c.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_formatting() {
        assert_eq!(fmt_cycles(0), "0");
        assert_eq!(fmt_cycles(999), "999");
        assert_eq!(fmt_cycles(1000), "1,000");
        assert_eq!(fmt_cycles(1234567), "1,234,567");
    }
}
