//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Guard grouping** (paper Figure 7): naive one-guard-per-side-
//!    effect vs grouped guard regions in SPMDized kernels.
//! 2. **Capture-chasing HeapToStack** (the D102107 extension): with it
//!    SU3Bench's locals go to the stack (paper Figure 9); without it
//!    they go to shared memory (published artifact).
//! 3. **Internalization**: how much the inter-procedural analyses lose
//!    without full caller visibility.
//!
//! Usage: `cargo run --release -p omp-bench --bin ablations [--scale small]`

use omp_bench::{fmt_cycles, scale_from_args};
use omp_benchmarks::{all_proxies, verify, ProxyApp};
use omp_gpusim::Device;
use omp_opt::OpenMpOptConfig;

fn run_with(
    app: &dyn ProxyApp,
    cfg: &OpenMpOptConfig,
) -> Result<(u64, omp_opt::OptCounts), String> {
    let mut m = omp_frontend::compile(
        &app.openmp_source(),
        &omp_frontend::FrontendOptions::default(),
    )
    .map_err(|e| e.to_string())?;
    let report = omp_opt::run(&mut m, cfg);
    let mut dev = Device::new(&m, app.device_config()).map_err(|e| e.to_string())?;
    let w = app.prepare(&mut dev).map_err(|e| e.to_string())?;
    let stats = dev
        .launch(app.kernel_name(), &w.args, app.dims())
        .map_err(|e| e.to_string())?;
    verify(&mut dev, &w)?;
    Ok((stats.cycles, report.counts))
}

/// Synthetic Figure 7 kernel: several guardable side effects in the
/// sequential part, interleaved with SPMD-amenable code.
const FIG7: &str = r#"
void fig7(double* a, double* b, double* c, double* d, long nb, long nt) {
  #pragma omp target teams distribute
  for (long i = 0; i < nb; i++) {
    a[i] = (double)i;
    double x = (double)i * 3.0;
    b[i] = x + 1.0;
    double y = x * x;
    c[i] = y;
    d[i] = y - x;
    #pragma omp parallel for
    for (long t = 0; t < nt; t++) {
      a[i] = a[i] + 0.0;
    }
  }
}
"#;

fn run_fig7(cfg: &OpenMpOptConfig) -> (u64, usize) {
    use omp_gpusim::{LaunchDims, RtVal};
    let mut m = omp_frontend::compile(FIG7, &omp_frontend::FrontendOptions::default()).unwrap();
    let report = omp_opt::run(&mut m, cfg);
    let mut dev = Device::new(&m, Default::default()).unwrap();
    let nb = 32i64;
    let bufs: Vec<u64> = (0..4)
        .map(|_| dev.alloc_f64(&vec![0.0; nb as usize]).unwrap())
        .collect();
    let stats = dev
        .launch(
            "fig7",
            &[
                RtVal::Ptr(bufs[0]),
                RtVal::Ptr(bufs[1]),
                RtVal::Ptr(bufs[2]),
                RtVal::Ptr(bufs[3]),
                RtVal::I64(nb),
                RtVal::I64(8),
            ],
            LaunchDims {
                teams: Some(2),
                threads: Some(8),
            },
        )
        .unwrap();
    for (k, b) in bufs.iter().enumerate() {
        let v = dev.read_f64(*b, nb as usize).unwrap();
        for (i, got) in v.iter().enumerate() {
            let x = i as f64 * 3.0;
            let expect = match k {
                0 => i as f64,
                1 => x + 1.0,
                2 => x * x,
                _ => x * x - x,
            };
            assert_eq!(*got, expect, "buffer {k} element {i}");
        }
    }
    (stats.cycles, report.counts.guard_regions)
}

fn main() {
    let scale = scale_from_args();
    println!("Ablation studies (LLVM Dev pipeline variants)\n");

    println!("0. Synthetic Figure 7 kernel (four guarded stores per iteration):");
    let (gc, gg) = run_fig7(&OpenMpOptConfig::default());
    let (nc, ng) = run_fig7(&OpenMpOptConfig {
        disable_guard_grouping: true,
        ..OpenMpOptConfig::default()
    });
    println!(
        "   grouped: {:>10} cyc ({gg} guard regions)   naive: {:>10} cyc ({ng} guard regions)   naive is {:+.1}% slower",
        fmt_cycles(gc),
        fmt_cycles(nc),
        (nc as f64 / gc as f64 - 1.0) * 100.0
    );
    println!();

    println!("1. Guard grouping (Figure 7): grouped vs one guard per side effect");
    for app in all_proxies(scale) {
        let grouped = run_with(app.as_ref(), &OpenMpOptConfig::default());
        let naive = run_with(
            app.as_ref(),
            &OpenMpOptConfig {
                disable_guard_grouping: true,
                ..OpenMpOptConfig::default()
            },
        );
        match (grouped, naive) {
            (Ok((g, gc)), Ok((n, nc))) => println!(
                "   {:<10} grouped: {:>10} cyc ({} guards)   naive: {:>10} cyc ({} guards)   {:+.1}%",
                app.name(),
                fmt_cycles(g),
                gc.guard_regions,
                fmt_cycles(n),
                nc.guard_regions,
                (n as f64 / g as f64 - 1.0) * 100.0
            ),
            (a, b) => println!("   {:<10} grouped: {a:?}  naive: {b:?}", app.name()),
        }
    }

    println!("\n2. Capture-chasing HeapToStack (D102107): on vs off");
    for app in all_proxies(scale) {
        let on = run_with(app.as_ref(), &OpenMpOptConfig::default());
        let off = run_with(
            app.as_ref(),
            &OpenMpOptConfig {
                spmd_capture_heap_to_stack: false,
                ..OpenMpOptConfig::default()
            },
        );
        match (on, off) {
            (Ok((a, ac)), Ok((b, bc))) => println!(
                "   {:<10} with: {:>10} cyc (h2s={}, shared={})   without: {:>10} cyc (h2s={}, shared={})",
                app.name(),
                fmt_cycles(a),
                ac.heap_to_stack,
                ac.heap_to_shared,
                fmt_cycles(b),
                bc.heap_to_stack,
                bc.heap_to_shared,
            ),
            (a, b) => println!("   {:<10} with: {a:?}  without: {b:?}", app.name()),
        }
    }

    println!("\n3. Internalization: on vs off");
    for app in all_proxies(scale) {
        let on = run_with(app.as_ref(), &OpenMpOptConfig::default());
        let off = run_with(
            app.as_ref(),
            &OpenMpOptConfig {
                disable_internalization: true,
                ..OpenMpOptConfig::default()
            },
        );
        match (on, off) {
            (Ok((a, ac)), Ok((b, bc))) => println!(
                "   {:<10} with: {:>10} cyc (h2s={}, spmd={})   without: {:>10} cyc (h2s={}, spmd={})",
                app.name(),
                fmt_cycles(a),
                ac.heap_to_stack,
                ac.spmdized,
                fmt_cycles(b),
                bc.heap_to_stack,
                bc.spmdized,
            ),
            (a, b) => println!("   {:<10} with: {a:?}  without: {b:?}", app.name()),
        }
    }
}
