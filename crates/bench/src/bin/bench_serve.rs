//! Wall-clock benchmark for the `ompgpu serve` compile service.
//!
//! Drives an in-process serve executor with many concurrent clients:
//! one **cold** pass against empty caches, then a byte-identical
//! **warm** pass over the same request corpus, measuring requests per
//! second and cache hit rates for each. The results land as the
//! informational `"serve"` section of `BENCH_gpusim.json`:
//!
//! ```text
//! cargo run --release -p omp-bench --bin bench_serve -- \
//!     [--clients N] [--out BENCH_gpusim.json]
//! ```
//!
//! Two oracles ride along with the timing:
//!
//! * **determinism** — for every request id, the warm response's
//!   `result` payload must be byte-identical to the cold one (the
//!   `stats` op is excluded by the protocol spec; the envelope's
//!   `cache` accounting is expected to differ);
//! * **throughput** — the warm pass must clear 3× the cold pass's
//!   requests per second, the PR's acceptance floor. A miss prints a
//!   WARNING but, like the rest of the bench stage, stays
//!   informational.

use omp_gpu::serve::{spawn_executor, ExecutorHandle, Session};
use omp_json::{JsonWriter, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// Source template; each corpus entry varies the loop body so every
/// source is a distinct frontend-tier entry.
fn subject_source(variant: usize) -> String {
    format!(
        r#"
// oracle-kernel: work{variant}
// oracle-teams: 2
// oracle-threads: 8
// oracle-arg: buf f64 64 iota
// oracle-arg: f64 {variant}.5
// oracle-arg: i64 64
void work{variant}(double* a, double f, long n) {{
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) {{ a[i] = a[i] * f + {variant}.0; }}
}}
"#
    )
}

/// Builds the request corpus: for each subject, every request type the
/// service accepts (minus `stats`/`shutdown`, which are excluded from
/// the determinism oracle), across two configurations.
fn build_corpus(subjects: usize) -> Vec<(u64, String)> {
    let mut corpus = Vec::new();
    let mut id = 0u64;
    let mut push = |lines: &mut Vec<(u64, String)>, op: &str, source: &str, config: &str| {
        id += 1;
        let mut w = JsonWriter::with_capacity(512);
        w.begin_object();
        w.key("id").u64(id);
        w.key("op").string(op);
        w.key("source").string(source);
        w.key("name").string(&format!("bench{id}"));
        w.key("config").string(config);
        w.end_object();
        lines.push((id, w.finish()));
    };
    for v in 0..subjects {
        let source = subject_source(v);
        for config in ["dev", "llvm12"] {
            push(&mut corpus, "compile", &source, config);
            push(&mut corpus, "run", &source, config);
            push(&mut corpus, "profile", &source, config);
            push(&mut corpus, "sanitize", &source, config);
        }
        push(&mut corpus, "verify", &source, "dev");
    }
    corpus
}

/// Fires the corpus at the executor from `clients` threads (striped
/// round-robin) and returns wall seconds plus id → response.
fn run_pass(
    handle: &ExecutorHandle,
    corpus: &[(u64, String)],
    clients: usize,
) -> (f64, BTreeMap<u64, String>) {
    let started = Instant::now();
    let responses = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for c in 0..clients {
            let handle = handle.clone();
            workers.push(scope.spawn(move || {
                let mut got: Vec<(u64, String)> = Vec::new();
                for (id, line) in corpus.iter().skip(c).step_by(clients) {
                    got.push((*id, handle.request(line)));
                }
                got
            }));
        }
        let mut merged = BTreeMap::new();
        for w in workers {
            merged.extend(w.join().expect("client thread panicked"));
        }
        merged
    });
    (started.elapsed().as_secs_f64(), responses)
}

/// Cumulative (hits, misses) per tier from a `stats` response.
fn tier_totals(handle: &ExecutorHandle) -> [(u64, u64); 3] {
    let resp = handle.request("{\"op\":\"stats\"}");
    let v = omp_json::parse(&resp).expect("stats response parses");
    let cache = v
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("stats result carries cache totals");
    ["frontend", "optimized", "device"].map(|tier| {
        let t = cache.get(tier).expect("tier present");
        (
            t.get("hits").and_then(Value::as_u64).unwrap_or(0),
            t.get("misses").and_then(Value::as_u64).unwrap_or(0),
        )
    })
}

/// The `result` payload of a response, normalized through the JSON
/// printer (both passes use the same serializer, so equal normalized
/// text is byte-equal wire text).
fn result_payload(response: &str) -> Option<String> {
    omp_json::parse(response)
        .ok()?
        .get("result")
        .map(Value::to_json)
}

fn write_tier_rates(w: &mut JsonWriter, before: &[(u64, u64); 3], after: &[(u64, u64); 3]) {
    w.begin_object();
    for (i, tier) in ["frontend", "optimized", "device"].iter().enumerate() {
        let hits = after[i].0 - before[i].0;
        let misses = after[i].1 - before[i].1;
        let total = hits + misses;
        w.key(tier).begin_object();
        w.key("hits").u64(hits);
        w.key("misses").u64(misses);
        w.key("hit_rate").f64(if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        });
        w.end_object();
    }
    w.end_object();
}

fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Replaces (or appends) the top-level `"serve"` member of the bench
/// artifact, preserving every other member byte-for-byte.
fn patch_artifact(path: &str, serve_json: &str) -> Result<(), String> {
    let members: Vec<(String, Value)> = match std::fs::read_to_string(path) {
        Ok(text) => match omp_json::parse(&text) {
            Ok(Value::Object(members)) => members,
            Ok(_) | Err(_) => {
                return Err(format!("{path} exists but is not a JSON object"));
            }
        },
        Err(_) => Vec::new(),
    };
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    for (k, v) in &members {
        if k != "serve" {
            w.key(k).raw(&v.to_json());
        }
    }
    w.key("serve").raw(serve_json);
    w.end_object();
    std::fs::write(path, w.finish() + "\n").map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() {
    let mut clients = 4usize;
    let mut out_path = "BENCH_gpusim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => clients = n,
                _ => {
                    eprintln!("bench_serve: --clients needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("bench_serve: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bench_serve: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let corpus = build_corpus(3);
    let (handle, executor) = spawn_executor(Session::default());

    let base = tier_totals(&handle);
    let (cold_secs, cold) = run_pass(&handle, &corpus, clients);
    let after_cold = tier_totals(&handle);
    let (warm_secs, warm) = run_pass(&handle, &corpus, clients);
    let after_warm = tier_totals(&handle);

    handle.request("{\"op\":\"shutdown\"}");
    let _ = executor.join();

    // Determinism oracle: identical request → byte-identical result.
    let mut mismatched: Vec<u64> = Vec::new();
    for (id, cold_resp) in &cold {
        let warm_resp = warm.get(id).expect("warm pass covers every id");
        if result_payload(cold_resp) != result_payload(warm_resp) {
            mismatched.push(*id);
        }
    }

    let n = corpus.len() as f64;
    let cold_rps = n / cold_secs;
    let warm_rps = n / warm_secs;
    let speedup = warm_rps / cold_rps;

    let mut w = JsonWriter::with_capacity(2048);
    w.begin_object();
    w.key("schema").string("ompgpu-bench-serve/v1");
    w.key("git_revision").string(&git_revision());
    w.key("clients").usize(clients);
    w.key("requests_per_pass").usize(corpus.len());
    w.key("cold").begin_object();
    w.key("wall_seconds").f64(cold_secs);
    w.key("req_per_sec").f64(cold_rps);
    w.key("cache");
    write_tier_rates(&mut w, &base, &after_cold);
    w.end_object();
    w.key("warm").begin_object();
    w.key("wall_seconds").f64(warm_secs);
    w.key("req_per_sec").f64(warm_rps);
    w.key("cache");
    write_tier_rates(&mut w, &after_cold, &after_warm);
    w.end_object();
    w.key("warm_vs_cold_speedup").f64(speedup);
    w.key("byte_identical_results").bool(mismatched.is_empty());
    w.key("mismatched_ids").begin_array();
    for id in &mismatched {
        w.u64(*id);
    }
    w.end_array();
    w.end_object();
    let serve_json = w.finish();

    if let Err(e) = patch_artifact(&out_path, &serve_json) {
        eprintln!("bench_serve: {e}");
        std::process::exit(1);
    }

    println!(
        "serve bench: {} requests x {} clients: cold {:.1} req/s, warm {:.1} req/s ({:.1}x)",
        corpus.len(),
        clients,
        cold_rps,
        warm_rps,
        speedup
    );
    if !mismatched.is_empty() {
        eprintln!("bench_serve: WARNING: warm results diverged from cold for ids {mismatched:?}");
    }
    if speedup < 3.0 {
        eprintln!("bench_serve: WARNING: warm/cold speedup {speedup:.2}x below the 3x floor");
    }
    println!("serve section written to {out_path}");
}
