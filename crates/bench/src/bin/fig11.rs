//! Regenerates the paper's Figure 11 (a-d): GPU kernel performance per
//! optimization configuration, normalized to the LLVM 12 baseline.
//!
//! Usage:
//!   cargo run --release -p omp-bench --bin fig11 [--scale small] [benchmark-name]
//! where `name` filters to one of xsbench/rsbench/su3bench/miniqmc.

use omp_bench::{collect, fmt_cycles, scale_from_args};

/// Paper-reported relative values (Figure 11), for side-by-side shape
/// comparison. `None` = not reported / OOM.
fn paper_values(bench: &str) -> [(&'static str, Option<f64>); 7] {
    match bench {
        "XSBench" => [
            ("LLVM 12", Some(1.0)),
            ("No OpenMP Optimization", Some(1.69)),
            ("h2s2", Some(1.69)),
            ("h2s2 + RTCspec", Some(1.53)),
            ("h2s2 + RTCspec + CSM", None),
            ("LLVM Dev", Some(1.53)),
            ("CUDA", Some(2.14)),
        ],
        "RSBench" => [
            ("LLVM 12", Some(1.0)),
            ("No OpenMP Optimization", None), // OOM
            ("h2s2", Some(13.21)),
            ("h2s2 + RTCspec", Some(13.35)),
            ("h2s2 + RTCspec + CSM", Some(12.72)),
            ("LLVM Dev", Some(13.35)),
            ("CUDA", Some(13.63)),
        ],
        "SU3Bench" => [
            ("LLVM 12", Some(1.0)),
            ("No OpenMP Optimization", Some(0.57)),
            ("h2s2", Some(0.99)),
            ("h2s2 + RTCspec", Some(0.99)),
            ("h2s2 + RTCspec + CSM", Some(0.99)),
            ("LLVM Dev", Some(10.84)),
            ("CUDA", Some(32.98)),
        ],
        _ => [
            ("LLVM 12", Some(1.0)),
            ("No OpenMP Optimization", Some(0.07)),
            ("h2s2", Some(0.92)),
            ("h2s2 + RTCspec", Some(0.99)),
            ("h2s2 + RTCspec + CSM", Some(1.6)),
            ("LLVM Dev", Some(2.26)),
            ("CUDA", None),
        ],
    }
}

fn main() {
    let scale = scale_from_args();
    let filter: Option<String> = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--") && a != "small" && a != "bench")
        .map(|s| s.to_lowercase());
    println!("Figure 11: kernel performance relative to LLVM 12 (higher is better)");
    for pr in collect(scale) {
        if let Some(f) = &filter {
            if !pr.name.to_lowercase().contains(f) {
                continue;
            }
        }
        println!();
        println!("== {} ==", pr.name);
        let base = pr.outcomes[0].cycles();
        let paper = paper_values(pr.name);
        println!(
            "  {:<44} {:>14} {:>9} {:>9}",
            "Configuration", "cycles", "measured", "paper"
        );
        for (o, (_, pval)) in pr.outcomes.iter().zip(paper.iter()) {
            let paper_str = match pval {
                Some(v) => format!("{v:.2}x"),
                None => "-".to_string(),
            };
            match (&o.stats, base) {
                (Some(s), Some(b)) => {
                    let rel = b as f64 / s.cycles as f64;
                    let bar = "#".repeat((rel * 4.0).round().max(1.0) as usize);
                    println!(
                        "  {:<44} {:>14} {:>8.2}x {:>9}  {}",
                        o.config.label(),
                        fmt_cycles(s.cycles),
                        rel,
                        paper_str,
                        bar
                    );
                }
                _ => {
                    println!(
                        "  {:<44} {:>14} {:>9} {:>9}",
                        o.config.label(),
                        o.error.as_deref().unwrap_or("failed"),
                        "OOM",
                        paper_str
                    );
                }
            }
        }
    }
}
