//! Dumps every optimization remark (paper Section IV-D) emitted while
//! compiling the four proxy applications with the full pipeline —
//! the "actionable and informative feedback" deliverable.
//!
//! Usage:
//! `cargo run --release -p omp-bench --bin remarks [--scale small] [--json]`
//!
//! With `--json` the remarks are printed in the machine-readable
//! JSON-lines format of `docs/remarks.md` (one object per remark,
//! prefixed by nothing, suitable for piping into `jq`), followed by a
//! per-pass statistics table on stderr-free stdout lines starting with
//! `#`.

use omp_bench::scale_from_args;
use omp_benchmarks::all_proxies;
use omp_gpu::{pipeline, BuildConfig};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let scale = scale_from_args();
    if !json {
        println!("Optimization remarks (LLVM Dev pipeline; see docs/remarks.md)");
    }
    for app in all_proxies(scale) {
        let (_, report) = pipeline::build(&app.openmp_source(), BuildConfig::LlvmDev)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        let report = report.expect("optimizer ran");
        if json {
            println!("# {} ({} remarks)", app.name(), report.remarks.len());
            print!("{}", report.remarks.to_json_lines());
            for s in report.pass_stats() {
                println!(
                    "# pass={} transformed={} missed={} bytes_moved={}",
                    s.pass, s.transformed, s.missed, s.bytes_moved
                );
            }
        } else {
            println!("\n== {} ({} remarks) ==", app.name(), report.remarks.len());
            for r in report.remarks.all() {
                println!("  {r}");
            }
        }
    }
}
