//! Dumps every optimization remark (paper Section IV-D) emitted while
//! compiling the four proxy applications with the full pipeline —
//! the "actionable and informative feedback" deliverable.
//!
//! Usage: `cargo run --release -p omp-bench --bin remarks [--scale small]`

use omp_bench::scale_from_args;
use omp_benchmarks::all_proxies;
use omp_gpu::{pipeline, BuildConfig};

fn main() {
    let scale = scale_from_args();
    println!("Optimization remarks (LLVM Dev pipeline; see docs/remarks.md)");
    for app in all_proxies(scale) {
        let (_, report) = pipeline::build(&app.openmp_source(), BuildConfig::LlvmDev)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        let report = report.expect("optimizer ran");
        println!("\n== {} ({} remarks) ==", app.name(), report.remarks.len());
        for r in report.remarks.all() {
            println!("  {r}");
        }
    }
}
