//! Regenerates the paper's Figure 9: optimization opportunities and
//! remarks emitted for the benchmarked kernels.
//!
//! Usage: `cargo run --release -p omp-bench --bin fig9 [--scale small]`

use omp_bench::{collect, scale_from_args};
use omp_gpu::BuildConfig;

fn main() {
    let scale = scale_from_args();
    println!("Figure 9: optimization opportunities and remarks (LLVM Dev pipeline)");
    println!();
    println!(
        "{:<10} | {:^23} | {:^21} | {:^17} | {:^7}",
        "", "Section IV-A", "Section IV-B", "Section IV-C", "IV-D"
    );
    println!(
        "{:<10} | {:>10} / {:<10} | {:>8} / {:<10} | {:>6} / {:<8} | {:>7}",
        "", "heap-2-stack", "shared", "CSM", "SPMDization", "EM", "PL", "Remarks"
    );
    println!("{}", "-".repeat(92));
    for pr in collect(scale) {
        let dev = pr
            .outcomes
            .iter()
            .find(|o| o.config == BuildConfig::LlvmDev)
            .expect("dev outcome");
        let Some(report) = &dev.report else {
            continue;
        };
        let c = report.counts;
        // The paper parenthesizes CSM when SPMDization obsoletes it.
        let csm = if c.spmdized > 0 && c.csm_possible > 0 {
            format!("({})", c.csm_possible)
        } else if c.csm_possible == 0 {
            "n/a".to_string()
        } else {
            format!("{}", c.csm_rewritten)
        };
        let spmd = if c.csm_possible == 0 {
            "n/a".to_string()
        } else {
            format!("{}", c.spmdized)
        };
        println!(
            "{:<10} | {:>12} / {:<8} | {:>8} / {:<10} | {:>6} / {:<8} | {:>7}",
            pr.name,
            c.heap_to_stack,
            c.heap_to_shared,
            csm,
            spmd,
            c.folds_exec_mode,
            c.folds_parallel_level,
            report.remarks.len(),
        );
    }
    println!();
    println!("Paper (Fig. 9):  XSBench 3/0, n/a, 5/1, 3   RSBench 7/0, n/a, 5/1, 7");
    println!("                 SU3Bench 4/0, (1)/1, 2/2, 5   miniQMC 3/18, (1)/1, 3/2, 22");
}
