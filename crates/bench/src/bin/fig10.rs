//! Regenerates the paper's Figure 10: cumulative GPU kernel execution
//! time, shared memory and register usage per benchmark and compiler.
//!
//! Usage: `cargo run --release -p omp-bench --bin fig10 [--scale small]`

use omp_bench::{collect, fmt_cycles, scale_from_args};
use omp_gpu::BuildConfig;

fn main() {
    let scale = scale_from_args();
    println!("Figure 10: kernel time, shared memory and register usage");
    println!();
    for pr in collect(scale) {
        println!("{}:", pr.name);
        println!(
            "  {:<44} {:>14} {:>12} {:>8}",
            "Build", "Time (cycles)", "SMem (KB)", "# Regs"
        );
        for o in &pr.outcomes {
            let relevant = matches!(
                o.config,
                BuildConfig::CudaStyle | BuildConfig::Llvm12Baseline | BuildConfig::LlvmDev
            );
            if !relevant {
                continue;
            }
            match &o.stats {
                Some(s) => println!(
                    "  {:<44} {:>14} {:>12.3} {:>8}",
                    o.config.label(),
                    fmt_cycles(s.cycles),
                    s.shared_mem_bytes as f64 / 1024.0,
                    s.registers
                ),
                None => println!(
                    "  {:<44} {:>14}",
                    o.config.label(),
                    o.error.as_deref().unwrap_or("failed")
                ),
            }
        }
        println!();
    }
    println!("Paper (Fig. 10, seconds/KB/regs on a V100):");
    println!("  RSBench:  CUDA 1.95s/0.043/30   LLVM12 26.59s/1.0/154   Dev 1.99s/2.4/255");
    println!("  XSBench:  CUDA 0.35s/0.047/32   LLVM12 0.75s/1.0/144    Dev 0.49s/2.4/170");
    println!("  SU3Bench: CUDA 0.081s/0/26      LLVM12 2.6s/1.1/70      Dev 0.29s/0.035/40");
    println!("  miniQMC:                        LLVM12 0.24s/1.1/254    Dev 0.11s/0.47/196");
}
