//! Wall-clock benchmark for the simulator's execution-plan layer.
//!
//! Times host seconds (and records simulated cycles) for every
//! proxy × configuration, plus the headline `ompgpu verify` wall-clock
//! the PR's acceptance criterion is stated against, and writes the
//! results as JSON:
//!
//! ```text
//! cargo run --release -p omp-bench --bin bench_gpusim -- \
//!     [--scale small|bench] [--jobs N] [--out BENCH_gpusim.json]
//! ```
//!
//! The JSON embeds the pre-plan baseline measured on this container
//! before the execution-plan layer landed, so the speedup is visible
//! from the artifact alone.

use omp_benchmarks::Scale;
use omp_gpu::oracle::VerifyOptions;
use omp_gpu::{all_proxies, oracle, pipeline, BuildConfig, Tier};
use omp_gpusim::{Device, DeviceConfig, LaunchDims, RtVal};
use omp_json::escape as json_escape;
use std::fmt::Write as _;
use std::time::Instant;

/// `ompgpu verify --scale small` wall-clock of the pre-execution-plan
/// seed on this container (1 CPU). The container's wall-clock drifts
/// 30-50% between time windows, so these were taken *interleaved* with
/// the post-plan binary in one window: each seed run below was
/// immediately followed by a post-plan run
/// ([`INTERLEAVED_POST_PLAN_SECONDS`]); the pairwise ratio is the
/// defensible speedup, independent of which window the artifact is
/// regenerated in.
const PRE_PLAN_VERIFY_SMALL_SECONDS: [f64; 7] = [0.180, 0.187, 0.162, 0.207, 0.175, 0.189, 0.231];

/// Post-plan `ompgpu verify --scale small` runs from the same
/// interleaved measurement window as [`PRE_PLAN_VERIFY_SMALL_SECONDS`].
const INTERLEAVED_POST_PLAN_SECONDS: [f64; 7] = [0.095, 0.096, 0.114, 0.110, 0.113, 0.134, 0.148];

/// The revision the pre-plan baseline was measured against: the tree
/// immediately before the execution-plan layer landed. Regenerating
/// the artifact at any other revision reuses these numbers, so the
/// stamp (plus a stderr warning) keeps the provenance honest.
const PRE_PLAN_BASELINE_REVISION: &str = "0929b94f9a72d36125e62e8aff068ae8ecc3234f";

struct ConfigRow {
    config: BuildConfig,
    label: &'static str,
    wall_seconds: f64,
    cycles: Option<u64>,
    error: Option<String>,
}

struct ProxyRows {
    name: &'static str,
    rows: Vec<ConfigRow>,
}

/// The repository revision the numbers were measured at, so a committed
/// artifact is traceable to its code.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Whether the working tree differs from `git_revision` — a dirty
/// artifact is not traceable to its recorded commit. `None` when git is
/// unavailable.
fn git_dirty() -> Option<bool> {
    std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.iter().all(|b| b.is_ascii_whitespace()))
}

/// Tier-invariant digest of an oracle report: every case verdict and
/// per-config output bit pattern, error string, and statistic except
/// the informational `tier` tag. Two tiers running the same suite must
/// produce equal digests — this is the cross-tier identity check the
/// bench artifact records alongside the wall clocks.
fn report_fingerprint(report: &oracle::OracleReport) -> String {
    let mut s = String::new();
    for case in &report.cases {
        let _ = write!(s, "{}\u{1}{:?}\u{1}", case.name, case.failures);
        for r in &case.results {
            let _ = write!(s, "{:?}\u{1}{:?}\u{1}", r.config, r.bits);
            if let Some(st) = &r.stats {
                let mut st = st.clone();
                st.tier = Tier::Interp;
                // The superinstruction hit counters are tier-dependent
                // by construction (the interpreter executes no compiled
                // steps), so they are normalized away like the tag.
                st.superinstructions = [0; 4];
                let _ = write!(s, "{}\u{1}", st.to_json());
            }
            let _ = write!(s, "{:?}\u{2}", r.error);
        }
    }
    s
}

/// Geometric mean of per-proxy Dev-vs-CUDA (or any) cycle ratios.
fn geomean(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    Some((ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp())
}

fn main() {
    let mut scale = Scale::Small;
    let mut jobs: Option<u32> = None;
    let mut out_path = "BENCH_gpusim.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("small") => scale = Scale::Small,
                Some("bench") => scale = Scale::Bench,
                other => {
                    eprintln!("bench_gpusim: bad --scale {other:?}");
                    std::process::exit(2);
                }
            },
            "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => jobs = Some(n),
                None => {
                    eprintln!("bench_gpusim: --jobs needs a number");
                    std::process::exit(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("bench_gpusim: --out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bench_gpusim: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Bench => "bench",
    };

    // Headline number: the full differential oracle over all proxies,
    // the same work `ompgpu verify --scale <scale>` does. Three runs:
    // the first is cold (page faults, cache warmup), so the minimum is
    // the honest steady-state figure and all runs are recorded.
    let mut verify_runs = [0f64; 3];
    let mut verify_passed = true;
    for r in verify_runs.iter_mut() {
        let t0 = Instant::now();
        let report = oracle::verify_proxies_jobs(scale, jobs);
        *r = t0.elapsed().as_secs_f64();
        verify_passed &= report.passed();
    }
    let verify_seconds = verify_runs.iter().cloned().fold(f64::INFINITY, f64::min);
    let verify_mean = verify_runs.iter().sum::<f64>() / verify_runs.len() as f64;

    // Per-proxy, per-config wall clock and simulated cycles.
    let mut proxies: Vec<ProxyRows> = Vec::new();
    for app in all_proxies(scale) {
        let mut rows = Vec::new();
        for &config in BuildConfig::ALL.iter() {
            let t = Instant::now();
            let outcome = pipeline::run_proxy(app.as_ref(), config);
            rows.push(ConfigRow {
                config,
                label: config.label(),
                wall_seconds: t.elapsed().as_secs_f64(),
                cycles: outcome.cycles(),
                error: outcome.error,
            });
        }
        proxies.push(ProxyRows {
            name: app.name(),
            rows,
        });
    }

    // Tier comparison: the same verify suite forced onto each
    // execution tier (3 runs per tier, minimum = steady state), plus
    // per-proxy Dev-pipeline wall clock per tier with a simulated-cycle
    // cross-check — the tiers must agree bit-for-bit on cycles.
    //
    // Always measured at bench scale regardless of `--scale`: the tier
    // only changes execution, and at small scale the shared frontend +
    // pass pipeline (~45ms, identical in both tiers) dominates the
    // wall clock and Amdahl-caps the observable ratio. Bench scale is
    // execution-dominated, so the number reflects the engine itself.
    let tier_scale = Scale::Bench;
    let tier_verify_once = |tier: Tier| -> (f64, bool, String) {
        let opts = VerifyOptions {
            jobs,
            watchdog: None,
            tier: Some(tier),
        };
        let t0 = Instant::now();
        let report = oracle::verify_proxies_opts(tier_scale, opts);
        let secs = t0.elapsed().as_secs_f64();
        let passed = report.passed();
        (secs, passed, report_fingerprint(&report))
    };
    // Interleave the tiers (same-window pairs, like the pre-plan
    // baseline section) so host drift hits both equally; best-of-5
    // pairs is the steady-state estimate.
    let mut tier_interp_seconds = f64::INFINITY;
    let mut tier_compiled_seconds = f64::INFINITY;
    let mut tier_interp_passed = true;
    let mut tier_compiled_passed = true;
    let mut tier_interp_digest = String::new();
    let mut tier_compiled_digest = String::new();
    for _ in 0..5 {
        let (si, pi, di) = tier_verify_once(Tier::Interp);
        let (sc, pc, dc) = tier_verify_once(Tier::Compiled);
        tier_interp_seconds = tier_interp_seconds.min(si);
        tier_compiled_seconds = tier_compiled_seconds.min(sc);
        tier_interp_passed &= pi;
        tier_compiled_passed &= pc;
        tier_interp_digest = di;
        tier_compiled_digest = dc;
    }
    let tier_verify_speedup = tier_interp_seconds / tier_compiled_seconds.max(1e-9);
    let tier_reports_identical = tier_interp_digest == tier_compiled_digest;

    struct TierRow {
        name: &'static str,
        interp_seconds: f64,
        compiled_seconds: f64,
        cycles_identical: bool,
    }
    let mut tier_rows: Vec<TierRow> = Vec::new();
    for app in all_proxies(tier_scale) {
        let best_run = |tier: Tier| -> (f64, Option<u64>) {
            let mut best = f64::INFINITY;
            let mut cycles = None;
            for _ in 0..3 {
                let t0 = Instant::now();
                let outcome =
                    pipeline::run_proxy_tiered(app.as_ref(), BuildConfig::LlvmDev, Some(tier));
                best = best.min(t0.elapsed().as_secs_f64());
                cycles = outcome.cycles();
            }
            (best, cycles)
        };
        let (interp_seconds, interp_cycles) = best_run(Tier::Interp);
        let (compiled_seconds, compiled_cycles) = best_run(Tier::Compiled);
        tier_rows.push(TierRow {
            name: app.name(),
            interp_seconds,
            compiled_seconds,
            cycles_identical: interp_cycles.is_some() && interp_cycles == compiled_cycles,
        });
    }
    let tier_launch_geomean = geomean(
        &tier_rows
            .iter()
            .map(|r| r.interp_seconds / r.compiled_seconds.max(1e-9))
            .collect::<Vec<_>>(),
    );

    // Graph capture-and-replay headline: a chain of tiny dependent
    // `nowait` targets where per-launch host setup (kernel resolution,
    // argument validation, plan derivation, per-launch worker spawns)
    // dominates the simulated work. Eager `launch_plan` pays that setup
    // on every run; `capture_graph` pays it once and `replay_graph`
    // reuses the pre-resolved plan with one pooled worker-spawn set per
    // replay. The speedup is the amortization the taskgraph layer
    // exists for. Workers are forced above one because the pooled
    // replay path only engages with more than one worker — the worker
    // count is a determinism-neutral knob, so this is valid on any
    // host CPU count (and recorded in the artifact).
    struct GraphsBench {
        kernel: &'static str,
        nodes: usize,
        jobs: u32,
        iterations: u32,
        capture_seconds: f64,
        eager_seconds: f64,
        replay_seconds: f64,
        bit_identical_replay_vs_eager: bool,
        bit_identical_across_tiers: bool,
        bit_identical_across_jobs: bool,
    }
    const GRAPH_SRC: &str = r#"
void gchain(double* a, long n) {
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 2.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 3.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 4.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 5.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 6.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 7.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 8.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 9.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 10.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 11.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 12.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 13.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 14.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 15.0; }
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(4) thread_limit(1)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 16.0; }
}
"#;
    let graphs_bench = (|| -> Option<GraphsBench> {
        let kernel = "gchain";
        let (module, _) = pipeline::build(GRAPH_SRC, BuildConfig::LlvmDev).ok()?;
        let n = 4usize;
        let dims = LaunchDims::default();
        let graph_jobs = jobs.filter(|&x| x > 1).unwrap_or(4);

        // Bit-identity matrix: eager vs replay, both tiers, one vs
        // many workers — all must reproduce the reference run exactly
        // (outputs and normalized statistics).
        let run_once = |tier: Tier, jobs_n: u32, replay: bool| {
            let mut dev = Device::new(&module, DeviceConfig::default()).ok()?;
            dev.set_tier(tier);
            dev.set_jobs(jobs_n);
            let buf = dev.alloc_f64(&vec![0.0; n]).ok()?;
            let args = [RtVal::Ptr(buf), RtVal::I64(n as i64)];
            let stats = if replay {
                let g = dev.capture_graph(kernel, &args, dims).ok()?;
                dev.replay_graph(&g).ok()?
            } else {
                dev.launch_plan(kernel, &args, dims).ok()?
            };
            let mut snap = stats.snapshot();
            snap.tier = Tier::Interp;
            snap.superinstructions = [0; 4];
            let bits: Vec<u64> = dev
                .read_f64(buf, n)
                .ok()?
                .into_iter()
                .map(f64::to_bits)
                .collect();
            Some((bits, snap))
        };
        let reference = run_once(Tier::Interp, 1, false)?;
        let bit_identical_replay_vs_eager = run_once(Tier::Interp, 1, true)? == reference
            && run_once(Tier::Compiled, graph_jobs, true)? == reference;
        let bit_identical_across_tiers = run_once(Tier::Compiled, 1, false)? == reference;
        let bit_identical_across_jobs = run_once(Tier::Interp, graph_jobs, false)? == reference
            && run_once(Tier::Compiled, graph_jobs, false)? == reference;

        // Wall clocks: one device, interleaved eager/replay windows so
        // host drift hits both modes equally; best window is the
        // steady-state figure.
        let mut dev = Device::new(&module, DeviceConfig::default()).ok()?;
        dev.set_tier(Tier::Compiled);
        dev.set_jobs(graph_jobs);
        let buf = dev.alloc_f64(&vec![0.0; n]).ok()?;
        let args = [RtVal::Ptr(buf), RtVal::I64(n as i64)];
        dev.launch_plan(kernel, &args, dims).ok()?;
        dev.launch_plan(kernel, &args, dims).ok()?;
        let t0 = Instant::now();
        let graph = dev.capture_graph(kernel, &args, dims).ok()?;
        let capture_seconds = t0.elapsed().as_secs_f64();
        dev.replay_graph(&graph).ok()?;
        dev.replay_graph(&graph).ok()?;
        let iterations = 60u32;
        let mut eager_seconds = f64::INFINITY;
        let mut replay_seconds = f64::INFINITY;
        for _ in 0..6 {
            let t0 = Instant::now();
            for _ in 0..iterations {
                dev.launch_plan(kernel, &args, dims).ok()?;
            }
            eager_seconds = eager_seconds.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for _ in 0..iterations {
                dev.replay_graph(&graph).ok()?;
            }
            replay_seconds = replay_seconds.min(t0.elapsed().as_secs_f64());
        }
        Some(GraphsBench {
            kernel,
            nodes: dev.plan_width(kernel),
            jobs: graph_jobs,
            iterations,
            capture_seconds,
            eager_seconds,
            replay_seconds,
            bit_identical_replay_vs_eager,
            bit_identical_across_tiers,
            bit_identical_across_jobs,
        })
    })();

    // Informational: what turning the cycle-attribution profiler on
    // costs in host wall-clock, measured on one proxy under the Dev
    // pipeline. Best-of-three per mode so a cold first run does not
    // inflate the ratio.
    let overhead_proxy = "SU3Bench";
    let profile_overhead = all_proxies(scale)
        .iter()
        .find(|p| p.name() == overhead_proxy)
        .map(|app| {
            let best = |f: &dyn Fn()| -> f64 {
                (0..3)
                    .map(|_| {
                        let t0 = Instant::now();
                        f();
                        t0.elapsed().as_secs_f64()
                    })
                    .fold(f64::INFINITY, f64::min)
            };
            let off = best(&|| {
                pipeline::run_proxy(app.as_ref(), BuildConfig::LlvmDev);
            });
            let on = best(&|| {
                pipeline::profile_proxy(app.as_ref(), BuildConfig::LlvmDev, jobs);
            });
            (off, on)
        });

    // Informational: what enabling the span tracer costs in verify
    // wall-clock. Off and on runs alternate inside one measurement
    // window (best-of-3 each) so the ratio compares like with like —
    // reusing the cold verify runs from the top of the bench as the
    // off side would fold unrelated machine drift into the ratio.
    // Spans are drained between runs so the store does not grow.
    let (telemetry_off_seconds, telemetry_on_seconds) = {
        let _ = oracle::verify_proxies_jobs(scale, jobs); // warm-up
        let mut off = f64::INFINITY;
        let mut on = f64::INFINITY;
        for _ in 0..verify_runs.len() {
            omp_telemetry::set_enabled(false);
            let t0 = Instant::now();
            let _ = oracle::verify_proxies_jobs(scale, jobs);
            off = off.min(t0.elapsed().as_secs_f64());

            omp_telemetry::set_enabled(true);
            omp_telemetry::clear_spans();
            let t0 = Instant::now();
            let _ = oracle::verify_proxies_jobs(scale, jobs);
            on = on.min(t0.elapsed().as_secs_f64());
            omp_telemetry::clear_spans();
        }
        omp_telemetry::set_enabled(false);
        (off, on)
    };

    let baseline_mean = PRE_PLAN_VERIFY_SMALL_SECONDS.iter().sum::<f64>()
        / PRE_PLAN_VERIFY_SMALL_SECONDS.len() as f64;
    let baseline_min = PRE_PLAN_VERIFY_SMALL_SECONDS
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let interleaved_mean = INTERLEAVED_POST_PLAN_SECONDS.iter().sum::<f64>()
        / INTERLEAVED_POST_PLAN_SECONDS.len() as f64;
    let interleaved_min = INTERLEAVED_POST_PLAN_SECONDS
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);

    // Per-proxy CUDA yardstick cycles, for the v2 ratio columns.
    let cuda_cycles = |p: &ProxyRows| -> Option<u64> {
        p.rows
            .iter()
            .find(|r| r.config == BuildConfig::CudaStyle)
            .and_then(|r| r.cycles)
    };
    let ratio_of = |p: &ProxyRows, r: &ConfigRow| -> Option<f64> {
        match (r.cycles, cuda_cycles(p)) {
            (Some(c), Some(base)) if base > 0 => Some(c as f64 / base as f64),
            _ => None,
        }
    };

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench_gpusim/v2\",");
    let _ = writeln!(
        j,
        "  \"git_revision\": \"{}\",",
        json_escape(&git_revision())
    );
    let _ = writeln!(
        j,
        "  \"git_dirty\": {},",
        git_dirty().map_or_else(|| "null".to_string(), |d| d.to_string())
    );
    let _ = writeln!(j, "  \"scale\": \"{scale_name}\",");
    // Parallel team execution only improves wall-clock with >1 host
    // CPU; record the core count so speedups are interpretable.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(j, "  \"host_cpus\": {cpus},");
    // The effective worker count: `--jobs N` verbatim, otherwise the
    // value `jobs: auto` resolves to on this host. Never null — the
    // artifact records what actually ran.
    let effective_jobs = jobs.filter(|&n| n > 0).map_or(cpus, |n| n as usize);
    let _ = writeln!(j, "  \"jobs\": {effective_jobs},");
    let _ = writeln!(j, "  \"pre_plan_baseline\": {{");
    let _ = writeln!(
        j,
        "    \"measured_at_revision\": \"{}\",",
        json_escape(PRE_PLAN_BASELINE_REVISION)
    );
    let _ = writeln!(
        j,
        "    \"verify_small_wall_seconds\": [{}],",
        PRE_PLAN_VERIFY_SMALL_SECONDS
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        j,
        "    \"verify_small_wall_mean_seconds\": {baseline_mean:.4},"
    );
    let _ = writeln!(
        j,
        "    \"verify_small_wall_min_seconds\": {baseline_min:.4},"
    );
    let _ = writeln!(
        j,
        "    \"interleaved_post_plan_seconds\": [{}],",
        INTERLEAVED_POST_PLAN_SECONDS
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        j,
        "    \"same_window_speedup_mean\": {:.2},",
        baseline_mean / interleaved_mean.max(1e-9)
    );
    let _ = writeln!(
        j,
        "    \"same_window_speedup_min\": {:.2}",
        baseline_min / interleaved_min.max(1e-9)
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(
        j,
        "  \"verify_wall_seconds_runs\": [{}],",
        verify_runs
            .iter()
            .map(|s| format!("{s:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(j, "  \"verify_wall_seconds\": {verify_seconds:.4},");
    let _ = writeln!(j, "  \"verify_wall_mean_seconds\": {verify_mean:.4},");
    let _ = writeln!(j, "  \"verify_passed\": {verify_passed},");
    // Informational only — not gated: host cost of ProfileMode::On.
    match profile_overhead {
        Some((off, on)) => {
            let _ = writeln!(j, "  \"profile_overhead\": {{");
            let _ = writeln!(j, "    \"proxy\": \"{}\",", json_escape(overhead_proxy));
            let _ = writeln!(
                j,
                "    \"config\": \"{}\",",
                json_escape(BuildConfig::LlvmDev.label())
            );
            let _ = writeln!(j, "    \"off_wall_seconds\": {off:.4},");
            let _ = writeln!(j, "    \"on_wall_seconds\": {on:.4},");
            let _ = writeln!(j, "    \"ratio\": {:.3}", on / off.max(1e-9));
            let _ = writeln!(j, "  }},");
        }
        None => {
            let _ = writeln!(j, "  \"profile_overhead\": null,");
        }
    }
    // Informational only — not gated: verify wall-clock with the span
    // tracer on vs off (`tools/ci.sh bench` warns above a 1.03 ratio).
    let _ = writeln!(j, "  \"telemetry_overhead\": {{");
    let _ = writeln!(j, "    \"off_wall_seconds\": {telemetry_off_seconds:.4},");
    let _ = writeln!(j, "    \"on_wall_seconds\": {telemetry_on_seconds:.4},");
    let _ = writeln!(
        j,
        "    \"ratio\": {:.3}",
        telemetry_on_seconds / telemetry_off_seconds.max(1e-9)
    );
    let _ = writeln!(j, "  }},");
    // Tier comparison: interpreter vs compiled block engine, same
    // suite, same knobs. Wall clock is host-dependent; the
    // `cycles_identical` flags are the invariant part. Measured at
    // bench scale (execution-dominated) independent of `--scale`.
    let _ = writeln!(j, "  \"tier\": {{");
    let _ = writeln!(j, "    \"scale\": \"bench\",");
    let _ = writeln!(
        j,
        "    \"verify_wall_seconds_interp\": {tier_interp_seconds:.4},"
    );
    let _ = writeln!(
        j,
        "    \"verify_wall_seconds_compiled\": {tier_compiled_seconds:.4},"
    );
    let _ = writeln!(j, "    \"verify_speedup\": {tier_verify_speedup:.2},");
    let _ = writeln!(
        j,
        "    \"verify_passed_both_tiers\": {},",
        tier_interp_passed && tier_compiled_passed
    );
    let _ = writeln!(
        j,
        "    \"verify_reports_identical\": {tier_reports_identical},"
    );
    let _ = writeln!(j, "    \"proxies\": [");
    for (ri, r) in tier_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "      {{ \"name\": \"{}\", \"interp_wall_seconds\": {:.4}, \
             \"compiled_wall_seconds\": {:.4}, \"speedup\": {:.2}, \
             \"cycles_identical\": {} }}{}",
            json_escape(r.name),
            r.interp_seconds,
            r.compiled_seconds,
            r.interp_seconds / r.compiled_seconds.max(1e-9),
            r.cycles_identical,
            if ri + 1 < tier_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "    ],");
    let _ = writeln!(
        j,
        "    \"geomean_pipeline_speedup\": {}",
        tier_launch_geomean
            .map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "null".to_string())
    );
    let _ = writeln!(j, "  }},");
    // Captured-graph replay vs eager plan launches. Wall clock is
    // host-dependent; the `bit_identical_*` flags are the invariant
    // part (outputs and normalized stats equal across eager/replay,
    // tiers, and worker counts).
    match &graphs_bench {
        Some(g) => {
            let speedup = g.eager_seconds / g.replay_seconds.max(1e-9);
            let _ = writeln!(j, "  \"graphs\": {{");
            let _ = writeln!(j, "    \"kernel\": \"{}\",", json_escape(g.kernel));
            let _ = writeln!(j, "    \"nodes\": {},", g.nodes);
            let _ = writeln!(j, "    \"jobs\": {},", g.jobs);
            let _ = writeln!(j, "    \"iterations\": {},", g.iterations);
            let _ = writeln!(j, "    \"capture_wall_seconds\": {:.6},", g.capture_seconds);
            let _ = writeln!(j, "    \"eager_wall_seconds\": {:.6},", g.eager_seconds);
            let _ = writeln!(j, "    \"replay_wall_seconds\": {:.6},", g.replay_seconds);
            let _ = writeln!(j, "    \"replay_speedup\": {speedup:.2},");
            let _ = writeln!(
                j,
                "    \"bit_identical_replay_vs_eager\": {},",
                g.bit_identical_replay_vs_eager
            );
            let _ = writeln!(
                j,
                "    \"bit_identical_across_tiers\": {},",
                g.bit_identical_across_tiers
            );
            let _ = writeln!(
                j,
                "    \"bit_identical_across_jobs\": {}",
                g.bit_identical_across_jobs
            );
            let _ = writeln!(j, "  }},");
        }
        None => {
            let _ = writeln!(j, "  \"graphs\": null,");
        }
    }
    if matches!(scale, Scale::Small) {
        // Like-for-like: steady-state minimum against baseline minimum,
        // mean against mean.
        let _ = writeln!(
            j,
            "  \"speedup_vs_pre_plan\": {:.2},",
            baseline_min / verify_seconds.max(1e-9)
        );
        let _ = writeln!(
            j,
            "  \"speedup_vs_pre_plan_mean\": {:.2},",
            baseline_mean / verify_mean.max(1e-9)
        );
    }
    let _ = writeln!(j, "  \"proxies\": [");
    for (pi, p) in proxies.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", p.name);
        let _ = writeln!(j, "      \"configs\": [");
        for (ri, r) in p.rows.iter().enumerate() {
            let cycles = r
                .cycles
                .map(|c| c.to_string())
                .unwrap_or_else(|| "null".to_string());
            let ratio = ratio_of(p, r)
                .map(|x| format!("{x:.4}"))
                .unwrap_or_else(|| "null".to_string());
            let error = r
                .error
                .as_deref()
                .map(|e| format!("\"{}\"", json_escape(e)))
                .unwrap_or_else(|| "null".to_string());
            let _ = writeln!(
                j,
                "        {{ \"config\": \"{}\", \"wall_seconds\": {:.4}, \
                 \"cycles\": {}, \"cycles_vs_cuda_ratio\": {}, \"error\": {} }}{}",
                json_escape(r.label),
                r.wall_seconds,
                cycles,
                ratio,
                error,
                if ri + 1 < p.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(j, "      ]");
        let _ = writeln!(j, "    }}{}", if pi + 1 < proxies.len() { "," } else { "" });
    }
    let _ = writeln!(j, "  ],");

    // Cross-proxy geometric means of the cycles-vs-CUDA ratio, one per
    // configuration, plus a flat greppable headline for the Dev
    // pipeline (the paper's figure-of-merit).
    let _ = writeln!(j, "  \"summary\": {{");
    let _ = writeln!(j, "    \"geomean_cycles_vs_cuda_ratio\": {{");
    let mut dev_geomean: Option<f64> = None;
    for (ci, &config) in BuildConfig::ALL.iter().enumerate() {
        let ratios: Vec<f64> = proxies
            .iter()
            .filter_map(|p| {
                p.rows
                    .iter()
                    .find(|r| r.config == config)
                    .and_then(|r| ratio_of(p, r))
            })
            .collect();
        let g = geomean(&ratios);
        if config == BuildConfig::LlvmDev {
            dev_geomean = g;
        }
        let _ = writeln!(
            j,
            "      \"{}\": {}{}",
            json_escape(config.label()),
            g.map(|x| format!("{x:.4}"))
                .unwrap_or_else(|| "null".to_string()),
            if ci + 1 < BuildConfig::ALL.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(j, "    }},");
    let _ = writeln!(
        j,
        "    \"geomean_dev_cycles_vs_cuda_ratio\": {}",
        dev_geomean
            .map(|x| format!("{x:.4}"))
            .unwrap_or_else(|| "null".to_string())
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    if let Err(e) = std::fs::write(&out_path, &j) {
        eprintln!("bench_gpusim: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    let rev = git_revision();
    if rev != PRE_PLAN_BASELINE_REVISION && rev != "unknown" {
        eprintln!(
            "bench_gpusim: note: pre_plan_baseline numbers were measured at \
             {} — current revision {} reuses them (wall clocks are only \
             comparable within one measurement window)",
            &PRE_PLAN_BASELINE_REVISION[..12.min(PRE_PLAN_BASELINE_REVISION.len())],
            &rev[..12.min(rev.len())]
        );
    }
    if tier_verify_speedup < 1.0 {
        eprintln!(
            "bench_gpusim: warning: compiled tier is SLOWER than the \
             interpreter ({tier_compiled_seconds:.3}s vs {tier_interp_seconds:.3}s)"
        );
    }
    match &graphs_bench {
        Some(g) => {
            let speedup = g.eager_seconds / g.replay_seconds.max(1e-9);
            if speedup < 3.0 {
                eprintln!(
                    "bench_gpusim: warning: graph replay speedup {speedup:.2}x \
                     is below the 3x floor"
                );
            }
            if !(g.bit_identical_replay_vs_eager
                && g.bit_identical_across_tiers
                && g.bit_identical_across_jobs)
            {
                eprintln!("bench_gpusim: warning: graph replay is NOT bit-identical");
            }
            println!(
                "graphs: replay {speedup:.2}x vs eager ({} nodes, jobs {}, \
                 {:.4}s vs {:.4}s per {} runs)",
                g.nodes, g.jobs, g.replay_seconds, g.eager_seconds, g.iterations
            );
        }
        None => eprintln!("bench_gpusim: warning: graphs benchmark failed to run"),
    }
    println!(
        "verify --scale {scale_name}: {verify_seconds:.3}s wall \
         (pre-plan baseline mean {baseline_mean:.3}s) -> {out_path}"
    );
    println!(
        "tier: interp {tier_interp_seconds:.3}s vs compiled \
         {tier_compiled_seconds:.3}s ({tier_verify_speedup:.2}x verify speedup)"
    );
}
