//! Criterion benches over the paper's workloads.
//!
//! One group per table/figure of the evaluation:
//!
//! * `fig9_opt_pipeline` — wall time of the OpenMP optimization
//!   pipeline per proxy (the work behind Figure 9's counts);
//! * `fig10_kernels` — simulated execution per proxy for the three
//!   builds Figure 10 compares;
//! * `fig11_configs` — simulated execution across every optimization
//!   configuration (the bars of Figures 11a–11d).
//!
//! The simulated *cycle* numbers (the paper's metric) come from the
//! `fig9`/`fig10`/`fig11` binaries; these benches track the harness
//! itself so regressions in compiler or simulator throughput are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omp_gpu::{all_proxies, pipeline, BuildConfig, Scale};

fn fig9_opt_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_opt_pipeline");
    g.sample_size(10);
    for app in all_proxies(Scale::Small) {
        let src = app.openmp_source();
        g.bench_with_input(BenchmarkId::from_parameter(app.name()), &src, |b, src| {
            b.iter(|| pipeline::build(src, BuildConfig::LlvmDev).unwrap());
        });
    }
    g.finish();
}

fn fig10_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_kernels");
    g.sample_size(10);
    for app in all_proxies(Scale::Small) {
        for cfg in [
            BuildConfig::CudaStyle,
            BuildConfig::Llvm12Baseline,
            BuildConfig::LlvmDev,
        ] {
            g.bench_function(BenchmarkId::new(app.name(), cfg.label()), |b| {
                b.iter(|| {
                    let o = pipeline::run_proxy(app.as_ref(), cfg);
                    assert!(o.error.is_none(), "{:?}", o.error);
                    o.stats.unwrap().cycles
                });
            });
        }
    }
    g.finish();
}

fn fig11_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_configs");
    g.sample_size(10);
    // One representative proxy per sub-figure keeps the run short; the
    // binaries cover the full matrix.
    for app in all_proxies(Scale::Small) {
        for cfg in BuildConfig::ALL {
            g.bench_function(BenchmarkId::new(app.name(), cfg.label()), |b| {
                b.iter(|| {
                    let o = pipeline::run_proxy(app.as_ref(), cfg);
                    o.cycles().unwrap_or(0)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, fig9_opt_pipeline, fig10_kernels, fig11_configs);
criterion_main!(benches);
