//! # proptest (offline stand-in)
//!
//! A small, dependency-free, deterministic property-testing engine that
//! implements the subset of the real `proptest` crate's API this
//! workspace uses. It exists because the build environment has no
//! network access: the workspace `[patch.crates-io]` table redirects the
//! `proptest` dependency here, so `cargo test` resolves fully offline
//! while the property tests keep running for real.
//!
//! Supported surface (everything the in-tree tests use):
//!
//! * [`proptest!`] with an optional `#![proptest_config(...)]` header;
//! * [`Strategy`] with [`Strategy::prop_map`], [`Strategy::boxed`], and
//!   [`Strategy::prop_recursive`];
//! * integer-range strategies (`0usize..400`), [`any`], [`Just`],
//!   tuple strategies, [`prop_oneof!`], `prop::collection::vec`, and a
//!   regex-subset string strategy (`"[ -~\\n]{0,200}"` style: literal
//!   atoms, character classes with ranges, `{m,n}`/`{n}`/`*`/`+`/`?`
//!   repetition);
//! * [`prop_assert!`] / [`prop_assert_eq!`] (panic-based).
//!
//! Unlike the real crate there is no shrinking: a failing case prints
//! its inputs and the deterministic seed instead. Set `PROPTEST_SEED`
//! to an integer to replay a run under a different seed.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic splitmix64 generator; the whole engine draws from it.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from `PROPTEST_SEED` (when set) mixed with the test name,
    /// so every test gets its own deterministic stream.
    pub fn from_env(test_name: &str) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x00_5eed_c0de);
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(base ^ h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi)` over signed 128-bit arithmetic.
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range strategy {lo}..{hi}");
        let span = (hi - lo) as u128;
        let k = if span <= u64::MAX as u128 {
            self.below(span as u64) as u128
        } else {
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span
        };
        lo + k as i128
    }
}

/// A value generator. The real crate's `Strategy` also drives
/// shrinking; here generation is everything.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `f` receives the strategy for the smaller
    /// structure and returns the strategy for the bigger one. `depth`
    /// bounds the nesting; `_desired_size` and `_expected_branch_size`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated structures
            // have random (bounded) depth, not always the maximum.
            cur = Union::new(vec![leaf.clone(), f(cur).boxed()]).boxed();
        }
        cur
    }
}

/// Clonable type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of the same value type — the
/// engine behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (the subset of
/// `proptest::arbitrary::Arbitrary` the tests use).
pub trait ArbitraryValue: Debug + Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an unconstrained value of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(self.start as i128, self.end as i128) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// A `&str` is a strategy generating strings from a regex subset:
/// literal atoms, `[...]` classes (ranges, escapes, leading `^`
/// complement over printable ASCII + newline), `.` (printable ASCII),
/// and `{m,n}` / `{n}` / `*` / `+` / `?` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn printable_ascii() -> Vec<char> {
    (' '..='~').collect()
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    // chars[i] is the first char after '['.
    let mut members: Vec<char> = Vec::new();
    let mut negated = false;
    if chars.get(i) == Some(&'^') {
        negated = true;
        i += 1;
    }
    let mut pending: Option<char> = None;
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 2;
            unescape(chars[i - 1])
        } else {
            i += 1;
            chars[i - 1]
        };
        if c == '-' && pending.is_some() && i < chars.len() && chars[i] != ']' {
            // Range: pending-next.
            let lo = pending.take().unwrap();
            let hi = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                unescape(chars[i - 1])
            } else {
                i += 1;
                chars[i - 1]
            };
            for m in lo..=hi {
                members.push(m);
            }
        } else {
            if let Some(p) = pending.take() {
                members.push(p);
            }
            pending = Some(c);
        }
    }
    if let Some(p) = pending {
        members.push(p);
    }
    let end = if i < chars.len() { i + 1 } else { i }; // skip ']'
    if negated {
        let mut space = printable_ascii();
        space.push('\n');
        space.retain(|c| !members.contains(c));
        members = space;
    }
    (members, end)
}

fn parse_repetition(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('*') => (0, 32, i + 1),
        Some('+') => (1, 32, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let mut j = i + 1;
            let mut lo = 0usize;
            while let Some(d) = chars.get(j).and_then(|c| c.to_digit(10)) {
                lo = lo * 10 + d as usize;
                j += 1;
            }
            let hi = if chars.get(j) == Some(&',') {
                j += 1;
                let mut h = 0usize;
                let mut any = false;
                while let Some(d) = chars.get(j).and_then(|c| c.to_digit(10)) {
                    h = h * 10 + d as usize;
                    j += 1;
                    any = true;
                }
                if any {
                    h
                } else {
                    lo + 32
                }
            } else {
                lo
            };
            if chars.get(j) == Some(&'}') {
                j += 1;
            }
            (lo, hi.max(lo), j)
        }
        _ => (1, 1, i),
    }
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (members, next) = match chars[i] {
            '[' => parse_class(&chars, i + 1),
            '.' => (printable_ascii(), i + 1),
            '\\' if i + 1 < chars.len() => (vec![unescape(chars[i + 1])], i + 2),
            c => (vec![c], i + 1),
        };
        let (lo, hi, next) = parse_repetition(&chars, next);
        let n = if hi > lo {
            lo + rng.below((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        if !members.is_empty() {
            for _ in 0..n {
                out.push(members[rng.below(members.len() as u64) as usize]);
            }
        }
        i = next;
    }
    out
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// A strategy producing `Vec`s of a given length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(strategy, lo..hi)` — vectors with `lo..hi` elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range_i128(
                self.len.start as i128,
                self.len.end.max(self.len.start + 1) as i128,
            ) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Assert inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Assert equality inside a property (panics, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The test-defining macro. Mirrors the real crate's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0i64..100, v in prop::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_env(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = { $strat };)+
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)+
                let __inputs: ::std::string::String = [$(
                    format!(concat!(stringify!($arg), " = {:?}"), &$arg)
                ),+].join(", ");
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = __result {
                    eprintln!(
                        "[proptest] {} failed on case {}/{} with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, ArbitraryValue, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };

    /// The `prop` module alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::generate(&(1usize..40), &mut rng);
            assert!((1..40).contains(&u));
            let b = Strategy::generate(&(32u8..126), &mut rng);
            assert!((32..126).contains(&b));
        }
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~\\n]{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let lit = Strategy::generate(&"ab{3}", &mut rng);
        assert_eq!(lit, "abbb");
    }

    #[test]
    fn oneof_map_vec_and_recursive_compose() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(i64),
            Pair(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        fn leaves_in_range(t: &T) -> bool {
            match t {
                T::Leaf(v) => (0..5).contains(v) || *v == 9,
                T::Pair(a, b) => leaves_in_range(a) && leaves_in_range(b),
            }
        }
        let leaf = prop_oneof![(0i64..5).prop_map(T::Leaf), Just(T::Leaf(9))];
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(11);
        let mut saw_pair = false;
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 3);
            assert!(leaves_in_range(&t));
            saw_pair |= matches!(t, T::Pair(..));
        }
        assert!(saw_pair);
        let vs = Strategy::generate(&crate::collection::vec(0u8..10, 2..5), &mut rng);
        assert!((2..5).contains(&vs.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_and_runs(x in 0i64..100, v in prop::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(!v.is_empty());
        }
    }
}
