//! The cycle cost model.
//!
//! Abstract cycles calibrated to first-order GPU folklore. Absolute
//! numbers are not meaningful — the paper's evaluation is reproduced as
//! *relative* kernel times, and what matters is the ordering of costs:
//! registers << shared memory << coalesced global << uncoalesced global,
//! and cheap context queries << runtime allocation << parallel-region
//! dispatch.

use omp_ir::{BinOp, RtlFn};

/// Cycle costs of the simulated device.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Simple integer ALU op.
    pub int_op: u64,
    /// Simple floating-point op.
    pub float_op: u64,
    /// Integer/float divide, remainder.
    pub div_op: u64,
    /// Transcendental / math intrinsic call (sqrt, exp, ...).
    pub math_fn: u64,
    /// Branch / compare / select / cast.
    pub simple_op: u64,
    /// Pointer<->integer reinterpretation (`inttoptr`, `ptrtoint`).
    /// Free: on real GPUs these are register renames, not ALU work
    /// (LLVM's TTI likewise prices no-op casts at zero). Keeping them
    /// free also keeps the custom state-machine rewrite — which
    /// materializes integer region tokens as `inttoptr` — from being
    /// charged for instructions a real backend would fold away.
    pub ptr_reinterpret: u64,
    /// Direct call overhead (frame setup).
    pub call: u64,
    /// Additional penalty for an indirect call through a pointer.
    pub indirect_call_penalty: u64,
    /// Shared-memory access.
    pub shared_access: u64,
    /// Thread-local (alloca) access — local memory is DRAM-backed but
    /// perfectly interleaved per thread.
    pub local_access: u64,
    /// Global-memory access when the warp's lanes access consecutive
    /// addresses (coalesced).
    pub global_coalesced: u64,
    /// Global-memory access with a scattered pattern.
    pub global_uncoalesced: u64,
    /// Team-wide barrier.
    pub barrier: u64,
    /// `__kmpc_target_init` in generic mode (worker setup).
    pub target_init_generic: u64,
    /// `__kmpc_target_init` in SPMD mode.
    pub target_init_spmd: u64,
    /// Main-thread side of a generic parallel dispatch (handshake).
    pub parallel_dispatch_generic: u64,
    /// Per-thread cost of an SPMD parallel region entry.
    pub parallel_dispatch_spmd: u64,
    /// Worker wake-up from `__kmpc_kernel_parallel`.
    pub worker_wakeup: u64,
    /// `__kmpc_alloc_shared` (simplified globalization).
    pub alloc_shared: u64,
    /// `__kmpc_free_shared`.
    pub free_shared: u64,
    /// `__kmpc_data_sharing_coalesced_push_stack` (legacy).
    pub push_stack: u64,
    /// `__kmpc_data_sharing_pop_stack`.
    pub pop_stack: u64,
    /// Context queries (`omp_get_thread_num`, mode checks, ...).
    pub context_query: u64,
    /// Worksharing chunk helpers.
    pub chunk_helper: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            int_op: 1,
            float_op: 2,
            div_op: 10,
            math_fn: 20,
            simple_op: 1,
            ptr_reinterpret: 0,
            call: 5,
            indirect_call_penalty: 60,
            shared_access: 8,
            local_access: 12,
            global_coalesced: 25,
            global_uncoalesced: 300,
            barrier: 30,
            target_init_generic: 60,
            target_init_spmd: 20,
            parallel_dispatch_generic: 4000,
            parallel_dispatch_spmd: 20,
            worker_wakeup: 400,
            alloc_shared: 250,
            free_shared: 60,
            push_stack: 90,
            pop_stack: 45,
            context_query: 6,
            chunk_helper: 12,
        }
    }
}

impl CostModel {
    /// Cost of a binary operation.
    pub fn bin_cost(&self, op: BinOp) -> u64 {
        match op {
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem | BinOp::FDiv | BinOp::FRem => {
                self.div_op
            }
            op if op.is_float() => self.float_op,
            _ => self.int_op,
        }
    }

    /// Fixed cost of a runtime call, excluding memory effects and
    /// synchronization (which the interpreter adds separately).
    pub fn rtl_cost(&self, f: RtlFn) -> u64 {
        match f {
            RtlFn::TargetInit => 0, // charged by mode in the interpreter
            RtlFn::TargetDeinit => self.context_query,
            RtlFn::Parallel51 => 0, // charged by mode in the interpreter
            RtlFn::KernelParallel => self.context_query,
            RtlFn::KernelEndParallel => self.context_query,
            RtlFn::GetParallelArgs => self.context_query,
            RtlFn::AllocShared => self.alloc_shared,
            RtlFn::FreeShared => self.free_shared,
            RtlFn::DataSharingPushStack => self.push_stack,
            RtlFn::DataSharingPopStack => self.pop_stack,
            RtlFn::Barrier | RtlFn::BarrierSimpleSpmd => self.barrier,
            RtlFn::StaticChunkLb
            | RtlFn::StaticChunkUb
            | RtlFn::DistributeChunkLb
            | RtlFn::DistributeChunkUb => self.chunk_helper,
            _ => self.context_query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_hierarchy_ordering() {
        let c = CostModel::default();
        assert!(c.shared_access < c.local_access);
        assert!(c.local_access < c.global_uncoalesced);
        assert!(c.global_coalesced < c.global_uncoalesced);
    }

    #[test]
    fn dispatch_cost_ordering() {
        let c = CostModel::default();
        assert!(c.parallel_dispatch_spmd < c.parallel_dispatch_generic);
        assert!(c.context_query < c.alloc_shared);
    }

    #[test]
    fn bin_costs() {
        let c = CostModel::default();
        assert_eq!(c.bin_cost(BinOp::Add), c.int_op);
        assert_eq!(c.bin_cost(BinOp::FMul), c.float_op);
        assert_eq!(c.bin_cost(BinOp::SDiv), c.div_op);
        assert_eq!(c.bin_cost(BinOp::FDiv), c.div_op);
    }
}
