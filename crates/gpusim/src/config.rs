//! Device configuration.

use crate::profile::ProfileMode;
use crate::sanitize::{FaultPlan, SanitizeMode};
use std::time::Duration;

/// Static description of the simulated GPU (defaults are loosely
/// V100-shaped: 80 SMs, 32-wide warps, 48 KiB of shared memory per
/// resident team).
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors. Teams are distributed
    /// round-robin over SMs; kernel time is the maximum SM time.
    pub num_sms: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Default number of teams when neither the kernel metadata nor the
    /// launch overrides it.
    pub default_teams: u32,
    /// Default threads per team under the same conditions.
    pub default_threads: u32,
    /// Shared memory available to each team, in bytes. The globalization
    /// stack lives here after the module's static shared globals.
    pub shared_mem_per_team: u64,
    /// Device "heap" used when the shared globalization stack overflows
    /// (the paper's `LIBOMPTARGET_HEAP_SIZE`). Exhausting it aborts the
    /// kernel with an out-of-memory error, as the paper reports for
    /// RSBench.
    pub global_heap_bytes: u64,
    /// Global memory available for host-allocated buffers, in bytes.
    pub global_mem_bytes: u64,
    /// Per-thread local (stack) memory, in bytes.
    pub local_mem_per_thread: u64,
    /// Whether a thread reading another thread's local memory traps
    /// (real GPUs give undefined results; trapping makes the paper's
    /// Figure 3 miscompilation observable).
    pub trap_on_cross_thread_local: bool,
    /// Upper bound on executed instructions per thread (runaway guard).
    pub max_insts_per_thread: u64,
    /// Whether launches gather a cycle-attribution profile
    /// ([`crate::LaunchProfile`]). `Off` (the default) leaves launch
    /// behavior and statistics byte-identical to a build without
    /// profiling.
    pub profile: ProfileMode,
    /// Whether launches run the device sanitizer
    /// ([`crate::SanitizeMode`]). `Off` (the default) leaves launch
    /// behavior and statistics byte-identical to a build without
    /// sanitizing.
    pub sanitize: SanitizeMode,
    /// Deterministic fault injection ([`crate::FaultPlan`]); inactive
    /// by default.
    pub fault: FaultPlan,
    /// Wall-clock watchdog per team run: a team exceeding this budget
    /// fails its launch with a structured timeout diagnostic instead of
    /// hanging the caller. `None` (the default) disables the watchdog.
    pub watchdog: Option<Duration>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            num_sms: 80,
            warp_size: 32,
            default_teams: 8,
            default_threads: 64,
            shared_mem_per_team: 48 * 1024,
            global_heap_bytes: 512 * 1024,
            global_mem_bytes: 64 * 1024 * 1024,
            local_mem_per_thread: 256 * 1024,
            trap_on_cross_thread_local: true,
            max_insts_per_thread: 200_000_000,
            profile: ProfileMode::Off,
            sanitize: SanitizeMode::Off,
            fault: FaultPlan::default(),
            watchdog: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DeviceConfig::default();
        assert!(c.num_sms > 0);
        assert_eq!(c.warp_size, 32);
        assert!(c.shared_mem_per_team >= 16 * 1024);
        assert!(c.trap_on_cross_thread_local);
    }
}
