//! Device configuration.

use crate::profile::ProfileMode;
use crate::sanitize::{FaultPlan, SanitizeMode};
use std::time::Duration;

/// Execution tier for kernel launches.
///
/// `Compiled` (the default) runs straight-line blocks through the
/// pre-compiled superinstruction bodies built at plan time and falls
/// back to the interpreter per block for runtime calls, barriers, and
/// other effectful constructs. `Interp` forces every instruction
/// through the tier-0 interpreter. Outputs, statistics, and simulated
/// cycles are bit-identical between tiers; only wall-clock differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// Tier 0: the per-instruction interpreter (also the deopt path).
    Interp,
    /// Tier 1: pre-compiled block bodies with interpreter bridging.
    #[default]
    Compiled,
}

impl Tier {
    /// Stable lower-case name, as used in JSON artifacts and the
    /// `OMPGPU_TIER` environment variable.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::Compiled => "compiled",
        }
    }

    /// Parses the `OMPGPU_TIER` / `--tier` spelling.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "interp" => Some(Tier::Interp),
            "compiled" => Some(Tier::Compiled),
            _ => None,
        }
    }
}

/// Static description of the simulated GPU (defaults are loosely
/// V100-shaped: 80 SMs, 32-wide warps, 48 KiB of shared memory per
/// resident team).
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors. Teams are distributed
    /// round-robin over SMs; kernel time is the maximum SM time.
    pub num_sms: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Default number of teams when neither the kernel metadata nor the
    /// launch overrides it.
    pub default_teams: u32,
    /// Default threads per team under the same conditions.
    pub default_threads: u32,
    /// Shared memory available to each team, in bytes. The globalization
    /// stack lives here after the module's static shared globals.
    pub shared_mem_per_team: u64,
    /// Device "heap" used when the shared globalization stack overflows
    /// (the paper's `LIBOMPTARGET_HEAP_SIZE`). Exhausting it aborts the
    /// kernel with an out-of-memory error, as the paper reports for
    /// RSBench.
    pub global_heap_bytes: u64,
    /// Global memory available for host-allocated buffers, in bytes.
    pub global_mem_bytes: u64,
    /// Per-thread local (stack) memory, in bytes.
    pub local_mem_per_thread: u64,
    /// Whether a thread reading another thread's local memory traps
    /// (real GPUs give undefined results; trapping makes the paper's
    /// Figure 3 miscompilation observable).
    pub trap_on_cross_thread_local: bool,
    /// Upper bound on executed instructions per thread (runaway guard).
    pub max_insts_per_thread: u64,
    /// Whether launches gather a cycle-attribution profile
    /// ([`crate::LaunchProfile`]). `Off` (the default) leaves launch
    /// behavior and statistics byte-identical to a build without
    /// profiling.
    pub profile: ProfileMode,
    /// Whether launches run the device sanitizer
    /// ([`crate::SanitizeMode`]). `Off` (the default) leaves launch
    /// behavior and statistics byte-identical to a build without
    /// sanitizing.
    pub sanitize: SanitizeMode,
    /// Deterministic fault injection ([`crate::FaultPlan`]); inactive
    /// by default.
    pub fault: FaultPlan,
    /// Wall-clock watchdog per team run: a team exceeding this budget
    /// fails its launch with a structured timeout diagnostic instead of
    /// hanging the caller. `None` (the default) disables the watchdog.
    pub watchdog: Option<Duration>,
    /// Requested execution tier ([`Tier`]). The tier that actually runs
    /// is [`DeviceConfig::effective_tier`]: profiling, sanitizing, and
    /// fault injection all force the interpreter tier regardless of
    /// this setting.
    pub tier: Tier,
}

impl DeviceConfig {
    /// The tier a launch under this configuration actually executes.
    ///
    /// The compiled tier runs only when profiling, sanitizing, and
    /// fault injection are all off — those modes need the interpreter's
    /// per-instruction hooks, exactly like a production VM deopting for
    /// its debugger/profiler tier.
    pub fn effective_tier(&self) -> Tier {
        if self.tier == Tier::Compiled
            && self.profile == ProfileMode::Off
            && self.sanitize == SanitizeMode::Off
            && !self.fault.is_active()
        {
            Tier::Compiled
        } else {
            Tier::Interp
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            num_sms: 80,
            warp_size: 32,
            default_teams: 8,
            default_threads: 64,
            shared_mem_per_team: 48 * 1024,
            global_heap_bytes: 512 * 1024,
            global_mem_bytes: 64 * 1024 * 1024,
            local_mem_per_thread: 256 * 1024,
            trap_on_cross_thread_local: true,
            max_insts_per_thread: 200_000_000,
            profile: ProfileMode::Off,
            sanitize: SanitizeMode::Off,
            fault: FaultPlan::default(),
            watchdog: None,
            tier: Tier::Compiled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DeviceConfig::default();
        assert!(c.num_sms > 0);
        assert_eq!(c.warp_size, 32);
        assert!(c.shared_mem_per_team >= 16 * 1024);
        assert!(c.trap_on_cross_thread_local);
        assert_eq!(c.tier, Tier::Compiled);
        assert_eq!(c.effective_tier(), Tier::Compiled);
    }

    #[test]
    fn observability_modes_force_the_interpreter_tier() {
        let c = DeviceConfig {
            profile: ProfileMode::On,
            ..DeviceConfig::default()
        };
        assert_eq!(c.effective_tier(), Tier::Interp);

        let c = DeviceConfig {
            sanitize: SanitizeMode::On,
            ..DeviceConfig::default()
        };
        assert_eq!(c.effective_tier(), Tier::Interp);

        let mut c = DeviceConfig::default();
        c.fault.trap_at_inst = Some(10);
        assert_eq!(c.effective_tier(), Tier::Interp);

        let c = DeviceConfig {
            tier: Tier::Interp,
            ..DeviceConfig::default()
        };
        assert_eq!(c.effective_tier(), Tier::Interp);
    }

    #[test]
    fn tier_names_round_trip() {
        for t in [Tier::Interp, Tier::Compiled] {
            assert_eq!(Tier::parse(t.as_str()), Some(t));
        }
        assert_eq!(Tier::parse("jit"), None);
    }
}
