//! Runtime values of the interpreter.

use omp_ir::Type;
use std::fmt;

/// A dynamically-typed runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtVal {
    /// Boolean (`i1`).
    Bool(bool),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// Pointer (simulated address; see `mem` for the encoding).
    Ptr(u64),
}

impl RtVal {
    /// The IR type of this value.
    pub fn ty(self) -> Type {
        match self {
            RtVal::Bool(_) => Type::I1,
            RtVal::I32(_) => Type::I32,
            RtVal::I64(_) => Type::I64,
            RtVal::F32(_) => Type::F32,
            RtVal::F64(_) => Type::F64,
            RtVal::Ptr(_) => Type::Ptr,
        }
    }

    /// Interprets the value as a signed 64-bit integer (sign extended).
    pub fn as_i64(self) -> Option<i64> {
        match self {
            RtVal::Bool(b) => Some(b as i64),
            RtVal::I32(v) => Some(v as i64),
            RtVal::I64(v) => Some(v),
            RtVal::Ptr(p) => Some(p as i64),
            _ => None,
        }
    }

    /// Interprets the value as a float.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            RtVal::F32(v) => Some(v as f64),
            RtVal::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Pointer payload, if this is a pointer.
    pub fn as_ptr(self) -> Option<u64> {
        match self {
            RtVal::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// Truthiness (for `i1` conditions).
    pub fn as_bool(self) -> Option<bool> {
        match self {
            RtVal::Bool(b) => Some(b),
            RtVal::I32(v) => Some(v != 0),
            RtVal::I64(v) => Some(v != 0),
            _ => None,
        }
    }

    /// Serializes the value to little-endian bytes of its natural width.
    pub fn to_bytes(self) -> Vec<u8> {
        match self {
            RtVal::Bool(b) => vec![b as u8],
            RtVal::I32(v) => v.to_le_bytes().to_vec(),
            RtVal::I64(v) => v.to_le_bytes().to_vec(),
            RtVal::F32(v) => v.to_le_bytes().to_vec(),
            RtVal::F64(v) => v.to_le_bytes().to_vec(),
            RtVal::Ptr(p) => p.to_le_bytes().to_vec(),
        }
    }

    /// Serializes the value into a caller-provided buffer without
    /// allocating; returns the number of bytes written.
    pub fn write_le(self, buf: &mut [u8; 8]) -> usize {
        match self {
            RtVal::Bool(b) => {
                buf[0] = b as u8;
                1
            }
            RtVal::I32(v) => {
                buf[..4].copy_from_slice(&v.to_le_bytes());
                4
            }
            RtVal::I64(v) => {
                buf.copy_from_slice(&v.to_le_bytes());
                8
            }
            RtVal::F32(v) => {
                buf[..4].copy_from_slice(&v.to_le_bytes());
                4
            }
            RtVal::F64(v) => {
                buf.copy_from_slice(&v.to_le_bytes());
                8
            }
            RtVal::Ptr(p) => {
                buf.copy_from_slice(&p.to_le_bytes());
                8
            }
        }
    }

    /// Deserializes a value of type `ty` from little-endian bytes.
    pub fn from_bytes(ty: Type, bytes: &[u8]) -> RtVal {
        match ty {
            Type::I1 => RtVal::Bool(bytes[0] != 0),
            Type::I32 => RtVal::I32(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
            Type::I64 => RtVal::I64(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
            Type::F32 => RtVal::F32(f32::from_le_bytes(bytes[..4].try_into().unwrap())),
            Type::F64 => RtVal::F64(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
            Type::Ptr => RtVal::Ptr(u64::from_le_bytes(bytes[..8].try_into().unwrap())),
            Type::Void => panic!("cannot load a void value"),
        }
    }

    /// Zero of the given type.
    pub fn zero(ty: Type) -> RtVal {
        match ty {
            Type::I1 => RtVal::Bool(false),
            Type::I32 => RtVal::I32(0),
            Type::I64 => RtVal::I64(0),
            Type::F32 => RtVal::F32(0.0),
            Type::F64 => RtVal::F64(0.0),
            Type::Ptr => RtVal::Ptr(0),
            Type::Void => panic!("no zero of void"),
        }
    }
}

impl fmt::Display for RtVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtVal::Bool(b) => write!(f, "{b}"),
            RtVal::I32(v) => write!(f, "{v}"),
            RtVal::I64(v) => write!(f, "{v}"),
            RtVal::F32(v) => write!(f, "{v}"),
            RtVal::F64(v) => write!(f, "{v}"),
            RtVal::Ptr(p) => write!(f, "0x{p:x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        for v in [
            RtVal::Bool(true),
            RtVal::I32(-5),
            RtVal::I64(1 << 40),
            RtVal::F32(1.25),
            RtVal::F64(-2.5),
            RtVal::Ptr(0x2000_0000_1234),
        ] {
            let b = v.to_bytes();
            assert_eq!(RtVal::from_bytes(v.ty(), &b), v);
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(RtVal::I32(-1).as_i64(), Some(-1));
        assert_eq!(RtVal::Bool(true).as_i64(), Some(1));
        assert_eq!(RtVal::F32(1.5).as_f64(), Some(1.5));
        assert_eq!(RtVal::I32(0).as_bool(), Some(false));
        assert_eq!(RtVal::Ptr(7).as_ptr(), Some(7));
        assert_eq!(RtVal::F64(0.0).as_i64(), None);
    }

    #[test]
    fn zeros() {
        assert_eq!(RtVal::zero(Type::F64), RtVal::F64(0.0));
        assert_eq!(RtVal::zero(Type::Ptr), RtVal::Ptr(0));
    }
}
