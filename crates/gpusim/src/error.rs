//! Structured simulation diagnostics.
//!
//! [`SimError`] pairs a failure [`SimErrorKind`] with the provenance of
//! the failing instruction (function, block, instruction index,
//! team/thread ids, epoch), the per-thread positions of a stuck team,
//! and any sanitizer [`Finding`]s gathered before the failure. The
//! whole diagnostic serializes to one JSON object (`ompgpu-error/v1`)
//! for machine consumption by the CLI and CI.

use crate::mem::MemError;
use crate::sanitize::Finding;
use omp_json::JsonWriter;

/// What went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum SimErrorKind {
    /// Memory fault (includes the out-of-memory outcome).
    Mem(MemError),
    /// Undefined behaviour or an unresolved operation.
    Trap(String),
    /// All threads blocked with no release condition.
    Deadlock,
    /// The named kernel does not exist in the module.
    UnknownKernel(String),
    /// Launch arguments do not match the kernel signature.
    BadArgs(String),
    /// A thread exceeded the instruction budget.
    Runaway {
        /// The per-thread budget that was exceeded.
        budget: u64,
    },
    /// A [`crate::FaultPlan`] fired.
    FaultInjected(String),
    /// The wall-clock watchdog expired.
    Timeout {
        /// Configured watchdog budget in milliseconds.
        millis: u64,
    },
    /// A request-level deadline (queue wait plus execution) expired.
    /// Raised by the serve layer, which narrows the watchdog to the
    /// remaining deadline budget and reclassifies the resulting
    /// [`SimErrorKind::Timeout`].
    DeadlineExceeded {
        /// The request's total deadline budget in milliseconds.
        millis: u64,
    },
}

impl SimErrorKind {
    /// Stable machine-readable name (also the JSON `kind` value).
    pub fn name(&self) -> &'static str {
        match self {
            SimErrorKind::Mem(_) => "memory",
            SimErrorKind::Trap(_) => "trap",
            SimErrorKind::Deadlock => "deadlock",
            SimErrorKind::UnknownKernel(_) => "unknown-kernel",
            SimErrorKind::BadArgs(_) => "bad-args",
            SimErrorKind::Runaway { .. } => "runaway",
            SimErrorKind::FaultInjected(_) => "fault-injected",
            SimErrorKind::Timeout { .. } => "timeout",
            SimErrorKind::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }
}

/// Where a failure happened, in plan coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    pub function: String,
    pub block: u32,
    pub inst: u32,
    pub team: u32,
    pub thread: u32,
    /// Barrier epoch of the failing thread (0 when not sanitizing).
    pub epoch: u32,
}

/// One thread's position and scheduler state — the per-thread context
/// of a deadlock diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPos {
    pub thread: u32,
    /// Scheduler state: `ready`, `wait-work`, `wait-join`,
    /// `at-barrier`, or `done`.
    pub state: String,
    /// Function on top of the thread's stack (empty when finished).
    pub function: String,
    pub block: u32,
    pub inst: u32,
}

/// A simulation failure: kind plus structured context.
#[derive(Debug, Clone, PartialEq)]
pub struct SimError {
    pub kind: SimErrorKind,
    /// The failing instruction, when one thread is to blame. Boxed so
    /// the ubiquitous `Result<_, SimError>` stays small on the Ok path.
    pub provenance: Option<Box<Provenance>>,
    /// Per-thread positions (deadlock and timeout diagnostics).
    pub threads: Vec<ThreadPos>,
    /// Sanitizer findings gathered by the failing team before the
    /// error (empty when sanitizing is off).
    pub findings: Vec<Finding>,
}

impl SimError {
    fn of(kind: SimErrorKind) -> SimError {
        SimError {
            kind,
            provenance: None,
            threads: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Undefined behaviour or an unresolved operation.
    pub fn trap(msg: impl Into<String>) -> SimError {
        SimError::of(SimErrorKind::Trap(msg.into()))
    }

    /// All threads of a team blocked with no release condition.
    pub fn deadlock() -> SimError {
        SimError::of(SimErrorKind::Deadlock)
    }

    /// The named kernel does not exist.
    pub fn unknown_kernel(name: impl Into<String>) -> SimError {
        SimError::of(SimErrorKind::UnknownKernel(name.into()))
    }

    /// Launch arguments do not match the kernel signature.
    pub fn bad_args(msg: impl Into<String>) -> SimError {
        SimError::of(SimErrorKind::BadArgs(msg.into()))
    }

    /// A thread exceeded the per-thread instruction budget.
    pub fn runaway(budget: u64) -> SimError {
        SimError::of(SimErrorKind::Runaway { budget })
    }

    /// A fault-injection plan fired.
    pub fn fault_injected(msg: impl Into<String>) -> SimError {
        SimError::of(SimErrorKind::FaultInjected(msg.into()))
    }

    /// The wall-clock watchdog expired.
    pub fn timeout(millis: u64) -> SimError {
        SimError::of(SimErrorKind::Timeout { millis })
    }

    /// A request-level deadline expired.
    pub fn deadline_exceeded(millis: u64) -> SimError {
        SimError::of(SimErrorKind::DeadlineExceeded { millis })
    }

    /// Attaches provenance (keeps existing provenance if already set:
    /// the innermost annotation wins).
    pub fn with_provenance(mut self, p: Provenance) -> SimError {
        self.provenance.get_or_insert(Box::new(p));
        self
    }

    /// Attaches per-thread positions.
    pub fn with_threads(mut self, threads: Vec<ThreadPos>) -> SimError {
        self.threads = threads;
        self
    }

    /// Attaches sanitizer findings.
    pub fn with_findings(mut self, findings: Vec<Finding>) -> SimError {
        self.findings = findings;
        self
    }

    /// Serializes the full diagnostic as one JSON object
    /// (`schema: ompgpu-error/v1`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(512);
        w.begin_object();
        w.key("schema").string("ompgpu-error/v1");
        w.key("kind").string(self.kind.name());
        w.key("message").string(&self.to_string());
        match &self.provenance {
            Some(p) => {
                w.key("provenance").begin_object();
                w.key("function").string(&p.function);
                w.key("block").u32(p.block);
                w.key("inst").u32(p.inst);
                w.key("team").u32(p.team);
                w.key("thread").u32(p.thread);
                w.key("epoch").u32(p.epoch);
                w.end_object();
            }
            None => {
                w.key("provenance").null();
            }
        }
        w.key("threads").begin_array();
        for t in &self.threads {
            w.begin_object();
            w.key("thread").u32(t.thread);
            w.key("state").string(&t.state);
            w.key("function").string(&t.function);
            w.key("block").u32(t.block);
            w.key("inst").u32(t.inst);
            w.end_object();
        }
        w.end_array();
        w.key("findings").begin_array();
        for f in &self.findings {
            f.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            SimErrorKind::Mem(e) => write!(f, "memory error: {e}")?,
            SimErrorKind::Trap(m) => write!(f, "trap: {m}")?,
            SimErrorKind::Deadlock => {
                write!(f, "deadlock:")?;
                if self.threads.is_empty() {
                    write!(f, " all threads blocked")?;
                } else {
                    for t in &self.threads {
                        write!(f, " t{} {}", t.thread, t.state)?;
                        if !t.function.is_empty() {
                            write!(f, " @{}:{}:{}", t.function, t.block, t.inst)?;
                        }
                    }
                }
            }
            SimErrorKind::UnknownKernel(k) => write!(f, "unknown kernel `{k}`")?,
            SimErrorKind::BadArgs(m) => write!(f, "bad launch arguments: {m}")?,
            SimErrorKind::Runaway { budget } => {
                write!(f, "instruction budget exceeded ({budget} per thread)")?
            }
            SimErrorKind::FaultInjected(m) => write!(f, "injected fault: {m}")?,
            SimErrorKind::Timeout { millis } => write!(f, "watchdog timeout after {millis} ms")?,
            SimErrorKind::DeadlineExceeded { millis } => {
                write!(f, "request deadline of {millis} ms exceeded")?
            }
        }
        if let Some(p) = &self.provenance {
            write!(
                f,
                " (in @{}, block {}, inst {}, team {}, thread {})",
                p.function, p.block, p.inst, p.team, p.thread
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> SimError {
        SimError::of(SimErrorKind::Mem(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_stable_prefixes() {
        assert!(SimError::from(MemError::GlobalExhausted)
            .to_string()
            .starts_with("memory error:"));
        assert!(SimError::trap("boom").to_string().starts_with("trap: boom"));
        assert!(SimError::deadlock().to_string().starts_with("deadlock:"));
        assert!(SimError::unknown_kernel("k")
            .to_string()
            .contains("unknown kernel `k`"));
        assert!(SimError::bad_args("n")
            .to_string()
            .starts_with("bad launch arguments:"));
        assert!(SimError::runaway(10)
            .to_string()
            .starts_with("instruction budget exceeded"));
        assert!(SimError::fault_injected("x")
            .to_string()
            .starts_with("injected fault:"));
        assert!(SimError::timeout(5)
            .to_string()
            .contains("watchdog timeout"));
        assert!(SimError::deadline_exceeded(5)
            .to_string()
            .starts_with("request deadline of 5 ms exceeded"));
    }

    #[test]
    fn provenance_shows_in_display_and_json() {
        let e = SimError::trap("bad").with_provenance(Provenance {
            function: "kern".into(),
            block: 2,
            inst: 7,
            team: 1,
            thread: 3,
            epoch: 4,
        });
        let s = e.to_string();
        assert!(s.contains("@kern"), "{s}");
        assert!(s.contains("team 1"), "{s}");
        let json = e.to_json();
        omp_json::validate(&json).expect("error JSON must be valid");
        assert!(json.contains("\"kind\": \"trap\"") || json.contains("\"kind\":\"trap\""));
        assert!(json.contains("kern"));
    }

    #[test]
    fn deadlock_renders_thread_positions() {
        let e = SimError::deadlock().with_threads(vec![ThreadPos {
            thread: 1,
            state: "at-barrier".into(),
            function: "body".into(),
            block: 3,
            inst: 0,
        }]);
        let s = e.to_string();
        assert!(s.contains("t1 at-barrier @body:3:0"), "{s}");
        omp_json::validate(&e.to_json()).unwrap();
    }
}
