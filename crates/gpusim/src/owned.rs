//! An owning device: a [`Device`] bundled with the [`Module`] it
//! executes.
//!
//! [`Device`] borrows its module (`Device<'m>`), which is the right
//! shape for one-shot CLI runs but cannot be stored in a long-lived
//! cache: a compile service that keeps an LRU of warmed devices needs a
//! single owned value per entry. [`OwnedDevice`] provides that by
//! pinning the module behind an [`Arc`] — the module's heap allocation
//! never moves, so the device's internal borrows (the decoded
//! [`crate::ExecPlan`] holds references into the module's instruction
//! streams) stay valid for as long as the pair lives.

use crate::config::DeviceConfig;
use crate::error::SimError;
use crate::launch::Device;
use omp_ir::Module;
use std::sync::Arc;

/// A [`Device`] that owns (a handle to) its module.
///
/// The embedded device is constructed against the `Arc`'d module's
/// stable heap allocation. Access goes through [`OwnedDevice::with`],
/// which re-scopes the device's lifetime parameter to the borrow of the
/// closure — the `'static` below is an implementation detail that is
/// never exposed.
pub struct OwnedDevice {
    /// Declared before `module` so it drops first: the device's borrows
    /// must not outlive the allocation they point into.
    device: Device<'static>,
    module: Arc<Module>,
}

impl OwnedDevice {
    /// Builds a device for `module`, exactly like [`Device::new`], but
    /// owning a handle to the module.
    pub fn new(module: Arc<Module>, cfg: DeviceConfig) -> Result<OwnedDevice, SimError> {
        // SAFETY: the reference points into the Arc's heap allocation,
        // which is stable for the life of `self.module` — and
        // `self.module` outlives `self.device` (field order). The
        // `'static` lifetime never escapes this struct: `with` shortens
        // it to the closure borrow, and `Device`'s public API returns
        // only owned values.
        let mref: &'static Module = unsafe { &*Arc::as_ptr(&module) };
        let device = Device::new(mref, cfg)?;
        Ok(OwnedDevice { device, module })
    }

    /// The module this device executes.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// Runs `f` with mutable access to the device. The higher-ranked
    /// bound keeps the internal `'static` from leaking: `f` must accept
    /// a device of *any* lifetime, so it can neither store the reference
    /// nor extract module borrows that outlive the call.
    pub fn with<R>(&mut self, f: impl for<'a> FnOnce(&mut Device<'a>) -> R) -> R {
        f(&mut self.device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchDims;
    use crate::value::RtVal;
    use omp_frontend::{compile, FrontendOptions};

    const SRC: &str = r#"
void fill(double* a, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { a[i] = (double)i * 2.0; }
}
"#;

    #[test]
    fn owned_device_runs_and_outlives_caller_scope() {
        let module = Arc::new(compile(SRC, &FrontendOptions::default()).unwrap());
        let mut dev = {
            // The OwnedDevice escapes the scope that created the Arc
            // binding — exactly the cache-storage shape.
            let m = Arc::clone(&module);
            OwnedDevice::new(m, DeviceConfig::default()).unwrap()
        };
        let out = dev.with(|d| {
            let buf = d.alloc_f64(&[0.0; 32]).unwrap();
            d.launch(
                "fill",
                &[RtVal::Ptr(buf), RtVal::I64(32)],
                LaunchDims {
                    teams: Some(2),
                    threads: Some(8),
                },
            )
            .unwrap();
            d.read_f64(buf, 32).unwrap()
        });
        assert_eq!(out[10], 20.0);
        assert_eq!(dev.module().kernels.len(), 1);
    }
}
