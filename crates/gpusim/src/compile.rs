//! Tier-1 block compilation: lowers straight-line [`BlockPlan`] bodies
//! into pre-decoded step arrays the interpreter executes without
//! per-instruction dispatch, budget checks, or frame re-borrows.
//!
//! Compilation happens once, at plan-build time (`ExecPlan::build`),
//! per basic block:
//!
//! * every operand [`Value`] is pre-decoded into a [`Slot`] — constants
//!   (including function addresses and `undef`) become materialized
//!   [`RtVal`]s, so constant-operand arithmetic never re-decodes its
//!   immediate at run time;
//! * common idioms fuse into superinstructions: address-calc + load
//!   ([`Step::GepLoad`]), load + arithmetic + store
//!   ([`Step::LoadBinStore`]), and a compare feeding the block's
//!   conditional branch ([`CTerm::CmpBr`]). Fusion elides the
//!   intermediate register write when whole-function SSA use counts
//!   prove the fused consumer is the only reader;
//! * the block's instruction count, static cycle cost, and memory
//!   access count are pre-summed from the same [`CostModel`] tables the
//!   interpreter charges, so one compiled block run performs a single
//!   budget check and a single bulk charge — bit-identical to the
//!   interpreter's per-instruction accounting;
//! * branch targets become [`Edge`]s with the successor's phi moves
//!   pre-resolved for this predecessor.
//!
//! A block containing anything effectful or unfusable — `__kmpc_*`
//! runtime calls, direct/indirect calls, `ret`, `unreachable`, or a phi
//! without an incoming for some predecessor — either does not compile
//! at all (`compile_block` returns `None`) or compiles with a
//! [`CTerm::Bridge`] terminator that hands the frame back to the
//! interpreter positioned exactly at the terminator. The interpreter
//! remains the complete tier-0 semantics; compiled blocks are a strict
//! fast path over it.

use crate::cost::CostModel;
use crate::plan::{for_each_operand, BlockPlan, CallTarget, MathKind};
use crate::value::RtVal;
use omp_ir::{BinOp, BlockId, CastOp, CmpOp, InstId, InstKind, Terminator, Type, Value};

/// A pre-decoded operand: what [`Value`] decodes to once the constant
/// forms are materialized at compile time. `Global` stays an index
/// because a global's address depends on the executing team.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    /// Read the frame register of this instruction (trap message keeps
    /// the original id, matching the interpreter exactly).
    Reg(InstId),
    /// Read a kernel/function argument.
    Arg(u32),
    /// A value fully known at compile time.
    Const(RtVal),
    /// Dense global-table index, resolved against the team at run time.
    Global(u32),
}

/// One compiled step. `site` fields are plan-wide coalescing-site
/// indices (`site_base + inst`), precomputed so the run-time path feeds
/// the same classifier as the interpreter.
#[derive(Debug, Clone)]
pub(crate) enum Step {
    Alloca {
        size: u64,
        dst: InstId,
    },
    Load {
        ptr: Slot,
        ty: Type,
        site: u32,
        dst: InstId,
    },
    Store {
        ptr: Slot,
        val: Slot,
        site: u32,
    },
    Bin {
        op: BinOp,
        ty: Type,
        lhs: Slot,
        rhs: Slot,
        dst: InstId,
    },
    Cmp {
        op: CmpOp,
        ty: Type,
        lhs: Slot,
        rhs: Slot,
        dst: InstId,
    },
    Cast {
        op: CastOp,
        val: Slot,
        to: Type,
        dst: InstId,
    },
    Gep {
        base: Slot,
        index: Slot,
        scale: u64,
        offset: i64,
        dst: InstId,
    },
    Select {
        cond: Slot,
        on_true: Slot,
        on_false: Slot,
        dst: InstId,
    },
    /// Pure math intrinsic call (`sqrt`, `pow`, ...): no frame push, no
    /// scheduler interaction, so it fuses into the straight line.
    Math {
        kind: MathKind,
        f32_out: bool,
        args: [Slot; 2],
        n_args: u8,
        dst: InstId,
    },
    /// Superinstruction: `gep` + `load` through the computed address.
    /// `addr_dst` is `None` when the load is the address's only use.
    GepLoad {
        base: Slot,
        index: Slot,
        scale: u64,
        offset: i64,
        addr_dst: Option<InstId>,
        ty: Type,
        site: u32,
        dst: InstId,
    },
    /// Superinstruction: `load` + binary op + `store` of the result.
    /// `ldst`/`bdst` are `None` when the fused consumer is the loaded
    /// (resp. computed) value's only use.
    LoadBinStore {
        ptr: Slot,
        lty: Type,
        lsite: u32,
        ldst: Option<InstId>,
        op: BinOp,
        bty: Type,
        other: Slot,
        loaded_is_lhs: bool,
        bdst: Option<InstId>,
        sptr: Slot,
        ssite: u32,
    },
}

/// A pre-resolved branch edge: the target block plus the target's phi
/// assignments for this predecessor, evaluated simultaneously (reads
/// before writes) exactly like the interpreter's `transition`.
#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub target: BlockId,
    pub moves: Vec<(InstId, Slot)>,
}

/// Compiled terminator.
#[derive(Debug, Clone)]
pub(crate) enum CTerm {
    /// Hand the frame back to the interpreter, positioned at the
    /// terminator (`frame.idx = code_len`): `ret`, `unreachable`, or an
    /// edge that could not be pre-resolved.
    Bridge,
    Br(Edge),
    CondBr {
        cond: Slot,
        then_e: Edge,
        else_e: Edge,
    },
    /// Superinstruction: the block's trailing compare feeds the branch
    /// directly; `at` is the compare's code index for error provenance.
    CmpBr {
        op: CmpOp,
        ty: Type,
        lhs: Slot,
        rhs: Slot,
        at: u32,
        then_e: Edge,
        else_e: Edge,
    },
}

/// One block, lowered: the step array plus pre-summed accounting.
///
/// Executing the block once costs `n_insts` instructions and
/// `static_cycles` cycles plus the dynamic memory-access costs the
/// steps accumulate; `mem_accesses` is the number of loads/stores a
/// full run performs. A run is entered only when the remaining
/// instruction budget covers `n_insts` (the caller deopts to the
/// interpreter otherwise), which keeps budget-stop errors at the exact
/// instruction the interpreter would report.
#[derive(Debug, Clone)]
pub(crate) struct CompiledBlock {
    /// `(code index of the first fused component, step)`.
    pub steps: Vec<(u32, Step)>,
    /// Dynamic instructions per full run: every code entry (fused
    /// components and skipped mid-block phis included) plus the
    /// terminator iteration for non-bridge terminators.
    pub n_insts: u64,
    /// Cycles per full run, excluding dynamic memory-access costs.
    pub static_cycles: u64,
    /// `memory_accesses` statistic delta per full run.
    pub mem_accesses: u64,
    /// `frame.idx` to restore when bridging or trapping at the
    /// terminator (= `code.len()`).
    pub code_len: u32,
    pub term: CTerm,
}

/// Compiles every block of one function in place. `counts` are the SSA
/// use counts over the whole function; fusion uses them to prove an
/// intermediate register write unobservable.
pub(crate) fn compile_func(
    blocks: &mut [Option<BlockPlan<'_>>],
    call_targets: &[CallTarget],
    num_regs: usize,
    site_base: u32,
    cost: &CostModel,
) {
    let counts = use_counts(blocks, num_regs);
    let compiled: Vec<Option<CompiledBlock>> = blocks
        .iter()
        .enumerate()
        .map(|(b, bp)| {
            bp.as_ref().and_then(|bp| {
                compile_block(
                    BlockId::from_index(b),
                    bp,
                    blocks,
                    call_targets,
                    &counts,
                    site_base,
                    cost,
                )
            })
        })
        .collect();
    for (bp, c) in blocks.iter_mut().zip(compiled) {
        if let Some(bp) = bp.as_mut() {
            bp.compiled = c;
        }
    }
}

/// Whole-function SSA use counts, indexed by `InstId`.
fn use_counts(blocks: &[Option<BlockPlan<'_>>], num_regs: usize) -> Vec<u32> {
    let mut counts = vec![0u32; num_regs];
    let mut bump = |v: Value| {
        if let Value::Inst(i) = v {
            counts[i.index()] += 1;
        }
        true
    };
    for bp in blocks.iter().flatten() {
        for &(_, incoming) in &bp.phis {
            for &(_, v) in incoming {
                bump(v);
            }
        }
        for &(_, kind) in &bp.code {
            for_each_operand(kind, &mut bump);
        }
        match bp.term {
            Terminator::CondBr { cond, .. } => {
                bump(*cond);
            }
            Terminator::Ret(Some(v)) => {
                bump(*v);
            }
            _ => {}
        }
    }
    counts
}

fn slot(v: Value) -> Slot {
    match v {
        Value::Inst(i) => Slot::Reg(i),
        Value::Arg(n) => Slot::Arg(n),
        Value::ConstInt(c, ty) => Slot::Const(match ty {
            Type::I1 => RtVal::Bool(c != 0),
            Type::I32 => RtVal::I32(c as i32),
            _ => RtVal::I64(c),
        }),
        Value::ConstFloat(bits, ty) => Slot::Const(match ty {
            Type::F32 => RtVal::F32(f64::from_bits(bits) as f32),
            _ => RtVal::F64(f64::from_bits(bits)),
        }),
        Value::Global(g) => Slot::Global(g.index() as u32),
        Value::Func(f) => Slot::Const(RtVal::Ptr(crate::mem::func_addr(f.0))),
        Value::Null => Slot::Const(RtVal::Ptr(0)),
        Value::Undef(ty) => Slot::Const(RtVal::zero(ty)),
    }
}

/// Pre-resolves the phi moves of `target` for predecessor `from`.
/// `None` when a phi lacks an incoming for `from` (the interpreter's
/// trap path owns that case) or the target block is dead.
fn edge(from: BlockId, target: BlockId, blocks: &[Option<BlockPlan<'_>>]) -> Option<Edge> {
    let tp = blocks.get(target.index())?.as_ref()?;
    let mut moves = Vec::with_capacity(tp.phis.len());
    for &(i, incoming) in &tp.phis {
        let &(_, v) = incoming.iter().find(|(p, _)| *p == from)?;
        moves.push((i, slot(v)));
    }
    Some(Edge { target, moves })
}

/// Lowers one decoded instruction that is not part of a wider fusion.
/// Returns the step and its static cycle / memory-access contribution,
/// or `None` when the instruction cannot execute inside a compiled
/// body (calls other than pure math intrinsics).
fn lower_one(
    id: InstId,
    kind: &InstKind,
    call_targets: &[CallTarget],
    site_base: u32,
    cost: &CostModel,
) -> Option<(Step, u64, u64)> {
    Some(match *kind {
        InstKind::Alloca { size, .. } => (Step::Alloca { size, dst: id }, cost.simple_op, 0),
        InstKind::Load { ptr, ty } => (
            Step::Load {
                ptr: slot(ptr),
                ty,
                site: site_base + id.0,
                dst: id,
            },
            0,
            1,
        ),
        InstKind::Store { ptr, val } => (
            Step::Store {
                ptr: slot(ptr),
                val: slot(val),
                site: site_base + id.0,
            },
            0,
            1,
        ),
        InstKind::Bin { op, ty, lhs, rhs } => (
            Step::Bin {
                op,
                ty,
                lhs: slot(lhs),
                rhs: slot(rhs),
                dst: id,
            },
            cost.bin_cost(op),
            0,
        ),
        InstKind::Cmp { op, ty, lhs, rhs } => (
            Step::Cmp {
                op,
                ty,
                lhs: slot(lhs),
                rhs: slot(rhs),
                dst: id,
            },
            cost.simple_op,
            0,
        ),
        InstKind::Cast { op, val, to } => {
            let c = match op {
                CastOp::IntToPtr | CastOp::PtrToInt => cost.ptr_reinterpret,
                _ => cost.simple_op,
            };
            (
                Step::Cast {
                    op,
                    val: slot(val),
                    to,
                    dst: id,
                },
                c,
                0,
            )
        }
        InstKind::Gep {
            base,
            index,
            scale,
            offset,
        } => (
            Step::Gep {
                base: slot(base),
                index: slot(index),
                scale,
                offset,
                dst: id,
            },
            cost.int_op,
            0,
        ),
        InstKind::Select {
            cond,
            on_true,
            on_false,
            ..
        } => (
            Step::Select {
                cond: slot(cond),
                on_true: slot(on_true),
                on_false: slot(on_false),
                dst: id,
            },
            cost.simple_op,
            0,
        ),
        InstKind::Call { ref args, .. } => match call_targets[id.index()] {
            CallTarget::Math(kind, f32_out) if args.len() <= 2 => {
                let mut slots = [Slot::Const(RtVal::I64(0)); 2];
                for (k, &a) in args.iter().enumerate() {
                    slots[k] = slot(a);
                }
                (
                    Step::Math {
                        kind,
                        f32_out,
                        args: slots,
                        n_args: args.len() as u8,
                        dst: id,
                    },
                    cost.math_fn,
                    0,
                )
            }
            _ => return None,
        },
        // Mid-block phis are skipped by the interpreter (no charge);
        // the caller counts them in `n_insts` without emitting a step.
        InstKind::Phi { .. } => return None,
    })
}

/// Compiles one block, or `None` when any instruction cannot run
/// inside a compiled body.
fn compile_block(
    from: BlockId,
    bp: &BlockPlan<'_>,
    blocks: &[Option<BlockPlan<'_>>],
    call_targets: &[CallTarget],
    counts: &[u32],
    site_base: u32,
    cost: &CostModel,
) -> Option<CompiledBlock> {
    let code = bp.code.as_slice();

    // Terminator first: a fused compare-and-branch trims the step
    // range, and an unresolvable edge degrades to a bridge.
    let mut upper = code.len();
    let mut static_cycles: u64 = 0;
    let cterm = match bp.term {
        Terminator::Br(t) => match edge(from, *t, blocks) {
            Some(e) => {
                static_cycles += cost.simple_op;
                CTerm::Br(e)
            }
            None => CTerm::Bridge,
        },
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => match (edge(from, *then_bb, blocks), edge(from, *else_bb, blocks)) {
            (Some(then_e), Some(else_e)) => {
                let fused = match (cond, code.last()) {
                    (&Value::Inst(c), Some(&(id, kind))) => match *kind {
                        InstKind::Cmp { op, ty, lhs, rhs } if id == c && counts[c.index()] == 1 => {
                            Some((op, ty, lhs, rhs))
                        }
                        _ => None,
                    },
                    _ => None,
                };
                match fused {
                    Some((op, ty, lhs, rhs)) => {
                        upper = code.len() - 1;
                        // Compare (Alu) + branch, same as unfused.
                        static_cycles += cost.simple_op + cost.simple_op;
                        CTerm::CmpBr {
                            op,
                            ty,
                            lhs: slot(lhs),
                            rhs: slot(rhs),
                            at: upper as u32,
                            then_e,
                            else_e,
                        }
                    }
                    None => {
                        static_cycles += cost.simple_op;
                        CTerm::CondBr {
                            cond: slot(*cond),
                            then_e,
                            else_e,
                        }
                    }
                }
            }
            _ => CTerm::Bridge,
        },
        Terminator::Ret(_) | Terminator::Unreachable => CTerm::Bridge,
    };
    let bridge = matches!(cterm, CTerm::Bridge);
    if bridge && code.is_empty() {
        // Nothing to speed up, and an empty bridge body would re-enter
        // itself from the resolve loop.
        return None;
    }

    let mut steps: Vec<(u32, Step)> = Vec::new();
    let mut mem_accesses: u64 = 0;
    let mut i = 0usize;
    while i < upper {
        let (id, kind) = code[i];
        let at = i as u32;

        // Superinstruction: load + bin + store (the canonical
        // read-modify-write idiom).
        if i + 2 < upper {
            if let (
                &InstKind::Load { ptr, ty: lty },
                (
                    bid,
                    &InstKind::Bin {
                        op,
                        ty: bty,
                        lhs,
                        rhs,
                    },
                ),
                (_, &InstKind::Store { ptr: sptr, val }),
            ) = (kind, code[i + 1], code[i + 2])
            {
                let loaded_lhs = lhs == Value::Inst(id);
                let loaded_rhs = rhs == Value::Inst(id);
                if (loaded_lhs ^ loaded_rhs) && val == Value::Inst(bid) {
                    let other = if loaded_lhs { rhs } else { lhs };
                    steps.push((
                        at,
                        Step::LoadBinStore {
                            ptr: slot(ptr),
                            lty,
                            lsite: site_base + id.0,
                            ldst: (counts[id.index()] > 1).then_some(id),
                            op,
                            bty,
                            other: slot(other),
                            loaded_is_lhs: loaded_lhs,
                            bdst: (counts[bid.index()] > 1).then_some(bid),
                            sptr: slot(sptr),
                            ssite: site_base + code[i + 2].0 .0,
                        },
                    ));
                    static_cycles += cost.bin_cost(op);
                    mem_accesses += 2;
                    i += 3;
                    continue;
                }
            }
        }

        // Superinstruction: address calculation + load.
        if i + 1 < upper {
            if let (
                &InstKind::Gep {
                    base,
                    index,
                    scale,
                    offset,
                },
                (lid, &InstKind::Load { ptr, ty }),
            ) = (kind, code[i + 1])
            {
                if ptr == Value::Inst(id) {
                    steps.push((
                        at,
                        Step::GepLoad {
                            base: slot(base),
                            index: slot(index),
                            scale,
                            offset,
                            addr_dst: (counts[id.index()] > 1).then_some(id),
                            ty,
                            site: site_base + lid.0,
                            dst: lid,
                        },
                    ));
                    static_cycles += cost.int_op;
                    mem_accesses += 1;
                    i += 2;
                    continue;
                }
            }
        }

        if matches!(kind, InstKind::Phi { .. }) {
            // Counted in `n_insts`, never executed (the interpreter
            // skips mid-block phis without charging).
            i += 1;
            continue;
        }
        let (step, st, mem) = lower_one(id, kind, call_targets, site_base, cost)?;
        steps.push((at, step));
        static_cycles += st;
        mem_accesses += mem;
        i += 1;
    }

    let n_insts = code.len() as u64 + if bridge { 0 } else { 1 };
    Some(CompiledBlock {
        steps,
        n_insts,
        static_cycles,
        mem_accesses,
        code_len: code.len() as u32,
        term: cterm,
    })
}
