//! # omp-gpusim
//!
//! A GPU execution simulator for the `omp-gpu` compiler: the substitute
//! for the NVIDIA V100 + libomptarget device runtime used by the paper
//! *"Efficient Execution of OpenMP on GPUs"* (CGO 2022).
//!
//! The simulator interprets `omp-ir` kernels with full OpenMP device
//! runtime semantics — generic-mode worker state machines, SPMD
//! execution, parallel-region dispatch, barriers, worksharing, and the
//! globalization allocators — while charging an abstract cycle model
//! ([`CostModel`]) that preserves the cost *ordering* the paper's
//! optimizations exploit: registers ≪ shared ≪ coalesced global ≪
//! uncoalesced global, and context queries ≪ runtime allocation ≪
//! generic parallel dispatch.
//!
//! Kernel launches report the paper's Figure 10 quantities: kernel time
//! (cycles), shared-memory footprint, and a register estimate — as raw
//! [`KernelStats`], or as a [`StatsSnapshot`]: a deterministic,
//! comparison-friendly projection the differential-execution oracle
//! uses to assert monotone resource usage along the ablation chain.
//!
//! ```
//! use omp_frontend::{compile, FrontendOptions};
//! use omp_gpusim::{Device, DeviceConfig, LaunchDims, RtVal};
//!
//! let src = r#"
//! void fill(double* a, long n) {
//!   #pragma omp target teams distribute parallel for
//!   for (long i = 0; i < n; i++) { a[i] = (double)i * 2.0; }
//! }
//! "#;
//! let module = compile(src, &FrontendOptions::default()).unwrap();
//! let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
//! let buf = dev.alloc_f64(&[0.0; 64]).unwrap();
//! let stats = dev
//!     .launch(
//!         "fill",
//!         &[RtVal::Ptr(buf), RtVal::I64(64)],
//!         LaunchDims { teams: Some(2), threads: Some(16) },
//!     )
//!     .unwrap();
//! assert!(stats.cycles > 0);
//! let out = dev.read_f64(buf, 64).unwrap();
//! assert_eq!(out[10], 20.0);
//! ```

pub(crate) mod compile;
pub mod config;
pub mod cost;
pub mod error;
pub mod interp;
pub mod launch;
pub mod mem;
pub mod owned;
pub mod plan;
pub mod profile;
pub mod sanitize;
pub mod stats;
pub mod stream;
pub mod value;

pub use config::{DeviceConfig, Tier};
pub use cost::CostModel;
pub use error::{Provenance, SimError, SimErrorKind, ThreadPos};
pub use launch::{Device, LaunchDims};
pub use mem::MemError;
pub use owned::OwnedDevice;
pub use plan::ExecPlan;
pub use profile::{
    FuncProfile, LaunchProfile, ProfileMode, RegionSpan, RtlProfile, StreamSpan, TeamTrack,
};
pub use sanitize::{findings_to_json, FaultPlan, Finding, FindingKind, SanitizeMode, Severity};
pub use stats::{KernelStats, StatsSnapshot};
pub use stream::{CapturedGraph, LaunchPlan, PlanNode};
pub use value::RtVal;
