//! The kernel interpreter: executes IR for every thread of every team,
//! implementing the OpenMP device runtime semantics and charging the
//! cost model.
//!
//! Threads are cooperatively scheduled within a team: a thread runs
//! until it blocks (barrier, worker wait, end-of-parallel join) or
//! finishes. Cross-thread interactions — parallel-region dispatch,
//! barriers, termination — release blocked threads and align their
//! cycle counters, which is how synchronization shows up in kernel
//! time.

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::mem::{self, AccessClass, MemError, Memory};
use crate::stats::KernelStats;
use crate::value::RtVal;
use omp_ir::omprtl::MODE_SPMD;
use omp_ir::{
    AddrSpace, BinOp, BlockId, CastOp, CmpOp, ExecMode, FuncId, GlobalId, InstId, InstKind, Module,
    RtlFn, Terminator, Type, Value,
};
use std::collections::{HashMap, HashSet};

/// A simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Memory fault (includes the out-of-memory outcome).
    Mem(MemError),
    /// Undefined behaviour or an unresolved operation.
    Trap(String),
    /// All threads blocked with no release condition.
    Deadlock(String),
    /// The named kernel does not exist in the module.
    UnknownKernel(String),
    /// Launch arguments do not match the kernel signature.
    BadArgs(String),
    /// A thread exceeded the instruction budget.
    Runaway,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Mem(e) => write!(f, "memory error: {e}"),
            SimError::Trap(m) => write!(f, "trap: {m}"),
            SimError::Deadlock(m) => write!(f, "deadlock: {m}"),
            SimError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            SimError::BadArgs(m) => write!(f, "bad launch arguments: {m}"),
            SimError::Runaway => write!(f, "instruction budget exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> SimError {
        SimError::Mem(e)
    }
}

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    /// Worker blocked in `__kmpc_kernel_parallel`.
    WaitWork,
    /// Main thread waiting for workers to finish the parallel region.
    WaitJoin,
    /// Waiting at a barrier (`true` = team-wide "simple" barrier).
    AtBarrier(bool),
    Done,
}

struct Frame {
    func: FuncId,
    block: BlockId,
    prev_block: Option<BlockId>,
    idx: usize,
    regs: Vec<Option<RtVal>>,
    args: Vec<RtVal>,
    local_sp_save: u64,
    /// The call instruction in the parent frame to receive the result.
    ret_to: Option<InstId>,
    hook: Option<RetHook>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetHook {
    /// Main thread finished its share of a generic parallel region.
    Generic,
    /// SPMD thread finished a parallel region: implicit team barrier.
    Spmd,
    /// Serialized nested region: pop context only.
    Serialized,
}

struct Thread {
    hw: u32,
    status: Status,
    frames: Vec<Frame>,
    cycles: u64,
    insts: u64,
    /// (omp thread id, team size) context stack.
    ctx: Vec<(i32, i32)>,
    local_sp: u64,
    /// Result delivered by a release (consumed by the blocked call).
    resume: Option<RtVal>,
    /// Access sites this thread has already contributed a coalescing
    /// sample for (only the first visit is compared).
    sampled: HashSet<InstId>,
}

impl Thread {
    fn new(hw: u32) -> Thread {
        Thread {
            hw,
            status: Status::Ready,
            frames: Vec::new(),
            cycles: 0,
            insts: 0,
            ctx: Vec::new(),
            local_sp: 0,
            resume: None,
            sampled: HashSet::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteClass {
    Coalesced,
    Uncoalesced,
}

/// Per-team runtime state.
struct Team {
    id: u32,
    mode: ExecMode,
    threads: Vec<Thread>,
    /// Published parallel-region token and args.
    work_token: RtVal,
    work_args: u64,
    /// Hardware tids assigned work but not yet picked up.
    assigned: Vec<u32>,
    /// Team size of the current generic dispatch.
    dispatch_n: i32,
    /// Workers that have not called `__kmpc_kernel_end_parallel` yet.
    outstanding: u32,
    terminated: bool,
    /// Sizes of legacy push-stack allocations (for pop).
    push_sizes: HashMap<u64, u64>,
}

/// The interpreter for one kernel launch.
pub struct Interp<'a> {
    module: &'a Module,
    cfg: &'a DeviceConfig,
    cost: &'a CostModel,
    mem: &'a mut Memory,
    globals: &'a HashMap<GlobalId, (AddrSpace, u64)>,
    num_teams: u32,
    team_size: u32,
    /// Running statistics.
    pub stats: KernelStats,
    site_class: HashMap<(FuncId, InstId), SiteClass>,
    site_samples: HashMap<(u32, FuncId, InstId, u32), (u32, u64)>,
    /// Set by allocation runtime calls: the current thread yields so
    /// that per-thread allocations overlap in time, modelling the
    /// concurrent footprint of a real launch.
    yield_flag: bool,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter for a launch of `num_teams x team_size`.
    pub fn new(
        module: &'a Module,
        cfg: &'a DeviceConfig,
        cost: &'a CostModel,
        mem: &'a mut Memory,
        globals: &'a HashMap<GlobalId, (AddrSpace, u64)>,
        num_teams: u32,
        team_size: u32,
    ) -> Interp<'a> {
        Interp {
            module,
            cfg,
            cost,
            mem,
            globals,
            num_teams,
            team_size,
            stats: KernelStats::default(),
            site_class: HashMap::new(),
            site_samples: HashMap::new(),
            yield_flag: false,
        }
    }

    /// Runs the kernel function with `args` on every team; returns the
    /// per-team cycle counts.
    pub fn run(&mut self, kernel: FuncId, args: &[RtVal]) -> Result<Vec<u64>, SimError> {
        let mode = self
            .module
            .kernel_for(kernel)
            .map(|k| k.exec_mode)
            .unwrap_or(ExecMode::Spmd);
        let mut team_cycles = Vec::with_capacity(self.num_teams as usize);
        for team_id in 0..self.num_teams {
            let cycles = self.run_team(kernel, args, team_id, mode)?;
            team_cycles.push(cycles);
        }
        Ok(team_cycles)
    }

    fn run_team(
        &mut self,
        kernel: FuncId,
        args: &[RtVal],
        team_id: u32,
        mode: ExecMode,
    ) -> Result<u64, SimError> {
        let mut team = Team {
            id: team_id,
            mode,
            threads: (0..self.team_size).map(Thread::new).collect(),
            work_token: RtVal::Ptr(0),
            work_args: 0,
            assigned: Vec::new(),
            dispatch_n: 0,
            outstanding: 0,
            terminated: false,
            push_sizes: HashMap::new(),
        };
        for t in &mut team.threads {
            t.frames.push(Frame {
                func: kernel,
                block: self.module.func(kernel).entry(),
                prev_block: None,
                idx: 0,
                regs: vec![None; 0],
                args: args.to_vec(),
                local_sp_save: 0,
                ret_to: None,
                hook: None,
            });
        }
        // Round-robin scheduling until every thread is done.
        loop {
            let mut progressed = false;
            for hw in 0..self.team_size {
                if team.threads[hw as usize].status != Status::Ready {
                    continue;
                }
                progressed = true;
                self.run_thread(&mut team, hw)?;
            }
            if team.threads.iter().all(|t| t.status == Status::Done) {
                break;
            }
            if !progressed {
                let states: Vec<String> = team
                    .threads
                    .iter()
                    .map(|t| format!("t{}:{:?}", t.hw, t.status))
                    .collect();
                return Err(SimError::Deadlock(states.join(" ")));
            }
        }
        let max = team.threads.iter().map(|t| t.cycles).max().unwrap_or(0);
        self.stats.instructions += team.threads.iter().map(|t| t.insts).sum::<u64>();
        Ok(max)
    }

    fn run_thread(&mut self, team: &mut Team, hw: u32) -> Result<(), SimError> {
        while team.threads[hw as usize].status == Status::Ready {
            self.step(team, hw)?;
            if self.yield_flag {
                self.yield_flag = false;
                break;
            }
        }
        Ok(())
    }

    fn eval(&self, team: &Team, _hw: u32, frame: &Frame, v: Value) -> Result<RtVal, SimError> {
        Ok(match v {
            Value::Inst(i) => frame
                .regs
                .get(i.index())
                .copied()
                .flatten()
                .ok_or_else(|| SimError::Trap(format!("use of undefined value {i}")))?,
            Value::Arg(n) => *frame
                .args
                .get(n as usize)
                .ok_or_else(|| SimError::Trap(format!("missing argument {n}")))?,
            Value::ConstInt(c, ty) => match ty {
                Type::I1 => RtVal::Bool(c != 0),
                Type::I32 => RtVal::I32(c as i32),
                _ => RtVal::I64(c),
            },
            Value::ConstFloat(bits, ty) => match ty {
                Type::F32 => RtVal::F32(f64::from_bits(bits) as f32),
                _ => RtVal::F64(f64::from_bits(bits)),
            },
            Value::Global(g) => {
                let (space, offset) = self.globals[&g];
                match space {
                    AddrSpace::Global => RtVal::Ptr(mem::global_addr(offset)),
                    AddrSpace::Shared => RtVal::Ptr(mem::shared_addr(team.id, offset)),
                }
            }
            Value::Func(f) => RtVal::Ptr(mem::func_addr(f.0)),
            Value::Null => RtVal::Ptr(0),
            Value::Undef(ty) => RtVal::zero(ty),
        })
    }

    fn set_reg(frame: &mut Frame, inst: InstId, v: RtVal) {
        if frame.regs.len() <= inst.index() {
            frame.regs.resize(inst.index() + 1, None);
        }
        frame.regs[inst.index()] = Some(v);
    }

    fn charge(&mut self, team: &mut Team, hw: u32, cycles: u64) {
        team.threads[hw as usize].cycles += cycles;
    }

    /// Executes one instruction or terminator for thread `hw`.
    fn step(&mut self, team: &mut Team, hw: u32) -> Result<(), SimError> {
        let th = &mut team.threads[hw as usize];
        th.insts += 1;
        if th.insts > self.cfg.max_insts_per_thread {
            return Err(SimError::Runaway);
        }
        let Some(frame) = th.frames.last() else {
            th.status = Status::Done;
            return Ok(());
        };
        let func = self.module.func(frame.func);
        let block = func.block(frame.block);
        if frame.idx >= block.insts.len() {
            return self.step_terminator(team, hw);
        }
        let inst_id = block.insts[frame.idx];
        let kind = func.inst(inst_id).clone();
        let fid = frame.func;
        match kind {
            InstKind::Alloca { size, .. } => {
                let th = &mut team.threads[hw as usize];
                let addr = mem::local_addr(team.id, hw, th.local_sp);
                th.local_sp += size.max(1).div_ceil(8) * 8;
                if th.local_sp > self.cfg.local_mem_per_thread {
                    return Err(SimError::Trap("thread-local stack overflow".into()));
                }
                let f = th.frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, RtVal::Ptr(addr));
                f.idx += 1;
                self.charge(team, hw, self.cost.simple_op);
            }
            InstKind::Load { ptr, ty } => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let p = self
                    .eval(team, hw, f, ptr)?
                    .as_ptr()
                    .ok_or_else(|| SimError::Trap("load through non-pointer".into()))?;
                let (v, class) = self.mem.load(p, ty, team.id, hw)?;
                let cost = self.access_cost(team, hw, fid, inst_id, p, ty, class);
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, v);
                f.idx += 1;
                self.charge(team, hw, cost);
                self.stats.memory_accesses += 1;
            }
            InstKind::Store { ptr, val } => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let p = self
                    .eval(team, hw, f, ptr)?
                    .as_ptr()
                    .ok_or_else(|| SimError::Trap("store through non-pointer".into()))?;
                let v = self.eval(team, hw, f, val)?;
                let class = self.mem.store(p, v, team.id, hw)?;
                let cost = self.access_cost(team, hw, fid, inst_id, p, v.ty(), class);
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                f.idx += 1;
                self.charge(team, hw, cost);
                self.stats.memory_accesses += 1;
            }
            InstKind::Bin { op, ty, lhs, rhs } => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let a = self.eval(team, hw, f, lhs)?;
                let b = self.eval(team, hw, f, rhs)?;
                let v = exec_bin(op, ty, a, b)?;
                let cost = self.cost.bin_cost(op);
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, v);
                f.idx += 1;
                self.charge(team, hw, cost);
            }
            InstKind::Cmp { op, ty, lhs, rhs } => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let a = self.eval(team, hw, f, lhs)?;
                let b = self.eval(team, hw, f, rhs)?;
                let v = exec_cmp(op, ty, a, b)?;
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, v);
                f.idx += 1;
                self.charge(team, hw, self.cost.simple_op);
            }
            InstKind::Cast { op, val, to } => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let a = self.eval(team, hw, f, val)?;
                let v = exec_cast(op, a, to)?;
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, v);
                f.idx += 1;
                self.charge(team, hw, self.cost.simple_op);
            }
            InstKind::Gep {
                base,
                index,
                scale,
                offset,
            } => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let b = self
                    .eval(team, hw, f, base)?
                    .as_ptr()
                    .ok_or_else(|| SimError::Trap("gep on non-pointer".into()))?;
                let i = self
                    .eval(team, hw, f, index)?
                    .as_i64()
                    .ok_or_else(|| SimError::Trap("gep with non-integer index".into()))?;
                let addr = (b as i64 + i * scale as i64 + offset) as u64;
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, RtVal::Ptr(addr));
                f.idx += 1;
                self.charge(team, hw, self.cost.int_op);
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let c = self
                    .eval(team, hw, f, cond)?
                    .as_bool()
                    .ok_or_else(|| SimError::Trap("select on non-boolean".into()))?;
                let v = if c {
                    self.eval(team, hw, f, on_true)?
                } else {
                    self.eval(team, hw, f, on_false)?
                };
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, v);
                f.idx += 1;
                self.charge(team, hw, self.cost.simple_op);
            }
            InstKind::Phi { .. } => {
                // Phis are executed as part of block transition; hitting
                // one here means the transition logic placed us past
                // them already — skip defensively.
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                f.idx += 1;
            }
            InstKind::Call { callee, args, ret } => {
                self.exec_call(team, hw, inst_id, callee, &args, ret)?;
            }
        }
        Ok(())
    }

    fn step_terminator(&mut self, team: &mut Team, hw: u32) -> Result<(), SimError> {
        let frame = team.threads[hw as usize].frames.last().unwrap();
        let func = self.module.func(frame.func);
        let term = func.block(frame.block).term.clone();
        match term {
            Terminator::Br(target) => {
                self.transition(team, hw, target)?;
                self.charge(team, hw, self.cost.simple_op);
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let c = self
                    .eval(team, hw, f, cond)?
                    .as_bool()
                    .ok_or_else(|| SimError::Trap("branch on non-boolean".into()))?;
                self.transition(team, hw, if c { then_bb } else { else_bb })?;
                self.charge(team, hw, self.cost.simple_op);
            }
            Terminator::Ret(v) => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let val = match v {
                    Some(v) => Some(self.eval(team, hw, f, v)?),
                    None => None,
                };
                self.do_return(team, hw, val)?;
            }
            Terminator::Unreachable => {
                return Err(SimError::Trap(format!(
                    "reached `unreachable` in @{}",
                    func.name
                )));
            }
        }
        Ok(())
    }

    /// Moves to `target`, evaluating its phi nodes against the current
    /// block.
    fn transition(&mut self, team: &mut Team, hw: u32, target: BlockId) -> Result<(), SimError> {
        let frame = team.threads[hw as usize].frames.last().unwrap();
        let from = frame.block;
        let func = self.module.func(frame.func);
        // Evaluate all phis simultaneously.
        let mut phi_vals: Vec<(InstId, RtVal)> = Vec::new();
        for &i in &func.block(target).insts {
            if let InstKind::Phi { incoming, .. } = func.inst(i) {
                let Some((_, v)) = incoming.iter().find(|(p, _)| *p == from) else {
                    return Err(SimError::Trap(format!(
                        "phi {i} has no incoming for predecessor {from}"
                    )));
                };
                let frame = team.threads[hw as usize].frames.last().unwrap();
                phi_vals.push((i, self.eval(team, hw, frame, *v)?));
            } else {
                break;
            }
        }
        let nphis = phi_vals.len();
        let f = team.threads[hw as usize].frames.last_mut().unwrap();
        for (i, v) in phi_vals {
            Self::set_reg(f, i, v);
        }
        f.prev_block = Some(from);
        f.block = target;
        f.idx = nphis;
        Ok(())
    }

    fn do_return(&mut self, team: &mut Team, hw: u32, val: Option<RtVal>) -> Result<(), SimError> {
        let th = &mut team.threads[hw as usize];
        let frame = th.frames.pop().expect("return without frame");
        th.local_sp = frame.local_sp_save;
        if let (Some(ret_to), Some(parent)) = (frame.ret_to, th.frames.last_mut()) {
            if let Some(v) = val {
                Self::set_reg(parent, ret_to, v);
            }
        }
        if th.frames.is_empty() {
            th.status = Status::Done;
        }
        match frame.hook {
            None => {}
            Some(RetHook::Serialized) => {
                team.threads[hw as usize].ctx.pop();
            }
            Some(RetHook::Spmd) => {
                team.threads[hw as usize].ctx.pop();
                // Implicit barrier at the end of an SPMD parallel region.
                self.enter_barrier(team, hw, true)?;
            }
            Some(RetHook::Generic) => {
                // Main thread finished its share; wait for workers.
                team.threads[hw as usize].ctx.pop();
                if team.outstanding > 0 {
                    team.threads[hw as usize].status = Status::WaitJoin;
                } else {
                    self.finish_join(team);
                }
            }
        }
        Ok(())
    }

    fn finish_join(&mut self, team: &mut Team) {
        // Align the main thread with the slowest participant.
        let max = team.threads.iter().map(|t| t.cycles).max().unwrap_or(0);
        let main = &mut team.threads[0];
        main.cycles = main.cycles.max(max) + self.cost.barrier;
        if main.status == Status::WaitJoin {
            main.status = Status::Ready;
        }
        team.dispatch_n = 0;
    }

    fn enter_barrier(&mut self, team: &mut Team, hw: u32, simple: bool) -> Result<(), SimError> {
        // Determine the barrier group.
        let group = self.barrier_group(team, hw, simple);
        if group.len() <= 1 {
            self.charge(team, hw, self.cost.barrier);
            return Ok(());
        }
        team.threads[hw as usize].status = Status::AtBarrier(simple);
        // Release when every member has arrived.
        let all_arrived = group
            .iter()
            .all(|&t| matches!(team.threads[t as usize].status, Status::AtBarrier(_)));
        if all_arrived {
            let max = group
                .iter()
                .map(|&t| team.threads[t as usize].cycles)
                .max()
                .unwrap_or(0);
            for &t in &group {
                let th = &mut team.threads[t as usize];
                th.cycles = max + self.cost.barrier;
                th.status = Status::Ready;
            }
            self.stats.barriers += 1;
        }
        Ok(())
    }

    fn barrier_group(&self, team: &Team, hw: u32, simple: bool) -> Vec<u32> {
        if simple {
            return (0..self.team_size).collect();
        }
        let th = &team.threads[hw as usize];
        match th.ctx.last() {
            Some(&(_, n)) if n <= 1 => vec![hw],
            _ => {
                if team.mode == ExecMode::Generic && team.dispatch_n > 0 {
                    (0..team.dispatch_n as u32).collect()
                } else {
                    (0..self.team_size).collect()
                }
            }
        }
    }

    // One parameter per coalescing-model input; bundling them into a
    // struct would just rename the tuple.
    #[allow(clippy::too_many_arguments)]
    fn access_cost(
        &mut self,
        team: &mut Team,
        hw: u32,
        func: FuncId,
        site: InstId,
        addr: u64,
        ty: Type,
        class: AccessClass,
    ) -> u64 {
        match class {
            AccessClass::Local => self.cost.local_access,
            AccessClass::Shared | AccessClass::Global => {
                let coalesced = self.classify(team, hw, func, site, addr, ty);
                match (class, coalesced) {
                    (AccessClass::Shared, true) => self.cost.shared_access,
                    (AccessClass::Shared, false) => self.cost.shared_access * 8,
                    (_, true) => {
                        self.stats.coalesced_accesses += 1;
                        self.cost.global_coalesced
                    }
                    (_, false) => {
                        self.stats.uncoalesced_accesses += 1;
                        self.cost.global_uncoalesced
                    }
                }
            }
        }
    }

    /// Streaming coalescing detector: lanes of a warp executing the same
    /// static access site with consecutive addresses are coalesced.
    /// Classification is optimistic and sticks to "uncoalesced" once a
    /// stride mismatch is observed.
    fn classify(
        &mut self,
        team: &mut Team,
        hw: u32,
        func: FuncId,
        site: InstId,
        addr: u64,
        ty: Type,
    ) -> bool {
        if let Some(SiteClass::Uncoalesced) = self.site_class.get(&(func, site)) {
            return false;
        }
        // Only each thread's first visit to a site is compared: a
        // thread's later iterations stride by design and say nothing
        // about cross-lane coalescing.
        if !team.threads[hw as usize].sampled.insert(site) {
            return true;
        }
        // Sample the first dynamic occurrence of this site in each warp:
        // lanes with consecutive addresses are coalesced. The result is
        // sticky per site once a stride mismatch is observed.
        let warp = hw / self.cfg.warp_size;
        let lane = hw % self.cfg.warp_size;
        let key = (team.id * 4096 + warp, func, site, 0);
        match self.site_samples.get(&key) {
            Some(&(plane, paddr)) => {
                if plane != lane {
                    let lane_delta = lane as i64 - plane as i64;
                    let addr_delta = addr as i64 - paddr as i64;
                    let expected = lane_delta * ty.size() as i64;
                    // Accesses within a couple of cache lines of the
                    // ideal position still coalesce into few memory
                    // transactions on real hardware; only genuinely
                    // scattered patterns pay the full penalty.
                    const WINDOW: i64 = 128;
                    if addr_delta != 0 && (addr_delta - expected).abs() > WINDOW {
                        if std::env::var_os("OMP_GPUSIM_DEBUG_COALESCE").is_some() {
                            eprintln!(
                                "uncoalesced: @{} {site}: lane {plane}@{paddr:#x} vs lane {lane}@{addr:#x}",
                                self.module.func(func).name
                            );
                        }
                        self.site_class.insert((func, site), SiteClass::Uncoalesced);
                        return false;
                    }
                }
            }
            None => {
                self.site_samples.insert(key, (lane, addr));
            }
        }
        self.site_class
            .entry((func, site))
            .or_insert(SiteClass::Coalesced);
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_call(
        &mut self,
        team: &mut Team,
        hw: u32,
        inst_id: InstId,
        callee: Value,
        args: &[Value],
        ret: Type,
    ) -> Result<(), SimError> {
        // Resolve the callee.
        let (target, indirect): (FuncId, bool) = match callee {
            Value::Func(f) => (f, false),
            other => {
                let f = team.threads[hw as usize].frames.last().unwrap();
                let p = self
                    .eval(team, hw, f, other)?
                    .as_ptr()
                    .ok_or_else(|| SimError::Trap("indirect call on non-pointer".into()))?;
                match mem::decode(p) {
                    Some(mem::Space::Func { index }) => (FuncId(index), true),
                    _ => {
                        return Err(SimError::Trap(format!(
                            "indirect call through invalid target 0x{p:x}"
                        )))
                    }
                }
            }
        };
        let callee_fn = self.module.func(target);
        let name = callee_fn.name.clone();
        // Runtime functions.
        if let Some(rtl) = RtlFn::from_name(&name) {
            return self.exec_rtl(team, hw, inst_id, rtl, args, indirect);
        }
        // Math intrinsics.
        if omp_ir::omprtl::math_fn_signature(&name).is_some() {
            let f = team.threads[hw as usize].frames.last().unwrap();
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(self.eval(team, hw, f, *a)?);
            }
            let v = exec_math(&name, &vals)?;
            let f = team.threads[hw as usize].frames.last_mut().unwrap();
            Self::set_reg(f, inst_id, v);
            f.idx += 1;
            self.charge(team, hw, self.cost.math_fn);
            return Ok(());
        }
        if callee_fn.is_declaration() {
            return Err(SimError::Trap(format!(
                "call to unresolved external function @{name}"
            )));
        }
        // Ordinary call: push a frame.
        let f = team.threads[hw as usize].frames.last().unwrap();
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(team, hw, f, *a)?);
        }
        let _ = ret;
        let th = &mut team.threads[hw as usize];
        th.frames.last_mut().unwrap().idx += 1;
        let sp = th.local_sp;
        th.frames.push(Frame {
            func: target,
            block: callee_fn.entry(),
            prev_block: None,
            idx: 0,
            regs: Vec::new(),
            args: vals,
            local_sp_save: sp,
            ret_to: Some(inst_id),
            hook: None,
        });
        let mut cost = self.cost.call;
        if indirect {
            cost += self.cost.indirect_call_penalty;
            self.stats.indirect_calls += 1;
        }
        self.charge(team, hw, cost);
        Ok(())
    }

    fn exec_rtl(
        &mut self,
        team: &mut Team,
        hw: u32,
        inst_id: InstId,
        rtl: RtlFn,
        args: &[Value],
        _indirect: bool,
    ) -> Result<(), SimError> {
        *self
            .stats
            .rtl_calls
            .entry(rtl.name().to_string())
            .or_insert(0) += 1;
        let f = team.threads[hw as usize].frames.last().unwrap();
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(team, hw, f, *a)?);
        }
        let base_cost = self.cost.rtl_cost(rtl);
        // Helper to finish a non-blocking call.
        macro_rules! done {
            ($v:expr) => {{
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                if let Some(v) = $v {
                    Self::set_reg(f, inst_id, v);
                }
                f.idx += 1;
                self.charge(team, hw, base_cost);
                return Ok(());
            }};
        }
        match rtl {
            RtlFn::TargetInit => {
                let mode = vals[0].as_i64().unwrap_or(1);
                let spmd = mode == MODE_SPMD;
                team.mode = if spmd {
                    ExecMode::Spmd
                } else {
                    ExecMode::Generic
                };
                let th = &mut team.threads[hw as usize];
                let ret = if spmd {
                    th.ctx = vec![(hw as i32, self.team_size as i32)];
                    -1
                } else if hw == 0 {
                    th.ctx = vec![(0, 1)];
                    -1
                } else {
                    // Workers also sit at level 0 until dispatched; the
                    // base context makes nested regions inside a
                    // dispatched region (depth 2) serialize correctly.
                    th.ctx = vec![(0, 1)];
                    hw as i32
                };
                let cost = if spmd {
                    self.cost.target_init_spmd
                } else {
                    self.cost.target_init_generic
                };
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, RtVal::I32(ret));
                f.idx += 1;
                self.charge(team, hw, cost);
                Ok(())
            }
            RtlFn::TargetDeinit => {
                if team.mode == ExecMode::Generic && hw == 0 && !team.terminated {
                    team.terminated = true;
                    // Release all waiting workers with a null token.
                    let main_cycles = team.threads[0].cycles;
                    for t in 1..self.team_size {
                        let th = &mut team.threads[t as usize];
                        if th.status == Status::WaitWork {
                            th.resume = Some(RtVal::Ptr(0));
                            th.status = Status::Ready;
                            th.cycles = th.cycles.max(main_cycles);
                        }
                    }
                }
                done!(None::<RtVal>)
            }
            RtlFn::KernelParallel => {
                let th = &mut team.threads[hw as usize];
                if let Some(v) = th.resume.take() {
                    // Released: either a work token or null (terminate).
                    if v != RtVal::Ptr(0) {
                        th.ctx.push((hw as i32, team.dispatch_n));
                    }
                    let f = th.frames.last_mut().unwrap();
                    Self::set_reg(f, inst_id, v);
                    f.idx += 1;
                    self.charge(team, hw, self.cost.worker_wakeup);
                    return Ok(());
                }
                if let Some(pos) = team.assigned.iter().position(|&a| a == hw) {
                    team.assigned.remove(pos);
                    let tok = team.work_token;
                    let th = &mut team.threads[hw as usize];
                    th.ctx.push((hw as i32, team.dispatch_n));
                    let f = th.frames.last_mut().unwrap();
                    Self::set_reg(f, inst_id, tok);
                    f.idx += 1;
                    self.charge(team, hw, self.cost.worker_wakeup);
                    return Ok(());
                }
                if team.terminated {
                    done!(Some(RtVal::Ptr(0)));
                }
                th.status = Status::WaitWork;
                Ok(())
            }
            RtlFn::KernelEndParallel => {
                let th = &mut team.threads[hw as usize];
                th.ctx.pop();
                team.outstanding = team.outstanding.saturating_sub(1);
                if team.outstanding == 0 && team.threads[0].status == Status::WaitJoin {
                    self.finish_join(team);
                }
                done!(None::<RtVal>)
            }
            RtlFn::GetParallelArgs => {
                let a = team.work_args;
                done!(Some(RtVal::Ptr(a)))
            }
            RtlFn::Parallel51 => self.exec_parallel51(team, hw, inst_id, &vals),
            RtlFn::AllocShared => {
                let size = vals[0].as_i64().unwrap_or(0).max(0) as u64;
                let addr = self.mem.alloc_shared(team.id, size)?;
                self.stats.globalization_allocs += 1;
                self.yield_flag = true;
                done!(Some(RtVal::Ptr(addr)))
            }
            RtlFn::FreeShared => {
                let addr = vals[0].as_ptr().unwrap_or(0);
                let size = vals[1].as_i64().unwrap_or(0).max(0) as u64;
                if addr != 0 {
                    self.mem.free_shared(addr, size)?;
                }
                done!(None::<RtVal>)
            }
            RtlFn::DataSharingPushStack => {
                let size = vals[0].as_i64().unwrap_or(0).max(0) as u64;
                let addr = self.mem.alloc_shared(team.id, size)?;
                team.push_sizes.insert(addr, size);
                self.stats.globalization_allocs += 1;
                self.yield_flag = true;
                done!(Some(RtVal::Ptr(addr)))
            }
            RtlFn::DataSharingPopStack => {
                let addr = vals[0].as_ptr().unwrap_or(0);
                if let Some(size) = team.push_sizes.remove(&addr) {
                    self.mem.free_shared(addr, size)?;
                }
                done!(None::<RtVal>)
            }
            RtlFn::IsSpmdExecMode => {
                let v = team.mode == ExecMode::Spmd;
                done!(Some(RtVal::Bool(v)))
            }
            RtlFn::ParallelLevel => {
                let lvl = team.threads[hw as usize].ctx.len().saturating_sub(1) as i32;
                done!(Some(RtVal::I32(lvl)))
            }
            RtlFn::IsGenericMainThread => {
                let v = team.mode == ExecMode::Generic && hw == 0;
                done!(Some(RtVal::Bool(v)))
            }
            RtlFn::InActiveParallel => {
                let th = &team.threads[hw as usize];
                let v = th.ctx.len() >= 2 && th.ctx.last().is_some_and(|&(_, n)| n > 1);
                done!(Some(RtVal::Bool(v)))
            }
            RtlFn::Barrier => {
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                f.idx += 1;
                self.enter_barrier(team, hw, false)?;
                Ok(())
            }
            RtlFn::BarrierSimpleSpmd => {
                let f = team.threads[hw as usize].frames.last_mut().unwrap();
                f.idx += 1;
                self.enter_barrier(team, hw, true)?;
                Ok(())
            }
            RtlFn::StaticChunkLb | RtlFn::StaticChunkUb => {
                let n = vals[0].as_i64().unwrap_or(0).max(0);
                let (tid, nt) = *team.threads[hw as usize].ctx.last().unwrap_or(&(0, 1));
                let nt = nt.max(1) as i64;
                let tid = tid as i64;
                let chunk = (n + nt - 1) / nt;
                let lb = (tid * chunk).min(n);
                let ub = (lb + chunk).min(n);
                let v = if rtl == RtlFn::StaticChunkLb { lb } else { ub };
                done!(Some(RtVal::I64(v)))
            }
            RtlFn::DistributeChunkLb | RtlFn::DistributeChunkUb => {
                let n = vals[0].as_i64().unwrap_or(0).max(0);
                let teams = self.num_teams.max(1) as i64;
                let t = team.id as i64;
                let chunk = (n + teams - 1) / teams;
                let lb = (t * chunk).min(n);
                let ub = (lb + chunk).min(n);
                let v = if rtl == RtlFn::DistributeChunkLb {
                    lb
                } else {
                    ub
                };
                done!(Some(RtVal::I64(v)))
            }
            RtlFn::ThreadNum => {
                let (tid, _) = *team.threads[hw as usize].ctx.last().unwrap_or(&(0, 1));
                done!(Some(RtVal::I32(tid)))
            }
            RtlFn::NumThreads => {
                let (_, n) = *team.threads[hw as usize].ctx.last().unwrap_or(&(0, 1));
                done!(Some(RtVal::I32(n)))
            }
            RtlFn::TeamNum => done!(Some(RtVal::I32(team.id as i32))),
            RtlFn::NumTeams => done!(Some(RtVal::I32(self.num_teams as i32))),
            RtlFn::WarpSize => done!(Some(RtVal::I32(self.cfg.warp_size as i32))),
            RtlFn::WarpId => done!(Some(RtVal::I32((hw / self.cfg.warp_size) as i32))),
            RtlFn::LaneId => done!(Some(RtVal::I32((hw % self.cfg.warp_size) as i32))),
        }
    }

    fn exec_parallel51(
        &mut self,
        team: &mut Team,
        hw: u32,
        inst_id: InstId,
        vals: &[RtVal],
    ) -> Result<(), SimError> {
        let token = vals[0];
        let nthreads = vals[1].as_i64().unwrap_or(-1) as i32;
        let args_ptr = vals[2].as_ptr().unwrap_or(0);
        // Resolve the region function from the token: either a function
        // address, or a small integer id installed by the custom
        // state-machine rewrite.
        let region = match token.as_ptr().and_then(mem::decode) {
            Some(mem::Space::Func { index }) => FuncId(index),
            _ => match token
                .as_ptr()
                .and_then(|p| self.module.region_for_id(p as i64))
            {
                Some(f) => f,
                None => {
                    return Err(SimError::Trap(
                        "parallel_51 with unresolvable region token".into(),
                    ))
                }
            },
        };
        let region_fn = self.module.func(region);
        if region_fn.is_declaration() {
            return Err(SimError::Trap("parallel region is a declaration".into()));
        }
        let entry = region_fn.entry();
        let depth = team.threads[hw as usize].ctx.len();
        let push_region_frame = |th: &mut Thread, hook: RetHook, args: Vec<RtVal>| {
            th.frames.last_mut().unwrap().idx += 1;
            let sp = th.local_sp;
            th.frames.push(Frame {
                func: region,
                block: entry,
                prev_block: None,
                idx: 0,
                regs: Vec::new(),
                args,
                local_sp_save: sp,
                ret_to: Some(inst_id),
                hook: Some(hook),
            });
        };
        if depth >= 2 {
            // Nested parallelism is serialized onto the caller.
            let th = &mut team.threads[hw as usize];
            th.ctx.push((0, 1));
            push_region_frame(th, RetHook::Serialized, vec![RtVal::Ptr(args_ptr)]);
            self.charge(team, hw, self.cost.call);
            return Ok(());
        }
        match team.mode {
            ExecMode::Spmd => {
                let th = &mut team.threads[hw as usize];
                let (tid, n) = *th.ctx.last().unwrap_or(&(hw as i32, self.team_size as i32));
                th.ctx.push((tid, n));
                push_region_frame(th, RetHook::Spmd, vec![RtVal::Ptr(args_ptr)]);
                self.charge(team, hw, self.cost.parallel_dispatch_spmd);
                Ok(())
            }
            ExecMode::Generic => {
                if hw != 0 {
                    return Err(SimError::Trap(
                        "generic-mode parallel dispatch from a worker".into(),
                    ));
                }
                let n = if nthreads <= 0 {
                    self.team_size as i32
                } else {
                    nthreads.min(self.team_size as i32)
                };
                team.work_token = token;
                team.work_args = args_ptr;
                team.dispatch_n = n;
                team.outstanding = (n - 1).max(0) as u32;
                team.assigned.clear();
                let main_cycles = team.threads[0].cycles + self.cost.parallel_dispatch_generic;
                for w in 1..n as u32 {
                    let th = &mut team.threads[w as usize];
                    if th.status == Status::WaitWork {
                        th.resume = Some(token);
                        th.status = Status::Ready;
                        th.cycles = th.cycles.max(main_cycles);
                    } else {
                        team.assigned.push(w);
                    }
                }
                let th = &mut team.threads[hw as usize];
                th.ctx.push((0, n));
                push_region_frame(th, RetHook::Generic, vec![RtVal::Ptr(args_ptr)]);
                self.charge(team, hw, self.cost.parallel_dispatch_generic);
                self.stats.parallel_regions += 1;
                Ok(())
            }
        }
    }
}

// ---- scalar operation semantics ----

fn exec_bin(op: BinOp, ty: Type, a: RtVal, b: RtVal) -> Result<RtVal, SimError> {
    use omp_ir::fold;
    if op.is_float() {
        let (x, y) = (
            a.as_f64()
                .ok_or_else(|| SimError::Trap("float op on non-float".into()))?,
            b.as_f64()
                .ok_or_else(|| SimError::Trap("float op on non-float".into()))?,
        );
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FRem => x % y,
            _ => unreachable!(),
        };
        return Ok(match ty {
            Type::F32 => RtVal::F32(r as f32),
            _ => RtVal::F64(r),
        });
    }
    // Pointer arithmetic via integer ops on raw addresses is allowed.
    let x = a
        .as_i64()
        .ok_or_else(|| SimError::Trap("int op on non-int".into()))?;
    let y = b
        .as_i64()
        .ok_or_else(|| SimError::Trap("int op on non-int".into()))?;
    match fold::fold_bin(
        op,
        if ty == Type::Ptr { Type::I64 } else { ty },
        Value::ConstInt(x, if ty == Type::Ptr { Type::I64 } else { ty }),
        Value::ConstInt(y, if ty == Type::Ptr { Type::I64 } else { ty }),
    ) {
        Some(Value::ConstInt(v, t)) => Ok(match t {
            Type::I1 => RtVal::Bool(v != 0),
            Type::I32 => RtVal::I32(v as i32),
            _ => {
                if ty == Type::Ptr {
                    RtVal::Ptr(v as u64)
                } else {
                    RtVal::I64(v)
                }
            }
        }),
        _ => Err(SimError::Trap(format!(
            "undefined integer operation {op:?} ({x}, {y})"
        ))),
    }
}

fn exec_cmp(op: CmpOp, ty: Type, a: RtVal, b: RtVal) -> Result<RtVal, SimError> {
    use omp_ir::fold;
    if op.is_float() {
        let (x, y) = (
            a.as_f64()
                .ok_or_else(|| SimError::Trap("float cmp on non-float".into()))?,
            b.as_f64()
                .ok_or_else(|| SimError::Trap("float cmp on non-float".into()))?,
        );
        let r = match op {
            CmpOp::FOeq => x == y,
            CmpOp::FOne => x != y,
            CmpOp::FOlt => x < y,
            CmpOp::FOle => x <= y,
            CmpOp::FOgt => x > y,
            CmpOp::FOge => x >= y,
            _ => unreachable!(),
        };
        return Ok(RtVal::Bool(r));
    }
    let x = a
        .as_i64()
        .ok_or_else(|| SimError::Trap("int cmp on non-int".into()))?;
    let y = b
        .as_i64()
        .ok_or_else(|| SimError::Trap("int cmp on non-int".into()))?;
    let t = if ty == Type::Ptr { Type::I64 } else { ty };
    match fold::fold_cmp(op, t, Value::ConstInt(x, t), Value::ConstInt(y, t)) {
        Some(Value::ConstInt(v, _)) => Ok(RtVal::Bool(v != 0)),
        _ => Err(SimError::Trap("undefined comparison".into())),
    }
}

fn exec_cast(op: CastOp, a: RtVal, to: Type) -> Result<RtVal, SimError> {
    let out = match op {
        CastOp::ZExt => {
            let v = match a {
                RtVal::Bool(b) => b as u64,
                RtVal::I32(v) => v as u32 as u64,
                RtVal::I64(v) => v as u64,
                _ => return Err(SimError::Trap("zext on non-int".into())),
            };
            int_to(to, v as i64)
        }
        CastOp::SExt => int_to(
            to,
            a.as_i64()
                .ok_or_else(|| SimError::Trap("sext on non-int".into()))?,
        ),
        CastOp::Trunc => int_to(
            to,
            a.as_i64()
                .ok_or_else(|| SimError::Trap("trunc on non-int".into()))?,
        ),
        CastOp::SiToFp => {
            let v = a
                .as_i64()
                .ok_or_else(|| SimError::Trap("sitofp on non-int".into()))?;
            match to {
                Type::F32 => RtVal::F32(v as f32),
                _ => RtVal::F64(v as f64),
            }
        }
        CastOp::FpToSi => {
            let v = a
                .as_f64()
                .ok_or_else(|| SimError::Trap("fptosi on non-float".into()))?;
            int_to(to, v as i64)
        }
        CastOp::FpExt => RtVal::F64(
            a.as_f64()
                .ok_or_else(|| SimError::Trap("fpext on non-float".into()))?,
        ),
        CastOp::FpTrunc => RtVal::F32(
            a.as_f64()
                .ok_or_else(|| SimError::Trap("fptrunc on non-float".into()))? as f32,
        ),
        CastOp::PtrToInt => int_to(
            to,
            a.as_ptr()
                .ok_or_else(|| SimError::Trap("ptrtoint on non-pointer".into()))?
                as i64,
        ),
        CastOp::IntToPtr => RtVal::Ptr(
            a.as_i64()
                .ok_or_else(|| SimError::Trap("inttoptr on non-int".into()))? as u64,
        ),
    };
    Ok(out)
}

fn int_to(ty: Type, v: i64) -> RtVal {
    match ty {
        Type::I1 => RtVal::Bool(v & 1 != 0),
        Type::I32 => RtVal::I32(v as i32),
        _ => RtVal::I64(v),
    }
}

fn exec_math(name: &str, args: &[RtVal]) -> Result<RtVal, SimError> {
    let f32out = name.ends_with('f');
    let x = args
        .first()
        .and_then(|v| v.as_f64())
        .ok_or_else(|| SimError::Trap(format!("bad argument to {name}")))?;
    let y = args.get(1).and_then(|v| v.as_f64()).unwrap_or(0.0);
    let r = match name.trim_end_matches('f') {
        "sqrt" => x.sqrt(),
        "exp" => x.exp(),
        "log" => x.ln(),
        "sin" => x.sin(),
        "cos" => x.cos(),
        "fabs" => x.abs(),
        "pow" => x.powf(y),
        "fmin" => x.min(y),
        "fmax" => x.max(y),
        "floor" => x.floor(),
        other => return Err(SimError::Trap(format!("unknown math fn {other}"))),
    };
    Ok(if f32out {
        RtVal::F32(r as f32)
    } else {
        RtVal::F64(r)
    })
}
