//! The kernel interpreter: executes IR for every thread of one team,
//! implementing the OpenMP device runtime semantics and charging the
//! cost model.
//!
//! Threads are cooperatively scheduled within a team: a thread runs
//! until it blocks (barrier, worker wait, end-of-parallel join) or
//! finishes. Cross-thread interactions — parallel-region dispatch,
//! barriers, termination — release blocked threads and align their
//! cycle counters, which is how synchronization shows up in kernel
//! time.
//!
//! Execution is driven by the precompiled [`crate::plan::ExecPlan`]:
//! instruction kinds and terminators are *borrowed* from the module
//! (never cloned per step), call targets are pre-resolved enums instead
//! of name strings, frames are allocated at their final register-file
//! size, and the coalescing-model state lives in dense `Vec`s indexed
//! by a plan-wide access-site number.
//!
//! One [`TeamExec`] runs one team to completion over a private
//! [`TeamMemView`]; teams are independent, so the launch layer
//! (`launch.rs`) may run several on parallel host threads and merge the
//! resulting [`TeamOutcome`]s in team-id order.

use crate::compile::{CTerm, CompiledBlock, Edge, Slot, Step};
use crate::config::{DeviceConfig, Tier};
use crate::cost::CostModel;
use crate::error::{Provenance, ThreadPos};
use crate::mem::{self, AccessClass, FastMap, TeamMemDelta, TeamMemView};
use crate::plan::{CallTarget, ExecPlan, MathKind, NUM_RTL_FNS};
use crate::profile::{CycleClass, ProfileMode, TeamProfile, TeamProfileState};
use crate::sanitize::{Finding, SanitizeMode, SiteRef, TeamSanState};
use crate::stats::KernelStats;
use crate::value::RtVal;
use omp_ir::omprtl::{ALL_RTL_FNS, MODE_SPMD};
use omp_ir::{
    AddrSpace, BinOp, BlockId, CastOp, CmpOp, ExecMode, FuncId, InstId, InstKind, Module, RtlFn,
    Terminator, Type, Value,
};
use std::time::Instant;

pub use crate::error::SimError;

/// Why a thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    /// Worker blocked in `__kmpc_kernel_parallel`.
    WaitWork,
    /// Main thread waiting for workers to finish the parallel region.
    WaitJoin,
    /// Waiting at a barrier (`true` = team-wide "simple" barrier).
    AtBarrier(bool),
    Done,
}

impl Status {
    /// Stable diagnostic name for thread-position reports.
    fn name(self) -> &'static str {
        match self {
            Status::Ready => "ready",
            Status::WaitWork => "wait-work",
            Status::WaitJoin => "wait-join",
            Status::AtBarrier(_) => "at-barrier",
            Status::Done => "done",
        }
    }
}

struct Frame {
    func: FuncId,
    block: BlockId,
    prev_block: Option<BlockId>,
    idx: usize,
    /// Pre-sized to the function's register count at frame push.
    regs: Vec<Option<RtVal>>,
    args: Vec<RtVal>,
    local_sp_save: u64,
    /// The call instruction in the parent frame to receive the result.
    ret_to: Option<InstId>,
    hook: Option<RetHook>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetHook {
    /// Main thread finished its share of a generic parallel region.
    Generic,
    /// SPMD thread finished a parallel region: implicit team barrier.
    Spmd,
    /// Serialized nested region: pop context only.
    Serialized,
}

struct Thread {
    hw: u32,
    status: Status,
    frames: Vec<Frame>,
    /// Retired frames recycled by later calls, so a call in steady
    /// state allocates nothing: the register and argument vectors of
    /// popped frames are reused at the next push.
    pool: Vec<Frame>,
    cycles: u64,
    insts: u64,
    /// (omp thread id, team size) context stack.
    ctx: Vec<(i32, i32)>,
    local_sp: u64,
    /// Result delivered by a release (consumed by the blocked call).
    resume: Option<RtVal>,
    /// Bitset over plan-wide access sites this thread has already
    /// contributed a coalescing sample for (only the first visit is
    /// compared).
    sampled: Vec<u64>,
}

impl Thread {
    fn new(hw: u32, sample_words: usize) -> Thread {
        Thread {
            hw,
            status: Status::Ready,
            frames: Vec::new(),
            pool: Vec::new(),
            cycles: 0,
            insts: 0,
            ctx: Vec::new(),
            local_sp: 0,
            resume: None,
            sampled: vec![0; sample_words],
        }
    }
}

/// Builds a call frame, recycling vectors from `pool` when possible.
/// `args` is left empty for the caller to fill.
#[allow(clippy::too_many_arguments)]
fn make_frame(
    pool: &mut Vec<Frame>,
    func: FuncId,
    block: BlockId,
    num_regs: usize,
    local_sp_save: u64,
    ret_to: Option<InstId>,
    hook: Option<RetHook>,
) -> Frame {
    let (regs, args) = match pool.pop() {
        Some(mut f) => {
            f.regs.clear();
            f.args.clear();
            (f.regs, f.args)
        }
        None => (Vec::new(), Vec::new()),
    };
    let mut frame = Frame {
        func,
        block,
        prev_block: None,
        idx: 0,
        regs,
        args,
        local_sp_save,
        ret_to,
        hook,
    };
    frame.regs.resize(num_regs, None);
    frame
}

const SITE_UNKNOWN: u8 = 0;
const SITE_COALESCED: u8 = 1;
const SITE_UNCOALESCED: u8 = 2;

/// Sentinel lane for an empty coalescing sample slot.
const NO_SAMPLE: u32 = u32::MAX;

/// Per-team runtime state.
struct Team {
    id: u32,
    mode: ExecMode,
    threads: Vec<Thread>,
    /// Published parallel-region token and args.
    work_token: RtVal,
    work_args: u64,
    /// Hardware tids assigned work but not yet picked up.
    assigned: Vec<u32>,
    /// Team size of the current generic dispatch.
    dispatch_n: i32,
    /// Workers that have not called `__kmpc_kernel_end_parallel` yet.
    outstanding: u32,
    terminated: bool,
    /// Sizes of legacy push-stack allocations (for pop).
    push_sizes: FastMap<u64>,
}

/// Statistics gathered while one team runs; merged into the launch's
/// [`KernelStats`] in team-id order. Runtime-call counts are a dense
/// array indexed by `RtlFn` discriminant — no per-call string keys.
#[derive(Debug, Clone, Default)]
pub(crate) struct TeamStats {
    pub instructions: u64,
    pub rtl_calls: [u64; NUM_RTL_FNS],
    pub globalization_allocs: u64,
    pub barriers: u64,
    pub indirect_calls: u64,
    pub parallel_regions: u64,
    pub memory_accesses: u64,
    pub coalesced_accesses: u64,
    pub uncoalesced_accesses: u64,
    /// Tier-1 superinstruction hit counters: steps executed per fused
    /// kind versus plain decoded steps. Tier-dependent by construction
    /// (the interpreter executes no compiled steps at all), so they are
    /// excluded from cross-tier differential comparisons.
    pub fused_gep_load: u64,
    pub fused_load_bin_store: u64,
    pub fused_cmp_br: u64,
    pub plain_steps: u64,
}

impl TeamStats {
    /// Folds this team's counters into the launch statistics.
    pub fn merge_into(&self, s: &mut KernelStats) {
        s.instructions += self.instructions;
        s.globalization_allocs += self.globalization_allocs;
        s.barriers += self.barriers;
        s.indirect_calls += self.indirect_calls;
        s.parallel_regions += self.parallel_regions;
        s.memory_accesses += self.memory_accesses;
        s.coalesced_accesses += self.coalesced_accesses;
        s.uncoalesced_accesses += self.uncoalesced_accesses;
        s.fused_gep_load += self.fused_gep_load;
        s.fused_load_bin_store += self.fused_load_bin_store;
        s.fused_cmp_br += self.fused_cmp_br;
        s.plain_steps += self.plain_steps;
        for (i, f) in ALL_RTL_FNS.iter().enumerate() {
            if self.rtl_calls[i] != 0 {
                *s.rtl_calls.entry(f.name().to_string()).or_insert(0) += self.rtl_calls[i];
            }
        }
    }
}

/// Everything one finished team hands back to the launch layer.
pub(crate) struct TeamOutcome {
    pub cycles: u64,
    pub stats: TeamStats,
    pub delta: TeamMemDelta,
    /// Present iff the device config enables profiling.
    pub profile: Option<TeamProfile>,
    /// Sanitizer findings (empty unless the config enables sanitizing).
    pub findings: Vec<Finding>,
}

/// The interpreter for one team of a kernel launch. Owns the team's
/// memory view and all mutable state, sharing only read-only module,
/// plan, and configuration — which is what makes running several
/// `TeamExec`s on parallel host threads sound.
pub(crate) struct TeamExec<'a, 'm> {
    module: &'m Module,
    plan: &'a ExecPlan<'m>,
    cfg: &'a DeviceConfig,
    cost: &'a CostModel,
    /// Dense global placement table indexed by `GlobalId`.
    globals: &'a [(AddrSpace, u64)],
    mem: TeamMemView<'a>,
    num_teams: u32,
    team_size: u32,
    team: Team,
    stats: TeamStats,
    /// Dense per-site classification (`SITE_*`), plan-wide index.
    site_class: Vec<u8>,
    /// Per-(warp, site) first sample: `(lane, addr)`.
    site_samples: Vec<(u32, u64)>,
    total_sites: usize,
    /// Set by allocation runtime calls: the current thread yields so
    /// that per-thread allocations overlap in time, modelling the
    /// concurrent footprint of a real launch.
    yield_flag: bool,
    debug_coalesce: bool,
    /// Reusable scratch for evaluated call arguments (taken with
    /// `mem::take` around uses, so steady-state calls don't allocate).
    scratch_args: Vec<RtVal>,
    /// Reusable scratch for simultaneous phi evaluation.
    scratch_phis: Vec<(InstId, RtVal)>,
    /// Cycle-attribution collector; `None` when profiling is off, so
    /// the hot path pays one branch per charge.
    prof: Option<Box<TeamProfileState>>,
    /// Sanitizer shadow state; `None` when sanitizing is off, so the
    /// hot path pays one branch per access.
    san: Option<Box<TeamSanState>>,
    /// Injected trap threshold (`u64::MAX` = disabled), folded into the
    /// per-instruction budget compare.
    fault_trap_at: u64,
    /// Whether this launch executes tier-1 compiled block bodies
    /// ([`DeviceConfig::effective_tier`]): profiling, sanitizing, and
    /// fault injection all force the interpreter.
    tier1: bool,
    /// Wall-clock deadline for this team (checked every 16 K
    /// instructions; `None` = no watchdog).
    deadline: Option<Instant>,
    watchdog_millis: u64,
}

impl<'a, 'm> TeamExec<'a, 'm> {
    /// Creates the executor for one team. The caller must have checked
    /// that `kernel` is a defined function of the plan.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        module: &'m Module,
        plan: &'a ExecPlan<'m>,
        cfg: &'a DeviceConfig,
        cost: &'a CostModel,
        globals: &'a [(AddrSpace, u64)],
        mem: TeamMemView<'a>,
        num_teams: u32,
        team_size: u32,
        team_id: u32,
        mode: ExecMode,
        kernel: FuncId,
        args: &[RtVal],
    ) -> TeamExec<'a, 'm> {
        let kplan = plan.func(kernel).expect("launch checked kernel is defined");
        let total_sites = plan.total_sites() as usize;
        let sample_words = total_sites.div_ceil(64);
        let warps = (team_size.div_ceil(cfg.warp_size.max(1))).max(1) as usize;
        let mut team = Team {
            id: team_id,
            mode,
            threads: (0..team_size)
                .map(|hw| Thread::new(hw, sample_words))
                .collect(),
            work_token: RtVal::Ptr(0),
            work_args: 0,
            assigned: Vec::new(),
            dispatch_n: 0,
            outstanding: 0,
            terminated: false,
            push_sizes: FastMap::default(),
        };
        for t in &mut team.threads {
            t.frames.push(Frame {
                func: kernel,
                block: kplan.entry,
                prev_block: None,
                idx: 0,
                regs: vec![None; kplan.num_regs],
                args: args.to_vec(),
                local_sp_save: 0,
                ret_to: None,
                hook: None,
            });
        }
        let prof = (cfg.profile == ProfileMode::On).then(|| {
            let mut p = Box::new(TeamProfileState::new(
                module.num_functions(),
                team_size as usize,
            ));
            // Every thread starts with the kernel frame on its stack.
            for hw in 0..team_size {
                p.on_push(hw, kernel, 0);
            }
            p
        });
        let san = (cfg.sanitize == SanitizeMode::On)
            .then(|| Box::new(TeamSanState::new(team_id, team_size as usize)));
        let watchdog_millis = cfg.watchdog.map(|d| d.as_millis() as u64).unwrap_or(0);
        TeamExec {
            module,
            plan,
            cfg,
            cost,
            globals,
            mem,
            num_teams,
            team_size,
            team,
            stats: TeamStats::default(),
            site_class: vec![SITE_UNKNOWN; total_sites],
            site_samples: vec![(NO_SAMPLE, 0); warps * total_sites],
            total_sites,
            yield_flag: false,
            debug_coalesce: std::env::var_os("OMP_GPUSIM_DEBUG_COALESCE").is_some(),
            scratch_args: Vec::new(),
            scratch_phis: Vec::new(),
            prof,
            san,
            fault_trap_at: cfg.fault.trap_at_inst.unwrap_or(u64::MAX),
            tier1: cfg.effective_tier() == Tier::Compiled,
            deadline: cfg.watchdog.map(|d| Instant::now() + d),
            watchdog_millis,
        }
    }

    /// Runs the team to completion; returns its cycle count, statistics
    /// and memory effects.
    pub fn run(mut self) -> Result<TeamOutcome, SimError> {
        // Round-robin scheduling until every thread is done.
        loop {
            let mut progressed = false;
            for hw in 0..self.team_size {
                if self.team.threads[hw as usize].status != Status::Ready {
                    continue;
                }
                progressed = true;
                if let Err(e) = self.run_thread(hw) {
                    return Err(self.annotate(e, hw));
                }
            }
            if self.team.threads.iter().all(|t| t.status == Status::Done) {
                break;
            }
            if !progressed {
                // Threads stuck at a barrier while their peers exited
                // (or never arrived) are a barrier-divergence finding
                // on top of the deadlock itself.
                if self
                    .team
                    .threads
                    .iter()
                    .any(|t| matches!(t.status, Status::AtBarrier(_)))
                {
                    if let Some(s) = self.san.as_deref_mut() {
                        s.on_barrier_deadlock();
                    }
                }
                let threads = self.thread_positions();
                let findings = self.take_findings();
                return Err(SimError::deadlock()
                    .with_threads(threads)
                    .with_findings(findings));
            }
        }
        let cycles = self
            .team
            .threads
            .iter()
            .map(|t| t.cycles)
            .max()
            .unwrap_or(0);
        self.stats.instructions += self.team.threads.iter().map(|t| t.insts).sum::<u64>();
        let total_thread_cycles = self.team.threads.iter().map(|t| t.cycles).sum::<u64>();
        let profile = self.prof.take().map(|p| p.finish(total_thread_cycles));
        let findings = self.take_findings();
        Ok(TeamOutcome {
            cycles,
            stats: self.stats,
            delta: self.mem.finish(),
            profile,
            findings,
        })
    }

    /// Drains the sanitizer state into reportable findings.
    fn take_findings(&mut self) -> Vec<Finding> {
        self.san
            .take()
            .map(|s| s.finish(self.module))
            .unwrap_or_default()
    }

    /// The position of every thread of the team, for deadlock/timeout
    /// diagnostics.
    fn thread_positions(&self) -> Vec<ThreadPos> {
        self.team
            .threads
            .iter()
            .map(|t| {
                let (function, block, inst) = match t.frames.last() {
                    Some(f) => (
                        self.module.func(f.func).name.clone(),
                        f.block.index() as u32,
                        f.idx as u32,
                    ),
                    None => (String::new(), 0, 0),
                };
                ThreadPos {
                    thread: t.hw,
                    state: t.status.name().to_string(),
                    function,
                    block,
                    inst,
                }
            })
            .collect()
    }

    /// Attaches provenance (failing thread's top frame) and any
    /// sanitizer findings to an error bubbling out of `run_thread`.
    fn annotate(&mut self, e: SimError, hw: u32) -> SimError {
        let epoch = self.san.as_deref().map(|s| s.epoch_of(hw)).unwrap_or(0);
        let th = &self.team.threads[hw as usize];
        let p = th.frames.last().map(|f| Provenance {
            function: self.module.func(f.func).name.clone(),
            block: f.block.index() as u32,
            inst: f.idx as u32,
            team: self.team.id,
            thread: hw,
            epoch,
        });
        let findings = self.take_findings();
        let mut e = e.with_findings(findings);
        if let Some(p) = p {
            e = e.with_provenance(p);
        }
        if matches!(e.kind, crate::error::SimErrorKind::Timeout { .. }) {
            e = e.with_threads(self.thread_positions());
        }
        e
    }

    /// Picks the error for a tripped instruction-count stop: either the
    /// injected trap of the fault plan or the runaway budget.
    fn budget_stop(&self, hw: u32) -> SimError {
        if self.team.threads[hw as usize].insts >= self.fault_trap_at {
            SimError::fault_injected(format!(
                "trap at dynamic instruction {}",
                self.fault_trap_at
            ))
        } else {
            SimError::runaway(self.cfg.max_insts_per_thread)
        }
    }

    /// Runs thread `hw` until it blocks, yields, or finishes.
    ///
    /// The hot loop is organized as *block runs*: the outer loop
    /// resolves the running frame's function and block plan once, and
    /// the inner loop dispatches straight-line instructions off the
    /// resolved code slice without re-resolving anything. Calls,
    /// terminators and status changes break back out to re-resolve.
    fn run_thread(&mut self, hw: u32) -> Result<(), SimError> {
        let plan = self.plan;
        let team_id = self.team.id;
        let max_insts = self.cfg.max_insts_per_thread;
        // Fold the injected-trap threshold into the budget compare so
        // the hot loop pays a single bound check for both.
        let stop_at = max_insts.saturating_add(1).min(self.fault_trap_at);
        'resolve: while self.team.threads[hw as usize].status == Status::Ready {
            let th = &mut self.team.threads[hw as usize];
            let Some(frame) = th.frames.last() else {
                th.insts += 1;
                if th.insts >= stop_at {
                    return Err(self.budget_stop(hw));
                }
                th.status = Status::Done;
                continue 'resolve;
            };
            let fid = frame.func;
            let at_entry = frame.idx == 0;
            let insts_now = th.insts;
            let fp = plan.func(fid).expect("frame in undefined function");
            let bp = fp.block(frame.block);
            // Tier 1: a block entered at its head runs through its
            // compiled body when the remaining instruction budget
            // covers the whole run. The budget pre-check lives *here*
            // so a budget deopt falls through to the per-instruction
            // interpreter below instead of re-entering the compiled
            // body forever; mid-block resumption (returning calls)
            // always interprets.
            if self.tier1 && at_entry {
                if let Some(cb) = bp.compiled.as_ref() {
                    if insts_now.saturating_add(cb.n_insts) < stop_at {
                        self.run_compiled(hw, fid, fp, cb, stop_at)?;
                        continue 'resolve;
                    }
                }
            }
            let code = bp.code.as_slice();
            loop {
                // One mutable borrow of the thread per instruction; the
                // memory arms re-borrow only around `access_cost`
                // (which needs the whole executor).
                let th = &mut self.team.threads[hw as usize];
                th.insts += 1;
                if th.insts >= stop_at {
                    return Err(self.budget_stop(hw));
                }
                if th.insts & 0x3FFF == 0 {
                    if let Some(deadline) = self.deadline {
                        if Instant::now() >= deadline {
                            return Err(SimError::timeout(self.watchdog_millis));
                        }
                    }
                }
                let frame = th.frames.last().unwrap();
                if frame.idx >= code.len() {
                    self.step_terminator(hw)?;
                    continue 'resolve;
                }
                let (inst_id, kind) = code[frame.idx];
                match kind {
                    InstKind::Alloca { size, .. } => {
                        let size = *size;
                        let addr = mem::local_addr(team_id, hw, th.local_sp);
                        th.local_sp += size.max(1).div_ceil(8) * 8;
                        if th.local_sp > self.cfg.local_mem_per_thread {
                            return Err(SimError::trap("thread-local stack overflow"));
                        }
                        let f = th.frames.last_mut().unwrap();
                        Self::set_reg(f, inst_id, RtVal::Ptr(addr));
                        f.idx += 1;
                        let c = self.cost.simple_op;
                        th.cycles += c;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_charge(Some(fid), CycleClass::Alloca, c);
                        }
                    }
                    InstKind::Load { ptr, ty } => {
                        let (ptr, ty) = (*ptr, *ty);
                        let f = th.frames.last().unwrap();
                        let blk = f.block.index() as u32;
                        let p = Self::eval(self.globals, team_id, f, ptr)?
                            .as_ptr()
                            .ok_or_else(|| SimError::trap("load through non-pointer"))?;
                        let (v, class) = self.mem.load(p, ty, hw)?;
                        if let Some(s) = self.san.as_deref_mut() {
                            let site = SiteRef {
                                func: fid,
                                block: blk,
                                inst: inst_id.0,
                            };
                            s.on_access(hw, p, ty.size(), false, class, site);
                        }
                        let site = fp.site_base + inst_id.0;
                        let cost = self.access_cost(hw, fid, site, p, ty, class);
                        let th = &mut self.team.threads[hw as usize];
                        let f = th.frames.last_mut().unwrap();
                        Self::set_reg(f, inst_id, v);
                        f.idx += 1;
                        th.cycles += cost;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_charge(Some(fid), CycleClass::Load, cost);
                        }
                        self.stats.memory_accesses += 1;
                    }
                    InstKind::Store { ptr, val } => {
                        let (ptr, val) = (*ptr, *val);
                        let f = th.frames.last().unwrap();
                        let blk = f.block.index() as u32;
                        let p = Self::eval(self.globals, team_id, f, ptr)?
                            .as_ptr()
                            .ok_or_else(|| SimError::trap("store through non-pointer"))?;
                        let v = Self::eval(self.globals, team_id, f, val)?;
                        let class = self.mem.store(p, v, hw)?;
                        if let Some(s) = self.san.as_deref_mut() {
                            let site = SiteRef {
                                func: fid,
                                block: blk,
                                inst: inst_id.0,
                            };
                            s.on_access(hw, p, v.ty().size(), true, class, site);
                        }
                        let site = fp.site_base + inst_id.0;
                        let cost = self.access_cost(hw, fid, site, p, v.ty(), class);
                        let th = &mut self.team.threads[hw as usize];
                        let f = th.frames.last_mut().unwrap();
                        f.idx += 1;
                        th.cycles += cost;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_charge(Some(fid), CycleClass::Store, cost);
                        }
                        self.stats.memory_accesses += 1;
                    }
                    InstKind::Bin { op, ty, lhs, rhs } => {
                        let (op, ty, lhs, rhs) = (*op, *ty, *lhs, *rhs);
                        let f = th.frames.last().unwrap();
                        let a = Self::eval(self.globals, team_id, f, lhs)?;
                        let b = Self::eval(self.globals, team_id, f, rhs)?;
                        let v = exec_bin(op, ty, a, b)?;
                        let f = th.frames.last_mut().unwrap();
                        Self::set_reg(f, inst_id, v);
                        f.idx += 1;
                        let c = self.cost.bin_cost(op);
                        th.cycles += c;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_charge(Some(fid), CycleClass::Alu, c);
                        }
                    }
                    InstKind::Cmp { op, ty, lhs, rhs } => {
                        let (op, ty, lhs, rhs) = (*op, *ty, *lhs, *rhs);
                        let f = th.frames.last().unwrap();
                        let a = Self::eval(self.globals, team_id, f, lhs)?;
                        let b = Self::eval(self.globals, team_id, f, rhs)?;
                        let v = exec_cmp(op, ty, a, b)?;
                        let f = th.frames.last_mut().unwrap();
                        Self::set_reg(f, inst_id, v);
                        f.idx += 1;
                        let c = self.cost.simple_op;
                        th.cycles += c;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_charge(Some(fid), CycleClass::Alu, c);
                        }
                    }
                    InstKind::Cast { op, val, to } => {
                        let (op, val, to) = (*op, *val, *to);
                        let f = th.frames.last().unwrap();
                        let a = Self::eval(self.globals, team_id, f, val)?;
                        let v = exec_cast(op, a, to)?;
                        let f = th.frames.last_mut().unwrap();
                        Self::set_reg(f, inst_id, v);
                        f.idx += 1;
                        let c = match op {
                            omp_ir::CastOp::IntToPtr | omp_ir::CastOp::PtrToInt => {
                                self.cost.ptr_reinterpret
                            }
                            _ => self.cost.simple_op,
                        };
                        th.cycles += c;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_charge(Some(fid), CycleClass::Alu, c);
                        }
                    }
                    InstKind::Gep {
                        base,
                        index,
                        scale,
                        offset,
                    } => {
                        let (base, index, scale, offset) = (*base, *index, *scale, *offset);
                        let f = th.frames.last().unwrap();
                        let b = Self::eval(self.globals, team_id, f, base)?
                            .as_ptr()
                            .ok_or_else(|| SimError::trap("gep on non-pointer"))?;
                        let i = Self::eval(self.globals, team_id, f, index)?
                            .as_i64()
                            .ok_or_else(|| SimError::trap("gep with non-integer index"))?;
                        let addr = (b as i64 + i * scale as i64 + offset) as u64;
                        let f = th.frames.last_mut().unwrap();
                        Self::set_reg(f, inst_id, RtVal::Ptr(addr));
                        f.idx += 1;
                        let c = self.cost.int_op;
                        th.cycles += c;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_charge(Some(fid), CycleClass::Alu, c);
                        }
                    }
                    InstKind::Select {
                        cond,
                        on_true,
                        on_false,
                        ..
                    } => {
                        let (cond, on_true, on_false) = (*cond, *on_true, *on_false);
                        let f = th.frames.last().unwrap();
                        let c = Self::eval(self.globals, team_id, f, cond)?
                            .as_bool()
                            .ok_or_else(|| SimError::trap("select on non-boolean"))?;
                        let v = if c {
                            Self::eval(self.globals, team_id, f, on_true)?
                        } else {
                            Self::eval(self.globals, team_id, f, on_false)?
                        };
                        let f = th.frames.last_mut().unwrap();
                        Self::set_reg(f, inst_id, v);
                        f.idx += 1;
                        let c = self.cost.simple_op;
                        th.cycles += c;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_charge(Some(fid), CycleClass::Alu, c);
                        }
                    }
                    InstKind::Phi { .. } => {
                        // Phis are executed as part of block transition;
                        // a phi in the middle of a block (not the leading
                        // header the plan splits off) is skipped
                        // defensively.
                        let f = th.frames.last_mut().unwrap();
                        f.idx += 1;
                    }
                    InstKind::Call { callee, args, .. } => {
                        let target = fp.call_targets[inst_id.index()];
                        self.exec_call(hw, inst_id, target, *callee, args)?;
                        // The call may have pushed a frame, blocked the
                        // thread, or requested a scheduler yield.
                        if self.yield_flag {
                            self.yield_flag = false;
                            return Ok(());
                        }
                        continue 'resolve;
                    }
                }
            }
        }
        Ok(())
    }

    fn eval(
        globals: &[(AddrSpace, u64)],
        team_id: u32,
        frame: &Frame,
        v: Value,
    ) -> Result<RtVal, SimError> {
        Ok(match v {
            Value::Inst(i) => frame
                .regs
                .get(i.index())
                .copied()
                .flatten()
                .ok_or_else(|| SimError::trap(format!("use of undefined value {i}")))?,
            Value::Arg(n) => *frame
                .args
                .get(n as usize)
                .ok_or_else(|| SimError::trap(format!("missing argument {n}")))?,
            Value::ConstInt(c, ty) => match ty {
                Type::I1 => RtVal::Bool(c != 0),
                Type::I32 => RtVal::I32(c as i32),
                _ => RtVal::I64(c),
            },
            Value::ConstFloat(bits, ty) => match ty {
                Type::F32 => RtVal::F32(f64::from_bits(bits) as f32),
                _ => RtVal::F64(f64::from_bits(bits)),
            },
            Value::Global(g) => {
                // The plan validated every global reference, so the
                // dense table lookup cannot miss.
                let (space, offset) = globals[g.index()];
                match space {
                    AddrSpace::Global => RtVal::Ptr(mem::global_addr(offset)),
                    AddrSpace::Shared => RtVal::Ptr(mem::shared_addr(team_id, offset)),
                }
            }
            Value::Func(f) => RtVal::Ptr(mem::func_addr(f.0)),
            Value::Null => RtVal::Ptr(0),
            Value::Undef(ty) => RtVal::zero(ty),
        })
    }

    #[inline]
    fn set_reg(frame: &mut Frame, inst: InstId, v: RtVal) {
        frame.regs[inst.index()] = Some(v);
    }

    #[inline]
    fn charge(&mut self, hw: u32, cycles: u64, class: CycleClass) {
        let th = &mut self.team.threads[hw as usize];
        th.cycles += cycles;
        if let Some(p) = self.prof.as_deref_mut() {
            p.on_charge(th.frames.last().map(|f| f.func), class, cycles);
        }
    }

    /// Evaluates a pre-decoded tier-1 operand slot. Mirrors
    /// [`TeamExec::eval`] exactly (including trap messages); constants
    /// were materialized at compile time.
    ///
    /// `inline(always)` matters: this runs for every operand of every
    /// compiled step, and as an outlined call (large `Result` return,
    /// cold `format!` paths) it costs as much as a whole interpreted
    /// instruction. The trap constructors are outlined instead.
    #[inline(always)]
    fn slot_val(
        globals: &[(AddrSpace, u64)],
        team_id: u32,
        frame: &Frame,
        s: Slot,
    ) -> Result<RtVal, SimError> {
        Ok(match s {
            Slot::Const(v) => v,
            Slot::Reg(i) => match frame.regs.get(i.index()) {
                Some(&Some(v)) => v,
                _ => return Err(undef_value_trap(i)),
            },
            Slot::Arg(n) => match frame.args.get(n as usize) {
                Some(&v) => v,
                None => return Err(missing_arg_trap(n)),
            },
            Slot::Global(g) => {
                let (space, offset) = globals[g as usize];
                match space {
                    AddrSpace::Global => RtVal::Ptr(mem::global_addr(offset)),
                    AddrSpace::Shared => RtVal::Ptr(mem::shared_addr(team_id, offset)),
                }
            }
        })
    }

    /// Runs compiled blocks for thread `hw` starting at the top frame's
    /// current block, chaining across compiled successors. The frame is
    /// popped into a local for the duration (pushed back by
    /// [`TeamExec::exit_compiled`] on every path), and cycle/instruction
    /// deltas accumulate in locals, flushed once per exit.
    ///
    /// Callers guarantee `frame.idx == 0` and that the instruction
    /// budget covers the first block's `n_insts`; the loop re-checks the
    /// budget per chained block and exits back to the interpreter (same
    /// position, nothing charged for the unexecuted block) when the
    /// budget might trip inside it — the interpreter then stops at the
    /// exact instruction tier 0 would.
    fn run_compiled<'p>(
        &mut self,
        hw: u32,
        fid: FuncId,
        fp: &'p crate::plan::FuncPlan<'m>,
        cb: &'p CompiledBlock,
        stop_at: u64,
    ) -> Result<(), SimError> {
        let mut cb = cb;
        let th = &mut self.team.threads[hw as usize];
        let mut insts = th.insts;
        let mut cycles: u64 = 0;
        let mut frame = th.frames.pop().expect("compiled run without a frame");
        loop {
            let before = insts;
            if before.saturating_add(cb.n_insts) >= stop_at {
                // Budget deopt: let the interpreter run this block.
                return self.exit_compiled(hw, frame, cycles, insts, Ok(()));
            }
            let mut failed: Option<SimError> = None;
            for &(at, ref step) in &cb.steps {
                if let Err((rel, e)) = self.exec_step(hw, fid, step, &mut frame, &mut cycles) {
                    frame.idx = (at + rel) as usize;
                    failed = Some(e);
                    break;
                }
            }
            if let Some(e) = failed {
                return self.exit_compiled(hw, frame, cycles, insts, Err(e));
            }
            insts += cb.n_insts;
            cycles += cb.static_cycles;
            self.stats.memory_accesses += cb.mem_accesses;
            frame.idx = cb.code_len as usize;
            // Amortized watchdog: fire on the same 16 K-instruction
            // cadence as the interpreter's per-instruction check.
            if (before >> 14) != (insts >> 14) {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        let e = SimError::timeout(self.watchdog_millis);
                        return self.exit_compiled(hw, frame, cycles, insts, Err(e));
                    }
                }
            }
            let taken: &Edge = match &cb.term {
                CTerm::Bridge => {
                    // Terminator (or unresolved edge) belongs to the
                    // interpreter; the frame sits at `idx == code_len`.
                    return self.exit_compiled(hw, frame, cycles, insts, Ok(()));
                }
                CTerm::Br(e) => e,
                CTerm::CondBr {
                    cond,
                    then_e,
                    else_e,
                } => {
                    let v = match Self::slot_val(self.globals, self.team.id, &frame, *cond) {
                        Ok(v) => v,
                        Err(e) => return self.exit_compiled(hw, frame, cycles, insts, Err(e)),
                    };
                    match v.as_bool() {
                        Some(true) => then_e,
                        Some(false) => else_e,
                        None => {
                            let e = SimError::trap("branch on non-boolean");
                            return self.exit_compiled(hw, frame, cycles, insts, Err(e));
                        }
                    }
                }
                CTerm::CmpBr {
                    op,
                    ty,
                    lhs,
                    rhs,
                    at,
                    then_e,
                    else_e,
                } => {
                    self.stats.fused_cmp_br += 1;
                    let r = (|| {
                        let a = Self::slot_val(self.globals, self.team.id, &frame, *lhs)?;
                        let b = Self::slot_val(self.globals, self.team.id, &frame, *rhs)?;
                        exec_cmp(*op, *ty, a, b)
                    })();
                    match r.map(|v| v.as_bool()) {
                        Ok(Some(true)) => then_e,
                        Ok(Some(false)) => else_e,
                        Ok(None) => unreachable!("cmp produced a non-boolean"),
                        Err(e) => {
                            // The fused compare's own code position.
                            frame.idx = *at as usize;
                            return self.exit_compiled(hw, frame, cycles, insts, Err(e));
                        }
                    }
                }
            };
            if let Err(e) = self.take_edge(&mut frame, taken) {
                return self.exit_compiled(hw, frame, cycles, insts, Err(e));
            }
            cb = match fp.block(frame.block).compiled.as_ref() {
                Some(c) => c,
                // Successor needs the interpreter (runtime calls,
                // returns, ...): bridge with the frame at its head.
                None => return self.exit_compiled(hw, frame, cycles, insts, Ok(())),
            };
        }
    }

    /// Pushes the popped frame back and flushes the accumulated
    /// instruction/cycle deltas of a compiled run.
    fn exit_compiled(
        &mut self,
        hw: u32,
        frame: Frame,
        cycles: u64,
        insts: u64,
        r: Result<(), SimError>,
    ) -> Result<(), SimError> {
        let th = &mut self.team.threads[hw as usize];
        th.frames.push(frame);
        th.cycles += cycles;
        th.insts = insts;
        r
    }

    /// Follows a pre-resolved tier-1 edge: applies the target's phi
    /// moves for this predecessor (simultaneously, like
    /// [`TeamExec::transition`]) and repositions the frame.
    fn take_edge(&mut self, frame: &mut Frame, edge: &Edge) -> Result<(), SimError> {
        match edge.moves.as_slice() {
            [] => {}
            &[(i, s)] => {
                let v = Self::slot_val(self.globals, self.team.id, frame, s)?;
                Self::set_reg(frame, i, v);
            }
            moves => {
                let mut vals = std::mem::take(&mut self.scratch_phis);
                vals.clear();
                for &(i, s) in moves {
                    match Self::slot_val(self.globals, self.team.id, frame, s) {
                        Ok(v) => vals.push((i, v)),
                        Err(e) => {
                            self.scratch_phis = vals;
                            return Err(e);
                        }
                    }
                }
                for &(i, v) in &vals {
                    Self::set_reg(frame, i, v);
                }
                self.scratch_phis = vals;
            }
        }
        frame.prev_block = Some(frame.block);
        frame.block = edge.target;
        frame.idx = 0;
        Ok(())
    }

    /// Executes one tier-1 step against the popped frame, accumulating
    /// dynamic (memory-access) cycle costs into `cycles`. Static costs
    /// are pre-summed per block. On error, returns the offset of the
    /// failing fused component so the caller can restore the exact
    /// interpreter code position.
    fn exec_step(
        &mut self,
        hw: u32,
        fid: FuncId,
        step: &Step,
        frame: &mut Frame,
        cycles: &mut u64,
    ) -> Result<(), (u32, SimError)> {
        let globals = self.globals;
        let team_id = self.team.id;
        // Superinstruction hit accounting: fused kinds vs plain steps.
        match step {
            Step::GepLoad { .. } => self.stats.fused_gep_load += 1,
            Step::LoadBinStore { .. } => self.stats.fused_load_bin_store += 1,
            _ => self.stats.plain_steps += 1,
        }
        match *step {
            Step::Alloca { size, dst } => {
                let th = &mut self.team.threads[hw as usize];
                let addr = mem::local_addr(team_id, hw, th.local_sp);
                th.local_sp += size.max(1).div_ceil(8) * 8;
                if th.local_sp > self.cfg.local_mem_per_thread {
                    return Err((0, SimError::trap("thread-local stack overflow")));
                }
                Self::set_reg(frame, dst, RtVal::Ptr(addr));
            }
            Step::Load { ptr, ty, site, dst } => {
                let p = Self::slot_val(globals, team_id, frame, ptr)
                    .map_err(|e| (0, e))?
                    .as_ptr()
                    .ok_or_else(|| (0, SimError::trap("load through non-pointer")))?;
                let (v, class) = self.mem.load(p, ty, hw).map_err(|e| (0, e.into()))?;
                *cycles += self.access_cost(hw, fid, site, p, ty, class);
                Self::set_reg(frame, dst, v);
            }
            Step::Store { ptr, val, site } => {
                let p = Self::slot_val(globals, team_id, frame, ptr)
                    .map_err(|e| (0, e))?
                    .as_ptr()
                    .ok_or_else(|| (0, SimError::trap("store through non-pointer")))?;
                let v = Self::slot_val(globals, team_id, frame, val).map_err(|e| (0, e))?;
                let class = self.mem.store(p, v, hw).map_err(|e| (0, e.into()))?;
                *cycles += self.access_cost(hw, fid, site, p, v.ty(), class);
            }
            Step::Bin {
                op,
                ty,
                lhs,
                rhs,
                dst,
            } => {
                let a = Self::slot_val(globals, team_id, frame, lhs).map_err(|e| (0, e))?;
                let b = Self::slot_val(globals, team_id, frame, rhs).map_err(|e| (0, e))?;
                let v = exec_bin(op, ty, a, b).map_err(|e| (0, e))?;
                Self::set_reg(frame, dst, v);
            }
            Step::Cmp {
                op,
                ty,
                lhs,
                rhs,
                dst,
            } => {
                let a = Self::slot_val(globals, team_id, frame, lhs).map_err(|e| (0, e))?;
                let b = Self::slot_val(globals, team_id, frame, rhs).map_err(|e| (0, e))?;
                let v = exec_cmp(op, ty, a, b).map_err(|e| (0, e))?;
                Self::set_reg(frame, dst, v);
            }
            Step::Cast { op, val, to, dst } => {
                let a = Self::slot_val(globals, team_id, frame, val).map_err(|e| (0, e))?;
                let v = exec_cast(op, a, to).map_err(|e| (0, e))?;
                Self::set_reg(frame, dst, v);
            }
            Step::Gep {
                base,
                index,
                scale,
                offset,
                dst,
            } => {
                let b = Self::slot_val(globals, team_id, frame, base)
                    .map_err(|e| (0, e))?
                    .as_ptr()
                    .ok_or_else(|| (0, SimError::trap("gep on non-pointer")))?;
                let i = Self::slot_val(globals, team_id, frame, index)
                    .map_err(|e| (0, e))?
                    .as_i64()
                    .ok_or_else(|| (0, SimError::trap("gep with non-integer index")))?;
                let addr = (b as i64 + i * scale as i64 + offset) as u64;
                Self::set_reg(frame, dst, RtVal::Ptr(addr));
            }
            Step::Select {
                cond,
                on_true,
                on_false,
                dst,
            } => {
                let c = Self::slot_val(globals, team_id, frame, cond)
                    .map_err(|e| (0, e))?
                    .as_bool()
                    .ok_or_else(|| (0, SimError::trap("select on non-boolean")))?;
                let v = if c {
                    Self::slot_val(globals, team_id, frame, on_true).map_err(|e| (0, e))?
                } else {
                    Self::slot_val(globals, team_id, frame, on_false).map_err(|e| (0, e))?
                };
                Self::set_reg(frame, dst, v);
            }
            Step::Math {
                kind,
                f32_out,
                args,
                n_args,
                dst,
            } => {
                let mut buf = [RtVal::I64(0); 2];
                for (k, slot) in args.iter().take(n_args as usize).enumerate() {
                    buf[k] = Self::slot_val(globals, team_id, frame, *slot).map_err(|e| (0, e))?;
                }
                let v = exec_math(kind, f32_out, &buf[..n_args as usize]).map_err(|e| (0, e))?;
                Self::set_reg(frame, dst, v);
            }
            Step::GepLoad {
                base,
                index,
                scale,
                offset,
                addr_dst,
                ty,
                site,
                dst,
            } => {
                let b = Self::slot_val(globals, team_id, frame, base)
                    .map_err(|e| (0, e))?
                    .as_ptr()
                    .ok_or_else(|| (0, SimError::trap("gep on non-pointer")))?;
                let i = Self::slot_val(globals, team_id, frame, index)
                    .map_err(|e| (0, e))?
                    .as_i64()
                    .ok_or_else(|| (0, SimError::trap("gep with non-integer index")))?;
                let addr = (b as i64 + i * scale as i64 + offset) as u64;
                if let Some(d) = addr_dst {
                    Self::set_reg(frame, d, RtVal::Ptr(addr));
                }
                let (v, class) = self.mem.load(addr, ty, hw).map_err(|e| (1, e.into()))?;
                *cycles += self.access_cost(hw, fid, site, addr, ty, class);
                Self::set_reg(frame, dst, v);
            }
            Step::LoadBinStore {
                ptr,
                lty,
                lsite,
                ldst,
                op,
                bty,
                other,
                loaded_is_lhs,
                bdst,
                sptr,
                ssite,
            } => {
                let p = Self::slot_val(globals, team_id, frame, ptr)
                    .map_err(|e| (0, e))?
                    .as_ptr()
                    .ok_or_else(|| (0, SimError::trap("load through non-pointer")))?;
                let (lv, class) = self.mem.load(p, lty, hw).map_err(|e| (0, e.into()))?;
                *cycles += self.access_cost(hw, fid, lsite, p, lty, class);
                if let Some(d) = ldst {
                    Self::set_reg(frame, d, lv);
                }
                let bv = if loaded_is_lhs {
                    let b = Self::slot_val(globals, team_id, frame, other).map_err(|e| (1, e))?;
                    exec_bin(op, bty, lv, b).map_err(|e| (1, e))?
                } else {
                    let a = Self::slot_val(globals, team_id, frame, other).map_err(|e| (1, e))?;
                    exec_bin(op, bty, a, lv).map_err(|e| (1, e))?
                };
                if let Some(d) = bdst {
                    Self::set_reg(frame, d, bv);
                }
                let sp = Self::slot_val(globals, team_id, frame, sptr)
                    .map_err(|e| (2, e))?
                    .as_ptr()
                    .ok_or_else(|| (2, SimError::trap("store through non-pointer")))?;
                let class = self.mem.store(sp, bv, hw).map_err(|e| (2, e.into()))?;
                *cycles += self.access_cost(hw, fid, ssite, sp, bv.ty(), class);
            }
        }
        Ok(())
    }

    /// Applies a cycle *jump* (barrier release, join alignment, worker
    /// wakeup) to thread `t`, recording it as stall time when
    /// profiling. Returns the thread's new cycle count.
    #[inline]
    fn align_cycles(&mut self, t: u32, target: u64) -> u64 {
        let th = &mut self.team.threads[t as usize];
        let old = th.cycles;
        th.cycles = th.cycles.max(target);
        let new = th.cycles;
        if new > old {
            if let Some(p) = self.prof.as_deref_mut() {
                p.on_stall(th.frames.last().map(|f| f.func), new - old);
            }
        }
        new
    }

    fn step_terminator(&mut self, hw: u32) -> Result<(), SimError> {
        let plan = self.plan;
        let frame = self.team.threads[hw as usize].frames.last().unwrap();
        let fid = frame.func;
        let fp = plan.func(fid).expect("frame in undefined function");
        let term = fp.block(frame.block).term;
        match term {
            Terminator::Br(target) => {
                let target = *target;
                self.transition(hw, target)?;
                self.charge(hw, self.cost.simple_op, CycleClass::Branch);
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let (cond, then_bb, else_bb) = (*cond, *then_bb, *else_bb);
                let f = self.team.threads[hw as usize].frames.last().unwrap();
                let c = Self::eval(self.globals, self.team.id, f, cond)?
                    .as_bool()
                    .ok_or_else(|| SimError::trap("branch on non-boolean"))?;
                self.transition(hw, if c { then_bb } else { else_bb })?;
                self.charge(hw, self.cost.simple_op, CycleClass::Branch);
            }
            Terminator::Ret(v) => {
                let v = *v;
                let f = self.team.threads[hw as usize].frames.last().unwrap();
                let val = match v {
                    Some(v) => Some(Self::eval(self.globals, self.team.id, f, v)?),
                    None => None,
                };
                self.do_return(hw, val)?;
            }
            Terminator::Unreachable => {
                return Err(SimError::trap(format!(
                    "reached `unreachable` in @{}",
                    self.module.func(fid).name
                )));
            }
        }
        Ok(())
    }

    /// Moves to `target`, evaluating its phi nodes against the current
    /// block.
    fn transition(&mut self, hw: u32, target: BlockId) -> Result<(), SimError> {
        let plan = self.plan;
        let frame = self.team.threads[hw as usize].frames.last().unwrap();
        let from = frame.block;
        let fp = plan.func(frame.func).expect("frame in undefined function");
        let tp = fp.block(target);
        if !tp.phis.is_empty() {
            // Evaluate all phis simultaneously, into the reusable
            // scratch (a Trap mid-evaluation abandons the buffer,
            // which only matters on already-fatal paths).
            let mut phi_vals = std::mem::take(&mut self.scratch_phis);
            phi_vals.clear();
            for &(i, incoming) in &tp.phis {
                let Some(&(_, v)) = incoming.iter().find(|(p, _)| *p == from) else {
                    return Err(SimError::trap(format!(
                        "phi {i} has no incoming for predecessor {from}"
                    )));
                };
                let frame = self.team.threads[hw as usize].frames.last().unwrap();
                phi_vals.push((i, Self::eval(self.globals, self.team.id, frame, v)?));
            }
            let f = self.team.threads[hw as usize].frames.last_mut().unwrap();
            for &(i, v) in &phi_vals {
                Self::set_reg(f, i, v);
            }
            self.scratch_phis = phi_vals;
        }
        let f = self.team.threads[hw as usize].frames.last_mut().unwrap();
        f.prev_block = Some(from);
        f.block = target;
        f.idx = 0;
        Ok(())
    }

    fn do_return(&mut self, hw: u32, val: Option<RtVal>) -> Result<(), SimError> {
        let th = &mut self.team.threads[hw as usize];
        let frame = th.frames.pop().expect("return without frame");
        th.local_sp = frame.local_sp_save;
        if let (Some(ret_to), Some(parent)) = (frame.ret_to, th.frames.last_mut()) {
            if let Some(v) = val {
                Self::set_reg(parent, ret_to, v);
            }
        }
        if th.frames.is_empty() {
            th.status = Status::Done;
        }
        let hook = frame.hook;
        let popped = frame.func;
        let now = th.cycles;
        th.pool.push(frame);
        if let Some(p) = self.prof.as_deref_mut() {
            p.on_pop(hw, popped, now);
            // The SPMD region span is tracked on thread 0; it ends when
            // thread 0 leaves the region body (the implicit barrier that
            // follows is accounted as stall, not region time).
            if hook == Some(RetHook::Spmd) && hw == 0 {
                p.close_region(now);
            }
        }
        match hook {
            None => {}
            Some(RetHook::Serialized) => {
                self.team.threads[hw as usize].ctx.pop();
            }
            Some(RetHook::Spmd) => {
                self.team.threads[hw as usize].ctx.pop();
                // Implicit barrier at the end of an SPMD parallel region.
                self.enter_barrier(hw, true)?;
            }
            Some(RetHook::Generic) => {
                // Main thread finished its share; wait for workers.
                self.team.threads[hw as usize].ctx.pop();
                if self.team.outstanding > 0 {
                    self.team.threads[hw as usize].status = Status::WaitJoin;
                } else {
                    self.finish_join();
                }
            }
        }
        Ok(())
    }

    fn finish_join(&mut self) {
        // The end-of-region join is a synchronization edge: later
        // accesses cannot race with accesses before it.
        if let Some(s) = self.san.as_deref_mut() {
            s.bump_all();
        }
        // Align the main thread with the slowest participant.
        let max = self
            .team
            .threads
            .iter()
            .map(|t| t.cycles)
            .max()
            .unwrap_or(0);
        let new = self.align_cycles(0, max + self.cost.barrier);
        let main = &mut self.team.threads[0];
        if main.status == Status::WaitJoin {
            main.status = Status::Ready;
        }
        self.team.dispatch_n = 0;
        if let Some(p) = self.prof.as_deref_mut() {
            p.close_region(new);
        }
    }

    fn enter_barrier(&mut self, hw: u32, simple: bool) -> Result<(), SimError> {
        // Determine the barrier group.
        let group = self.barrier_group(hw, simple);
        if group.len() <= 1 {
            self.charge(hw, self.cost.barrier, CycleClass::Sync);
            return Ok(());
        }
        if self.san.is_some() {
            let site = self.team.threads[hw as usize]
                .frames
                .last()
                .map(|f| (Self::frame_site(f), simple));
            if let Some(s) = self.san.as_deref_mut() {
                s.on_barrier_park(hw, site);
            }
        }
        self.team.threads[hw as usize].status = Status::AtBarrier(simple);
        // Release when every member has arrived.
        let all_arrived = group
            .clone()
            .all(|t| matches!(self.team.threads[t as usize].status, Status::AtBarrier(_)));
        if all_arrived {
            let max = group
                .clone()
                .map(|t| self.team.threads[t as usize].cycles)
                .max()
                .unwrap_or(0);
            let release = max + self.cost.barrier;
            for t in group.clone() {
                self.align_cycles(t, release);
                self.team.threads[t as usize].status = Status::Ready;
            }
            // The release is the happens-before edge the race detector
            // keys on: check park-site agreement, then advance the
            // group's epochs.
            if let Some(s) = self.san.as_deref_mut() {
                s.on_barrier_release(group);
            }
            if let Some(p) = self.prof.as_deref_mut() {
                p.record_barrier(release);
            }
            self.stats.barriers += 1;
        }
        Ok(())
    }

    /// The sanitizer site of a frame's current position.
    fn frame_site(f: &Frame) -> SiteRef {
        SiteRef {
            func: f.func,
            block: f.block.index() as u32,
            inst: f.idx as u32,
        }
    }

    /// The sanitizer site of thread `hw`'s top frame.
    fn current_site(&self, hw: u32) -> SiteRef {
        match self.team.threads[hw as usize].frames.last() {
            Some(f) => Self::frame_site(f),
            None => SiteRef {
                func: FuncId(0),
                block: 0,
                inst: 0,
            },
        }
    }

    /// Every barrier group is a contiguous prefix of the team (or the
    /// arriving thread alone), so it is represented as a range rather
    /// than a materialized list.
    fn barrier_group(&self, hw: u32, simple: bool) -> std::ops::Range<u32> {
        if simple {
            return 0..self.team_size;
        }
        let th = &self.team.threads[hw as usize];
        match th.ctx.last() {
            Some(&(_, n)) if n <= 1 => hw..hw + 1,
            _ => {
                if self.team.mode == ExecMode::Generic && self.team.dispatch_n > 0 {
                    0..self.team.dispatch_n as u32
                } else {
                    0..self.team_size
                }
            }
        }
    }

    // One parameter per coalescing-model input; bundling them into a
    // struct would just rename the tuple.
    #[allow(clippy::too_many_arguments)]
    fn access_cost(
        &mut self,
        hw: u32,
        func: FuncId,
        site: u32,
        addr: u64,
        ty: Type,
        class: AccessClass,
    ) -> u64 {
        match class {
            AccessClass::Local => self.cost.local_access,
            AccessClass::Shared | AccessClass::Global => {
                let coalesced = self.classify(hw, func, site, addr, ty);
                match (class, coalesced) {
                    (AccessClass::Shared, true) => self.cost.shared_access,
                    (AccessClass::Shared, false) => self.cost.shared_access * 8,
                    (_, true) => {
                        self.stats.coalesced_accesses += 1;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_global_access(func, true);
                        }
                        self.cost.global_coalesced
                    }
                    (_, false) => {
                        self.stats.uncoalesced_accesses += 1;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_global_access(func, false);
                        }
                        self.cost.global_uncoalesced
                    }
                }
            }
        }
    }

    /// Streaming coalescing detector: lanes of a warp executing the same
    /// static access site with consecutive addresses are coalesced.
    /// Classification is optimistic and sticks to "uncoalesced" once a
    /// stride mismatch is observed. All state is per-team and densely
    /// indexed by the plan-wide site number, so teams classify
    /// independently of scheduling order.
    fn classify(&mut self, hw: u32, func: FuncId, site: u32, addr: u64, ty: Type) -> bool {
        if self.site_class[site as usize] == SITE_UNCOALESCED {
            return false;
        }
        // Only each thread's first visit to a site is compared: a
        // thread's later iterations stride by design and say nothing
        // about cross-lane coalescing.
        let th = &mut self.team.threads[hw as usize];
        let (w, b) = ((site / 64) as usize, site % 64);
        if th.sampled[w] & (1 << b) != 0 {
            return true;
        }
        th.sampled[w] |= 1 << b;
        // Sample the first dynamic occurrence of this site in each warp:
        // lanes with consecutive addresses are coalesced. The result is
        // sticky per site once a stride mismatch is observed.
        let warp = hw / self.cfg.warp_size;
        let lane = hw % self.cfg.warp_size;
        let slot = warp as usize * self.total_sites + site as usize;
        let (plane, paddr) = self.site_samples[slot];
        if plane == NO_SAMPLE {
            self.site_samples[slot] = (lane, addr);
        } else if plane != lane {
            let lane_delta = lane as i64 - plane as i64;
            let addr_delta = addr as i64 - paddr as i64;
            let expected = lane_delta * ty.size() as i64;
            // Accesses within a couple of cache lines of the ideal
            // position still coalesce into few memory transactions on
            // real hardware; only genuinely scattered patterns pay the
            // full penalty.
            const WINDOW: i64 = 128;
            if addr_delta != 0 && (addr_delta - expected).abs() > WINDOW {
                if self.debug_coalesce {
                    eprintln!(
                        "uncoalesced: @{} site {site}: lane {plane}@{paddr:#x} vs lane {lane}@{addr:#x}",
                        self.module.func(func).name
                    );
                }
                self.site_class[site as usize] = SITE_UNCOALESCED;
                return false;
            }
        }
        if self.site_class[site as usize] == SITE_UNKNOWN {
            self.site_class[site as usize] = SITE_COALESCED;
        }
        true
    }

    fn exec_call(
        &mut self,
        hw: u32,
        inst_id: InstId,
        target: CallTarget,
        callee: Value,
        args: &[Value],
    ) -> Result<(), SimError> {
        // Direct call sites were resolved at plan build; indirect ones
        // decode the runtime pointer and look up the callee's nature.
        let (target, indirect) = match target {
            CallTarget::Indirect => {
                let f = self.team.threads[hw as usize].frames.last().unwrap();
                let p = Self::eval(self.globals, self.team.id, f, callee)?
                    .as_ptr()
                    .ok_or_else(|| SimError::trap("indirect call on non-pointer"))?;
                let fid = match mem::decode(p) {
                    Some(mem::Space::Func { index }) => FuncId(index),
                    _ => {
                        return Err(SimError::trap(format!(
                            "indirect call through invalid target 0x{p:x}"
                        )))
                    }
                };
                let t = self.plan.nature(fid).ok_or_else(|| {
                    SimError::trap(format!("indirect call through invalid target 0x{p:x}"))
                })?;
                (t, true)
            }
            t => (t, false),
        };
        match target {
            CallTarget::Rtl(rtl) => self.exec_rtl(hw, inst_id, rtl, args),
            CallTarget::Math(kind, f32out) => {
                let mut vals = std::mem::take(&mut self.scratch_args);
                vals.clear();
                let f = self.team.threads[hw as usize].frames.last().unwrap();
                for a in args {
                    vals.push(Self::eval(self.globals, self.team.id, f, *a)?);
                }
                let v = exec_math(kind, f32out, &vals)?;
                self.scratch_args = vals;
                let f = self.team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, v);
                f.idx += 1;
                self.charge(hw, self.cost.math_fn, CycleClass::Math);
                Ok(())
            }
            CallTarget::Extern(fid) => Err(SimError::trap(format!(
                "call to unresolved external function @{}",
                self.module.func(fid).name
            ))),
            CallTarget::Direct(target) => {
                let tplan = self.plan.func(target).expect("direct target is defined");
                let (entry, num_regs) = (tplan.entry, tplan.num_regs);
                // Ordinary call: push a (recycled) frame.
                let team_id = self.team.id;
                let th = &mut self.team.threads[hw as usize];
                let sp = th.local_sp;
                let mut fr = make_frame(
                    &mut th.pool,
                    target,
                    entry,
                    num_regs,
                    sp,
                    Some(inst_id),
                    None,
                );
                let f = th.frames.last().unwrap();
                for a in args {
                    fr.args.push(Self::eval(self.globals, team_id, f, *a)?);
                }
                th.frames.last_mut().unwrap().idx += 1;
                let now = th.cycles;
                th.frames.push(fr);
                if let Some(p) = self.prof.as_deref_mut() {
                    p.on_push(hw, target, now);
                }
                let mut cost = self.cost.call;
                if indirect {
                    cost += self.cost.indirect_call_penalty;
                    self.stats.indirect_calls += 1;
                }
                self.charge(hw, cost, CycleClass::Call);
                Ok(())
            }
            CallTarget::Indirect => unreachable!("indirect targets resolve to a nature"),
        }
    }

    fn exec_rtl(
        &mut self,
        hw: u32,
        inst_id: InstId,
        rtl: RtlFn,
        args: &[Value],
    ) -> Result<(), SimError> {
        self.stats.rtl_calls[rtl as usize] += 1;
        let mut vals = std::mem::take(&mut self.scratch_args);
        vals.clear();
        let f = self.team.threads[hw as usize].frames.last().unwrap();
        for a in args {
            match Self::eval(self.globals, self.team.id, f, *a) {
                Ok(v) => vals.push(v),
                Err(e) => {
                    self.scratch_args = vals;
                    return Err(e);
                }
            }
        }
        let result = self.exec_rtl_inner(hw, inst_id, rtl, &vals);
        self.scratch_args = vals;
        result
    }

    fn exec_rtl_inner(
        &mut self,
        hw: u32,
        inst_id: InstId,
        rtl: RtlFn,
        vals: &[RtVal],
    ) -> Result<(), SimError> {
        let base_cost = self.cost.rtl_cost(rtl);
        // Helper to finish a non-blocking call.
        macro_rules! done {
            ($v:expr) => {{
                let f = self.team.threads[hw as usize].frames.last_mut().unwrap();
                if let Some(v) = $v {
                    Self::set_reg(f, inst_id, v);
                }
                f.idx += 1;
                self.charge(hw, base_cost, CycleClass::Rtl(rtl));
                return Ok(());
            }};
        }
        match rtl {
            RtlFn::TargetInit => {
                let mode = rtl_arg(vals, 0, rtl)?.as_i64().unwrap_or(1);
                let spmd = mode == MODE_SPMD;
                self.team.mode = if spmd {
                    ExecMode::Spmd
                } else {
                    ExecMode::Generic
                };
                let team_size = self.team_size;
                let th = &mut self.team.threads[hw as usize];
                let ret = if spmd {
                    th.ctx = vec![(hw as i32, team_size as i32)];
                    -1
                } else if hw == 0 {
                    th.ctx = vec![(0, 1)];
                    -1
                } else {
                    // Workers also sit at level 0 until dispatched; the
                    // base context makes nested regions inside a
                    // dispatched region (depth 2) serialize correctly.
                    th.ctx = vec![(0, 1)];
                    hw as i32
                };
                let cost = if spmd {
                    self.cost.target_init_spmd
                } else {
                    self.cost.target_init_generic
                };
                let f = self.team.threads[hw as usize].frames.last_mut().unwrap();
                Self::set_reg(f, inst_id, RtVal::I32(ret));
                f.idx += 1;
                self.charge(hw, cost, CycleClass::Rtl(rtl));
                Ok(())
            }
            RtlFn::TargetDeinit => {
                if self.team.mode == ExecMode::Generic && hw == 0 && !self.team.terminated {
                    self.team.terminated = true;
                    // Release all waiting workers with a null token.
                    let main_cycles = self.team.threads[0].cycles;
                    for t in 1..self.team_size {
                        let th = &mut self.team.threads[t as usize];
                        if th.status == Status::WaitWork {
                            th.resume = Some(RtVal::Ptr(0));
                            th.status = Status::Ready;
                            self.align_cycles(t, main_cycles);
                        }
                    }
                    // Kernel teardown orders everything before it.
                    if let Some(s) = self.san.as_deref_mut() {
                        s.bump_all();
                    }
                }
                done!(None::<RtVal>)
            }
            RtlFn::KernelParallel => {
                let dispatch_n = self.team.dispatch_n;
                let th = &mut self.team.threads[hw as usize];
                if let Some(v) = th.resume.take() {
                    // Released: either a work token or null (terminate).
                    if v != RtVal::Ptr(0) {
                        th.ctx.push((hw as i32, dispatch_n));
                    }
                    let f = th.frames.last_mut().unwrap();
                    Self::set_reg(f, inst_id, v);
                    f.idx += 1;
                    self.charge(hw, self.cost.worker_wakeup, CycleClass::Rtl(rtl));
                    return Ok(());
                }
                if let Some(pos) = self.team.assigned.iter().position(|&a| a == hw) {
                    self.team.assigned.remove(pos);
                    let tok = self.team.work_token;
                    let th = &mut self.team.threads[hw as usize];
                    th.ctx.push((hw as i32, dispatch_n));
                    let f = th.frames.last_mut().unwrap();
                    Self::set_reg(f, inst_id, tok);
                    f.idx += 1;
                    self.charge(hw, self.cost.worker_wakeup, CycleClass::Rtl(rtl));
                    return Ok(());
                }
                if self.team.terminated {
                    done!(Some(RtVal::Ptr(0)));
                }
                self.team.threads[hw as usize].status = Status::WaitWork;
                Ok(())
            }
            RtlFn::KernelEndParallel => {
                let th = &mut self.team.threads[hw as usize];
                th.ctx.pop();
                self.team.outstanding = self.team.outstanding.saturating_sub(1);
                if self.team.outstanding == 0 && self.team.threads[0].status == Status::WaitJoin {
                    self.finish_join();
                }
                done!(None::<RtVal>)
            }
            RtlFn::GetParallelArgs => {
                let a = self.team.work_args;
                done!(Some(RtVal::Ptr(a)))
            }
            RtlFn::Parallel51 => self.exec_parallel51(hw, inst_id, vals),
            RtlFn::AllocShared => {
                let size = rtl_arg(vals, 0, rtl)?.as_i64().unwrap_or(0).max(0) as u64;
                let addr = self.mem.alloc_shared(size)?;
                if self.san.is_some() {
                    let site = self.current_site(hw);
                    if let Some(s) = self.san.as_deref_mut() {
                        s.on_alloc(addr, size, hw, site);
                    }
                }
                self.stats.globalization_allocs += 1;
                if let Some(p) = self.prof.as_deref_mut() {
                    let cycle = self.team.threads[hw as usize].cycles;
                    p.record_alloc(cycle, size);
                }
                self.yield_flag = true;
                done!(Some(RtVal::Ptr(addr)))
            }
            RtlFn::FreeShared => {
                let addr = rtl_arg(vals, 0, rtl)?.as_ptr().unwrap_or(0);
                let size = rtl_arg(vals, 1, rtl)?.as_i64().unwrap_or(0).max(0) as u64;
                if addr != 0 {
                    self.mem.free_shared(addr, size)?;
                    if let Some(s) = self.san.as_deref_mut() {
                        s.on_free(addr, size);
                    }
                }
                done!(None::<RtVal>)
            }
            RtlFn::DataSharingPushStack => {
                let size = rtl_arg(vals, 0, rtl)?.as_i64().unwrap_or(0).max(0) as u64;
                let addr = self.mem.alloc_shared(size)?;
                if self.san.is_some() {
                    let site = self.current_site(hw);
                    if let Some(s) = self.san.as_deref_mut() {
                        s.on_alloc(addr, size, hw, site);
                    }
                }
                self.team.push_sizes.insert(addr, size);
                self.stats.globalization_allocs += 1;
                if let Some(p) = self.prof.as_deref_mut() {
                    let cycle = self.team.threads[hw as usize].cycles;
                    p.record_alloc(cycle, size);
                }
                self.yield_flag = true;
                done!(Some(RtVal::Ptr(addr)))
            }
            RtlFn::DataSharingPopStack => {
                let addr = rtl_arg(vals, 0, rtl)?.as_ptr().unwrap_or(0);
                if let Some(size) = self.team.push_sizes.remove(&addr) {
                    self.mem.free_shared(addr, size)?;
                    if let Some(s) = self.san.as_deref_mut() {
                        s.on_free(addr, size);
                    }
                }
                done!(None::<RtVal>)
            }
            RtlFn::IsSpmdExecMode => {
                let v = self.team.mode == ExecMode::Spmd;
                done!(Some(RtVal::Bool(v)))
            }
            RtlFn::ParallelLevel => {
                let lvl = self.team.threads[hw as usize].ctx.len().saturating_sub(1) as i32;
                done!(Some(RtVal::I32(lvl)))
            }
            RtlFn::IsGenericMainThread => {
                let v = self.team.mode == ExecMode::Generic && hw == 0;
                done!(Some(RtVal::Bool(v)))
            }
            RtlFn::InActiveParallel => {
                let th = &self.team.threads[hw as usize];
                let v = th.ctx.len() >= 2 && th.ctx.last().is_some_and(|&(_, n)| n > 1);
                done!(Some(RtVal::Bool(v)))
            }
            RtlFn::Barrier => {
                let f = self.team.threads[hw as usize].frames.last_mut().unwrap();
                f.idx += 1;
                self.enter_barrier(hw, false)?;
                Ok(())
            }
            RtlFn::BarrierSimpleSpmd => {
                let f = self.team.threads[hw as usize].frames.last_mut().unwrap();
                f.idx += 1;
                self.enter_barrier(hw, true)?;
                Ok(())
            }
            RtlFn::StaticChunkLb | RtlFn::StaticChunkUb => {
                let n = rtl_arg(vals, 0, rtl)?.as_i64().unwrap_or(0).max(0);
                let (tid, nt) = *self.team.threads[hw as usize].ctx.last().unwrap_or(&(0, 1));
                let nt = nt.max(1) as i64;
                let tid = tid as i64;
                let chunk = (n + nt - 1) / nt;
                let lb = (tid * chunk).min(n);
                let ub = (lb + chunk).min(n);
                let v = if rtl == RtlFn::StaticChunkLb { lb } else { ub };
                done!(Some(RtVal::I64(v)))
            }
            RtlFn::DistributeChunkLb | RtlFn::DistributeChunkUb => {
                let n = rtl_arg(vals, 0, rtl)?.as_i64().unwrap_or(0).max(0);
                let teams = self.num_teams.max(1) as i64;
                let t = self.team.id as i64;
                let chunk = (n + teams - 1) / teams;
                let lb = (t * chunk).min(n);
                let ub = (lb + chunk).min(n);
                let v = if rtl == RtlFn::DistributeChunkLb {
                    lb
                } else {
                    ub
                };
                done!(Some(RtVal::I64(v)))
            }
            RtlFn::ThreadNum => {
                let (tid, _) = *self.team.threads[hw as usize].ctx.last().unwrap_or(&(0, 1));
                done!(Some(RtVal::I32(tid)))
            }
            RtlFn::NumThreads => {
                let (_, n) = *self.team.threads[hw as usize].ctx.last().unwrap_or(&(0, 1));
                done!(Some(RtVal::I32(n)))
            }
            RtlFn::TeamNum => done!(Some(RtVal::I32(self.team.id as i32))),
            RtlFn::NumTeams => done!(Some(RtVal::I32(self.num_teams as i32))),
            RtlFn::WarpSize => done!(Some(RtVal::I32(self.cfg.warp_size as i32))),
            RtlFn::WarpId => done!(Some(RtVal::I32((hw / self.cfg.warp_size) as i32))),
            RtlFn::LaneId => done!(Some(RtVal::I32((hw % self.cfg.warp_size) as i32))),
        }
    }

    fn exec_parallel51(
        &mut self,
        hw: u32,
        inst_id: InstId,
        vals: &[RtVal],
    ) -> Result<(), SimError> {
        let token = rtl_arg(vals, 0, RtlFn::Parallel51)?;
        let nthreads = rtl_arg(vals, 1, RtlFn::Parallel51)?.as_i64().unwrap_or(-1) as i32;
        let args_ptr = rtl_arg(vals, 2, RtlFn::Parallel51)?.as_ptr().unwrap_or(0);
        // Resolve the region function from the token: either a function
        // address, or a small integer id installed by the custom
        // state-machine rewrite.
        let region = match token.as_ptr().and_then(mem::decode) {
            Some(mem::Space::Func { index }) => FuncId(index),
            _ => match token
                .as_ptr()
                .and_then(|p| self.module.region_for_id(p as i64))
            {
                Some(f) => f,
                None => return Err(SimError::trap("parallel_51 with unresolvable region token")),
            },
        };
        if region.index() >= self.module.num_functions() {
            return Err(SimError::trap("parallel_51 with unresolvable region token"));
        }
        let Some(rplan) = self.plan.func(region) else {
            return Err(SimError::trap("parallel region is a declaration"));
        };
        let (entry, num_regs) = (rplan.entry, rplan.num_regs);
        let depth = self.team.threads[hw as usize].ctx.len();
        let push_region_frame = |th: &mut Thread, hook: RetHook, arg: RtVal| {
            th.frames.last_mut().unwrap().idx += 1;
            let sp = th.local_sp;
            let mut fr = make_frame(
                &mut th.pool,
                region,
                entry,
                num_regs,
                sp,
                Some(inst_id),
                Some(hook),
            );
            fr.args.push(arg);
            th.frames.push(fr);
        };
        if depth >= 2 {
            // Nested parallelism is serialized onto the caller.
            let th = &mut self.team.threads[hw as usize];
            th.ctx.push((0, 1));
            let now = th.cycles;
            push_region_frame(th, RetHook::Serialized, RtVal::Ptr(args_ptr));
            if let Some(p) = self.prof.as_deref_mut() {
                p.on_push(hw, region, now);
            }
            self.charge(hw, self.cost.call, CycleClass::Call);
            return Ok(());
        }
        match self.team.mode {
            ExecMode::Spmd => {
                let team_size = self.team_size;
                let th = &mut self.team.threads[hw as usize];
                let (tid, n) = *th.ctx.last().unwrap_or(&(hw as i32, team_size as i32));
                th.ctx.push((tid, n));
                let now = th.cycles;
                push_region_frame(th, RetHook::Spmd, RtVal::Ptr(args_ptr));
                if let Some(p) = self.prof.as_deref_mut() {
                    p.on_push(hw, region, now);
                }
                self.charge(
                    hw,
                    self.cost.parallel_dispatch_spmd,
                    CycleClass::Rtl(RtlFn::Parallel51),
                );
                // The team-level span is tracked on thread 0: all SPMD
                // threads enter the region together.
                if hw == 0 {
                    let start = self.team.threads[0].cycles;
                    if let Some(p) = self.prof.as_deref_mut() {
                        p.open_region(region, start);
                    }
                }
                Ok(())
            }
            ExecMode::Generic => {
                if hw != 0 {
                    return Err(SimError::trap(
                        "generic-mode parallel dispatch from a worker",
                    ));
                }
                let n = if nthreads <= 0 {
                    self.team_size as i32
                } else {
                    nthreads.min(self.team_size as i32)
                };
                self.team.work_token = token;
                self.team.work_args = args_ptr;
                self.team.dispatch_n = n;
                self.team.outstanding = (n - 1).max(0) as u32;
                self.team.assigned.clear();
                // Dispatch is a synchronization edge between the main
                // thread's setup and the workers' region bodies.
                if let Some(s) = self.san.as_deref_mut() {
                    s.bump_all();
                }
                let main_cycles = self.team.threads[0].cycles + self.cost.parallel_dispatch_generic;
                for w in 1..n as u32 {
                    let th = &mut self.team.threads[w as usize];
                    if th.status == Status::WaitWork {
                        th.resume = Some(token);
                        th.status = Status::Ready;
                        self.align_cycles(w, main_cycles);
                    } else {
                        self.team.assigned.push(w);
                    }
                }
                let th = &mut self.team.threads[hw as usize];
                th.ctx.push((0, n));
                let now = th.cycles;
                push_region_frame(th, RetHook::Generic, RtVal::Ptr(args_ptr));
                if let Some(p) = self.prof.as_deref_mut() {
                    p.on_push(hw, region, now);
                }
                self.charge(
                    hw,
                    self.cost.parallel_dispatch_generic,
                    CycleClass::Rtl(RtlFn::Parallel51),
                );
                self.stats.parallel_regions += 1;
                // The span runs from dispatch to the end-of-region join
                // (closed in `finish_join`).
                let start = self.team.threads[hw as usize].cycles;
                if let Some(p) = self.prof.as_deref_mut() {
                    p.open_region(region, start);
                }
                Ok(())
            }
        }
    }
}

/// Checked access into a runtime call's evaluated arguments: a
/// malformed module calling an RTL function with too few arguments is
/// a trap diagnostic, not an index panic.
fn rtl_arg(vals: &[RtVal], i: usize, rtl: RtlFn) -> Result<RtVal, SimError> {
    vals.get(i)
        .copied()
        .ok_or_else(|| SimError::trap(format!("{} called with too few arguments", rtl.name())))
}

/// Outlined trap constructors for [`TeamExec::slot_val`]: keeping the
/// `format!` machinery out of line is what lets the hot accessor
/// inline into the compiled-step loop. Messages match
/// [`TeamExec::eval`] byte for byte.
#[cold]
#[inline(never)]
fn undef_value_trap(i: InstId) -> SimError {
    SimError::trap(format!("use of undefined value {i}"))
}

#[cold]
#[inline(never)]
fn missing_arg_trap(n: u32) -> SimError {
    SimError::trap(format!("missing argument {n}"))
}

// ---- scalar operation semantics ----

fn exec_bin(op: BinOp, ty: Type, a: RtVal, b: RtVal) -> Result<RtVal, SimError> {
    use omp_ir::fold;
    if op.is_float() {
        let (x, y) = (
            a.as_f64()
                .ok_or_else(|| SimError::trap("float op on non-float"))?,
            b.as_f64()
                .ok_or_else(|| SimError::trap("float op on non-float"))?,
        );
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            BinOp::FRem => x % y,
            _ => unreachable!(),
        };
        return Ok(match ty {
            Type::F32 => RtVal::F32(r as f32),
            _ => RtVal::F64(r),
        });
    }
    // Pointer arithmetic via integer ops on raw addresses is allowed.
    let x = a
        .as_i64()
        .ok_or_else(|| SimError::trap("int op on non-int"))?;
    let y = b
        .as_i64()
        .ok_or_else(|| SimError::trap("int op on non-int"))?;
    // Total integer ops take a direct path: same wrapping semantics as
    // `fold::fold_bin` (`wrap_int` + the `ConstInt` conversion below),
    // minus the per-instruction `Value` round trip. Partial ops
    // (divisions, shifts — they can be undefined) keep using the
    // folder so the trap behavior stays identical.
    let fast = match op {
        BinOp::Add => Some(x.wrapping_add(y)),
        BinOp::Sub => Some(x.wrapping_sub(y)),
        BinOp::Mul => Some(x.wrapping_mul(y)),
        BinOp::And => Some(x & y),
        BinOp::Or => Some(x | y),
        BinOp::Xor => Some(x ^ y),
        _ => None,
    };
    if let Some(r) = fast {
        return Ok(match ty {
            Type::I1 => RtVal::Bool(r & 1 != 0),
            Type::I32 => RtVal::I32(r as i32),
            Type::Ptr => RtVal::Ptr(r as u64),
            _ => RtVal::I64(r),
        });
    }
    match fold::fold_bin(
        op,
        if ty == Type::Ptr { Type::I64 } else { ty },
        Value::ConstInt(x, if ty == Type::Ptr { Type::I64 } else { ty }),
        Value::ConstInt(y, if ty == Type::Ptr { Type::I64 } else { ty }),
    ) {
        Some(Value::ConstInt(v, t)) => Ok(match t {
            Type::I1 => RtVal::Bool(v != 0),
            Type::I32 => RtVal::I32(v as i32),
            _ => {
                if ty == Type::Ptr {
                    RtVal::Ptr(v as u64)
                } else {
                    RtVal::I64(v)
                }
            }
        }),
        _ => Err(SimError::trap(format!(
            "undefined integer operation {op:?} ({x}, {y})"
        ))),
    }
}

fn exec_cmp(op: CmpOp, ty: Type, a: RtVal, b: RtVal) -> Result<RtVal, SimError> {
    if op.is_float() {
        let (x, y) = (
            a.as_f64()
                .ok_or_else(|| SimError::trap("float cmp on non-float"))?,
            b.as_f64()
                .ok_or_else(|| SimError::trap("float cmp on non-float"))?,
        );
        let r = match op {
            CmpOp::FOeq => x == y,
            CmpOp::FOne => x != y,
            CmpOp::FOlt => x < y,
            CmpOp::FOle => x <= y,
            CmpOp::FOgt => x > y,
            CmpOp::FOge => x >= y,
            _ => unreachable!(),
        };
        return Ok(RtVal::Bool(r));
    }
    let x = a
        .as_i64()
        .ok_or_else(|| SimError::trap("int cmp on non-int"))?;
    let y = b
        .as_i64()
        .ok_or_else(|| SimError::trap("int cmp on non-int"))?;
    // Every integer comparison is total, so the generic constant
    // folder is skipped; semantics mirror `fold::fold_cmp` exactly
    // (pointers compare as raw i64 addresses, unsigned views truncate
    // per `to_unsigned`).
    let t = if ty == Type::Ptr { Type::I64 } else { ty };
    let (ux, uy) = match t {
        Type::I1 => ((x as u64) & 1, (y as u64) & 1),
        Type::I32 => (x as u32 as u64, y as u32 as u64),
        _ => (x as u64, y as u64),
    };
    let r = match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Slt => x < y,
        CmpOp::Sle => x <= y,
        CmpOp::Sgt => x > y,
        CmpOp::Sge => x >= y,
        CmpOp::Ult => ux < uy,
        CmpOp::Ule => ux <= uy,
        CmpOp::Ugt => ux > uy,
        CmpOp::Uge => ux >= uy,
        _ => return Err(SimError::trap("undefined comparison")),
    };
    Ok(RtVal::Bool(r))
}

fn exec_cast(op: CastOp, a: RtVal, to: Type) -> Result<RtVal, SimError> {
    let out = match op {
        CastOp::ZExt => {
            let v = match a {
                RtVal::Bool(b) => b as u64,
                RtVal::I32(v) => v as u32 as u64,
                RtVal::I64(v) => v as u64,
                _ => return Err(SimError::trap("zext on non-int")),
            };
            int_to(to, v as i64)
        }
        CastOp::SExt => int_to(
            to,
            a.as_i64()
                .ok_or_else(|| SimError::trap("sext on non-int"))?,
        ),
        CastOp::Trunc => int_to(
            to,
            a.as_i64()
                .ok_or_else(|| SimError::trap("trunc on non-int"))?,
        ),
        CastOp::SiToFp => {
            let v = a
                .as_i64()
                .ok_or_else(|| SimError::trap("sitofp on non-int"))?;
            match to {
                Type::F32 => RtVal::F32(v as f32),
                _ => RtVal::F64(v as f64),
            }
        }
        CastOp::FpToSi => {
            let v = a
                .as_f64()
                .ok_or_else(|| SimError::trap("fptosi on non-float"))?;
            int_to(to, v as i64)
        }
        CastOp::FpExt => RtVal::F64(
            a.as_f64()
                .ok_or_else(|| SimError::trap("fpext on non-float"))?,
        ),
        CastOp::FpTrunc => RtVal::F32(
            a.as_f64()
                .ok_or_else(|| SimError::trap("fptrunc on non-float"))? as f32,
        ),
        CastOp::PtrToInt => int_to(
            to,
            a.as_ptr()
                .ok_or_else(|| SimError::trap("ptrtoint on non-pointer"))? as i64,
        ),
        CastOp::IntToPtr => RtVal::Ptr(
            a.as_i64()
                .ok_or_else(|| SimError::trap("inttoptr on non-int"))? as u64,
        ),
    };
    Ok(out)
}

fn int_to(ty: Type, v: i64) -> RtVal {
    match ty {
        Type::I1 => RtVal::Bool(v & 1 != 0),
        Type::I32 => RtVal::I32(v as i32),
        _ => RtVal::I64(v),
    }
}

/// Math intrinsics, dispatched on the plan-resolved [`MathKind`] —
/// no name strings in the hot path.
fn exec_math(kind: MathKind, f32out: bool, args: &[RtVal]) -> Result<RtVal, SimError> {
    let x = args
        .first()
        .and_then(|v| v.as_f64())
        .ok_or_else(|| SimError::trap(format!("bad argument to math fn {kind:?}")))?;
    let y = args.get(1).and_then(|v| v.as_f64()).unwrap_or(0.0);
    let r = match kind {
        MathKind::Sqrt => x.sqrt(),
        MathKind::Exp => x.exp(),
        MathKind::Log => x.ln(),
        MathKind::Sin => x.sin(),
        MathKind::Cos => x.cos(),
        MathKind::Fabs => x.abs(),
        MathKind::Pow => x.powf(y),
        MathKind::Fmin => x.min(y),
        MathKind::Fmax => x.max(y),
        MathKind::Floor => x.floor(),
    };
    Ok(if f32out {
        RtVal::F32(r as f32)
    } else {
        RtVal::F64(r)
    })
}
