//! Host-side device API: buffer management and kernel launches.
//!
//! At construction the device decodes the module into an
//! [`ExecPlan`] — resolving every call target and pre-sizing every
//! frame — so launches pay no per-step decode cost. Launches run each
//! team on its own [`crate::mem::TeamMemView`]; teams are independent,
//! so the scheduler can fan them out over host threads (`jobs`) and
//! still merge results deterministically in team-id order.

use crate::config::{DeviceConfig, Tier};
use crate::cost::CostModel;
use crate::error::SimError;
use crate::interp::{TeamExec, TeamOutcome};
use crate::mem::Memory;
use crate::plan::ExecPlan;
use crate::profile::{LaunchProfile, ProfileMode};
use crate::sanitize::{FaultPlan, Finding, SanitizeMode};
use crate::stats::KernelStats;
use crate::value::RtVal;
use omp_analysis::{kernel_register_estimate, CallGraph};
use omp_ir::{AddrSpace, ExecMode, Module, Type};
use std::time::Duration;

/// Launch geometry overrides.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchDims {
    /// Number of teams; falls back to kernel metadata, then the device
    /// default.
    pub teams: Option<u32>,
    /// Threads per team; falls back to `thread_limit`, then the default.
    pub threads: Option<u32>,
}

/// A simulated GPU bound to one compiled module. Owns device memory:
/// buffers persist across launches; shared memory and the globalization
/// heap are per-launch.
pub struct Device<'m> {
    pub(crate) module: &'m Module,
    pub(crate) plan: ExecPlan<'m>,
    pub(crate) cfg: DeviceConfig,
    pub(crate) cost: CostModel,
    pub(crate) mem: Memory,
    /// Placement of every module global, indexed densely by `GlobalId`.
    pub(crate) globals: Vec<(AddrSpace, u64)>,
    /// Global-space initializer payloads, re-applied by [`Device::reset`].
    global_inits: Vec<(u64, Vec<u8>)>,
    /// Global-memory bump-cursor position right after construction
    /// (module globals placed, no user buffers) — the state
    /// [`Device::reset`] rewinds to.
    base_cursor: u64,
    /// Host worker threads for team execution: 0 = auto (one per
    /// available core, capped by the team count), 1 = run inline.
    jobs: u32,
    /// Per-kernel static register estimates, cached across launches
    /// (pure function of the immutable module).
    reg_estimates: std::collections::HashMap<omp_ir::FuncId, u32>,
}

impl<'m> Device<'m> {
    /// Creates a device for `module`, placing its globals.
    pub fn new(module: &'m Module, cfg: DeviceConfig) -> Result<Device<'m>, SimError> {
        Self::with_cost(module, cfg, CostModel::default())
    }

    /// Creates a device with a custom cost model.
    pub fn with_cost(
        module: &'m Module,
        mut cfg: DeviceConfig,
        cost: CostModel,
    ) -> Result<Device<'m>, SimError> {
        if let Some(n) = std::env::var("OMPGPU_MAX_INSTS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.max_insts_per_thread = n;
        }
        if let Some(t) = std::env::var("OMPGPU_TIER")
            .ok()
            .and_then(|v| Tier::parse(&v))
        {
            cfg.tier = t;
        }
        // Tier-1 blocks pre-sum cycle charges from the device's cost
        // model, so plan construction takes it as an input.
        let plan = {
            let _span = omp_telemetry::span("execplan.build", "gpusim");
            ExecPlan::build_with_cost(module, &cost)?
        };
        // Lay out shared-space globals at the base of each team's shared
        // memory and global-space globals at the base of global memory.
        let mut shared_off = 0u64;
        let mut globals = vec![(AddrSpace::Global, 0u64); plan.num_globals()];
        let mut global_inits: Vec<(u64, Vec<u8>)> = Vec::new();
        // First pass: shared.
        for g in module.global_ids() {
            let gl = module.global(g);
            if gl.space == AddrSpace::Shared {
                shared_off = shared_off.div_ceil(gl.align.max(1)) * gl.align.max(1);
                globals[g.index()] = (AddrSpace::Shared, shared_off);
                shared_off += gl.size;
            }
        }
        let mut mem = Memory::new(&cfg, shared_off);
        for g in module.global_ids() {
            let gl = module.global(g);
            if gl.space == AddrSpace::Global {
                let addr = mem.alloc_global(gl.size)?;
                let off = addr & 0x0FFF_FFFF_FFFF_FFFF;
                globals[g.index()] = (AddrSpace::Global, off);
                if let Some(init) = &gl.init {
                    global_inits.push((addr, init.clone()));
                }
            }
        }
        for (addr, data) in &global_inits {
            mem.write_bytes(*addr, data)?;
        }
        let base_cursor = mem.global_cursor();
        let jobs = std::env::var("OMPGPU_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Ok(Device {
            module,
            plan,
            cfg,
            cost,
            mem,
            globals,
            global_inits,
            base_cursor,
            jobs,
            reg_estimates: std::collections::HashMap::new(),
        })
    }

    /// Restores the device to its freshly constructed memory state:
    /// every user buffer is released, global memory is zeroed, module
    /// global initializers are re-applied, and the launch high-water
    /// marks are cleared. The decoded [`ExecPlan`] and global placement
    /// survive untouched — that is the point: a long-lived service can
    /// reuse a warmed device across requests and still produce launches
    /// byte-identical to a cold `Device::new`.
    ///
    /// Mode switches (`set_profile`, `set_sanitize`, `set_fault_plan`,
    /// `set_watchdog`, `set_jobs`) are *not* reverted; callers that
    /// share a device across requests set them per request.
    pub fn reset(&mut self) {
        self.mem.reset_global(self.base_cursor);
        for (addr, data) in &self.global_inits {
            // Writing within [0, base_cursor) cannot fail: the region
            // was validated at construction and the buffer size is
            // unchanged.
            let _ = self.mem.write_bytes(*addr, data);
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Sets the number of host worker threads used to execute teams
    /// (0 = auto). Results are bit-identical for every setting; this
    /// only trades host wall-clock time.
    pub fn set_jobs(&mut self, jobs: u32) {
        self.jobs = jobs;
    }

    /// The configured host worker-thread count (0 = auto).
    pub fn jobs(&self) -> u32 {
        self.jobs
    }

    /// Enables or disables cycle-attribution profiling for subsequent
    /// launches. With [`ProfileMode::Off`] (the default) launches are
    /// byte-identical to a device that never profiled.
    pub fn set_profile(&mut self, mode: ProfileMode) {
        self.cfg.profile = mode;
    }

    /// Enables or disables the device sanitizer for subsequent
    /// launches. With [`SanitizeMode::Off`] (the default) launches are
    /// byte-identical to a device that never sanitized.
    pub fn set_sanitize(&mut self, mode: SanitizeMode) {
        self.cfg.sanitize = mode;
    }

    /// Installs a deterministic fault-injection plan for subsequent
    /// launches (see [`FaultPlan`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.cfg.fault = plan.clone();
        self.mem.set_fault_plan(plan);
    }

    /// Sets the per-team wall-clock watchdog (`None` = off). A team
    /// exceeding the budget fails its launch with a structured timeout
    /// diagnostic instead of hanging the caller.
    pub fn set_watchdog(&mut self, budget: Option<Duration>) {
        self.cfg.watchdog = budget;
    }

    /// Sets the per-thread dynamic instruction budget (runaway guard).
    pub fn set_max_insts(&mut self, budget: u64) {
        self.cfg.max_insts_per_thread = budget;
    }

    /// Requests an execution tier for subsequent launches. The tier
    /// that actually runs is [`DeviceConfig::effective_tier`]:
    /// profiling, sanitizing, and fault injection force the
    /// interpreter. Outputs, statistics, and simulated cycles are
    /// bit-identical across tiers; only host wall-clock differs.
    pub fn set_tier(&mut self, tier: Tier) {
        self.cfg.tier = tier;
    }

    /// Allocates a device buffer of `bytes` bytes; returns its address.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, SimError> {
        Ok(self.mem.alloc_global(bytes)?)
    }

    /// Allocates and fills a buffer of `f64`s.
    pub fn alloc_f64(&mut self, data: &[f64]) -> Result<u64, SimError> {
        let addr = self.alloc(8 * data.len().max(1) as u64)?;
        self.write_f64(addr, data)?;
        Ok(addr)
    }

    /// Allocates and fills a buffer of `f32`s.
    pub fn alloc_f32(&mut self, data: &[f32]) -> Result<u64, SimError> {
        let addr = self.alloc(4 * data.len().max(1) as u64)?;
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.mem.write_bytes(addr, &bytes)?;
        Ok(addr)
    }

    /// Allocates and fills a buffer of `i32`s.
    pub fn alloc_i32(&mut self, data: &[i32]) -> Result<u64, SimError> {
        let addr = self.alloc(4 * data.len().max(1) as u64)?;
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.mem.write_bytes(addr, &bytes)?;
        Ok(addr)
    }

    /// Allocates and fills a buffer of `i64`s.
    pub fn alloc_i64(&mut self, data: &[i64]) -> Result<u64, SimError> {
        let addr = self.alloc(8 * data.len().max(1) as u64)?;
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.mem.write_bytes(addr, &bytes)?;
        Ok(addr)
    }

    /// Writes `f64` data into a buffer.
    pub fn write_f64(&mut self, addr: u64, data: &[f64]) -> Result<(), SimError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        Ok(self.mem.write_bytes(addr, &bytes)?)
    }

    /// Reads `n` `f64`s from a buffer.
    pub fn read_f64(&mut self, addr: u64, n: usize) -> Result<Vec<f64>, SimError> {
        let bytes = self.mem.read_bytes(addr, n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads `n` `f32`s from a buffer.
    pub fn read_f32(&mut self, addr: u64, n: usize) -> Result<Vec<f32>, SimError> {
        let bytes = self.mem.read_bytes(addr, n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads `n` `i32`s from a buffer.
    pub fn read_i32(&mut self, addr: u64, n: usize) -> Result<Vec<i32>, SimError> {
        let bytes = self.mem.read_bytes(addr, n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads `n` `i64`s from a buffer.
    pub fn read_i64(&mut self, addr: u64, n: usize) -> Result<Vec<i64>, SimError> {
        let bytes = self.mem.read_bytes(addr, n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Launches the kernel whose source-level name is `name` with the
    /// given arguments. Returns launch statistics including the modelled
    /// kernel time.
    pub fn launch(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<KernelStats, SimError> {
        self.launch_full(name, args, dims)
            .map(|(stats, _, _)| stats)
    }

    /// Like [`Device::launch`], but also returns the launch's
    /// [`LaunchProfile`] when profiling is enabled (see
    /// [`Device::set_profile`]); `None` with profiling off.
    pub fn launch_profiled(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<(KernelStats, Option<LaunchProfile>), SimError> {
        self.launch_full(name, args, dims)
            .map(|(stats, profile, _)| (stats, profile))
    }

    /// Like [`Device::launch`], but also returns the sanitizer findings
    /// gathered by the launch, merged in team-id order (empty unless
    /// [`Device::set_sanitize`] enabled the sanitizer). The merge order
    /// makes findings bit-identical for every `jobs` setting.
    pub fn launch_checked(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<(KernelStats, Vec<Finding>), SimError> {
        self.launch_full(name, args, dims)
            .map(|(stats, _, findings)| (stats, findings))
    }

    pub(crate) fn launch_full(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<(KernelStats, Option<LaunchProfile>, Vec<Finding>), SimError> {
        let _span = omp_telemetry::span_lazy("gpusim", || format!("launch {name}"));
        let kernel = self
            .module
            .kernels
            .iter()
            .find(|k| k.source_name == name || self.module.func(k.func).name == name)
            .ok_or_else(|| SimError::unknown_kernel(name))?;
        let kfunc = kernel.func;
        self.validate_args(name, kfunc, args)?;
        let teams = dims
            .teams
            .or(kernel.num_teams)
            .unwrap_or(self.cfg.default_teams)
            .max(1);
        let threads = dims
            .threads
            .or(kernel.thread_limit)
            .unwrap_or(self.cfg.default_threads)
            .max(1);
        let mode = kernel.exec_mode;
        // Fresh per-launch memory regions (buffers persist).
        self.mem.reset_launch_state();
        let outcomes = self.run_teams(kfunc, args, teams, threads, mode)?;
        let mut stats = KernelStats::default();
        let mut team_cycles = Vec::with_capacity(outcomes.len());
        let mut team_profiles = Vec::new();
        let mut findings = Vec::new();
        for outcome in outcomes {
            // Team-id order: the merge below makes parallel execution
            // bit-identical to sequential.
            team_cycles.push(outcome.cycles);
            outcome.stats.merge_into(&mut stats);
            if let Some(p) = outcome.profile {
                team_profiles.push(p);
            }
            findings.extend(outcome.findings);
            self.mem.apply_delta(outcome.delta);
        }
        stats.team_cycles = team_cycles;
        stats.tier = self.cfg.effective_tier();
        stats.finish(self.cfg.num_sms);
        stats.shared_mem_bytes = self.mem.shared_high_water;
        stats.heap_bytes = self.mem.heap_high_water;
        stats.registers = self.register_estimate(kfunc);
        let profile = (self.cfg.profile == ProfileMode::On)
            .then(|| LaunchProfile::assemble(self.module, self.cfg.num_sms, &stats, team_profiles));
        Ok((stats, profile, findings))
    }

    /// Checks the argument vector against the kernel function's
    /// signature and rejects launches of declarations. Shared by single
    /// launches and (once, at resolution/capture time) launch plans.
    pub(crate) fn validate_args(
        &self,
        name: &str,
        kfunc: omp_ir::FuncId,
        args: &[RtVal],
    ) -> Result<(), SimError> {
        let f = self.module.func(kfunc);
        if f.params.len() != args.len() {
            return Err(SimError::bad_args(format!(
                "kernel `{name}` expects {} arguments, got {}",
                f.params.len(),
                args.len()
            )));
        }
        for (i, (a, p)) in args.iter().zip(&f.params).enumerate() {
            let compatible = match p {
                Type::Ptr => a.ty() == Type::Ptr,
                t => a.ty() == *t,
            };
            if !compatible {
                return Err(SimError::bad_args(format!(
                    "argument {i} of `{name}`: expected {p}, got {:?}",
                    a.ty()
                )));
            }
        }
        if self.plan.func(kfunc).is_none() {
            return Err(SimError::trap(format!("kernel `{name}` is a declaration")));
        }
        Ok(())
    }

    /// Static register estimate over all functions reachable from the
    /// kernel. Indirect calls add a fixed penalty: the toolchain must
    /// assume spurious call edges to every address-taken function
    /// (the paper's PR46450 register-pressure effect that the custom
    /// state-machine rewrite eliminates). The estimate is a pure
    /// function of the (immutable) module, so it is computed once per
    /// kernel and cached across launches.
    pub(crate) fn register_estimate(&mut self, kfunc: omp_ir::FuncId) -> u32 {
        match self.reg_estimates.get(&kfunc) {
            Some(&r) => r,
            None => {
                let cg = CallGraph::build(self.module);
                let reachable = cg.reachable_from([kfunc]);
                let has_indirect = reachable.iter().any(|f| cg.has_indirect_call.contains(f));
                let mut r = kernel_register_estimate(self.module, reachable.iter().copied());
                if has_indirect {
                    r += 24;
                }
                self.reg_estimates.insert(kfunc, r);
                r
            }
        }
    }

    /// Resolves the configured `jobs` setting (0 = auto) against a team
    /// count: the number of host worker threads a launch of `teams`
    /// teams fans out over.
    pub(crate) fn worker_count(&self, teams: u32) -> u32 {
        match self.jobs {
            0 => std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
            n => n,
        }
        .min(teams)
        .max(1)
    }

    /// Runs all teams of a launch — inline, or fanned out over `jobs`
    /// host threads — and returns their outcomes in team-id order. On
    /// error, the lowest team id's error is returned (the one sequential
    /// execution would hit first) and no memory effects are applied.
    pub(crate) fn run_teams(
        &self,
        kfunc: omp_ir::FuncId,
        args: &[RtVal],
        teams: u32,
        threads: u32,
        mode: ExecMode,
    ) -> Result<Vec<TeamOutcome>, SimError> {
        let jobs = self.worker_count(teams);
        let run_one = |team_id: u32| -> Result<TeamOutcome, SimError> {
            if self.cfg.fault.abort_team == Some(team_id) {
                return Err(SimError::fault_injected(format!("team {team_id} aborted")));
            }
            let te = TeamExec::new(
                self.module,
                &self.plan,
                &self.cfg,
                &self.cost,
                &self.globals,
                self.mem.team_view(team_id),
                teams,
                threads,
                team_id,
                mode,
                kfunc,
                args,
            );
            te.run()
        };
        let mut slots: Vec<Option<Result<TeamOutcome, SimError>>> =
            (0..teams).map(|_| None).collect();
        if jobs <= 1 {
            for team_id in 0..teams {
                let r = run_one(team_id);
                let failed = r.is_err();
                slots[team_id as usize] = Some(r);
                if failed {
                    break;
                }
            }
        } else {
            // Round-robin team assignment: worker w runs teams w, w+jobs,
            // w+2*jobs, ... and stops its own chain at the first error.
            let mut worker_panicked = false;
            std::thread::scope(|s| {
                let run_one = &run_one;
                let handles: Vec<_> = (0..jobs)
                    .map(|w| {
                        s.spawn(move || {
                            let mut out = Vec::new();
                            let mut team_id = w;
                            while team_id < teams {
                                let r = run_one(team_id);
                                let failed = r.is_err();
                                out.push((team_id, r));
                                if failed {
                                    break;
                                }
                                team_id += jobs;
                            }
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(results) => {
                            for (team_id, r) in results {
                                slots[team_id as usize] = Some(r);
                            }
                        }
                        // A panicking worker is an internal bug; turn it
                        // into a structured error so the launch never
                        // propagates the panic or wedges siblings.
                        Err(_) => worker_panicked = true,
                    }
                }
            });
            if worker_panicked {
                return Err(SimError::trap("internal: team worker thread panicked"));
            }
        }
        // Scan in team-id order: the first error found is the one with
        // the lowest team id, because a missing slot can only trail an
        // error in the same worker's chain.
        let mut outcomes = Vec::with_capacity(teams as usize);
        for slot in slots {
            match slot {
                Some(Ok(o)) => outcomes.push(o),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(SimError::trap(
                        "internal: team skipped without a prior error",
                    ))
                }
            }
        }
        Ok(outcomes)
    }
}
