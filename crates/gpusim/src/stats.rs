//! Launch statistics — the quantities the paper's Figure 10 reports
//! (kernel time, shared memory, registers) plus diagnostic counters.

use std::collections::HashMap;

/// Statistics of one kernel launch.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Kernel time in model cycles: teams are scheduled round-robin over
    /// SMs, SM time is the sum of its teams, kernel time the max SM.
    pub cycles: u64,
    /// Per-team cycle counts.
    pub team_cycles: Vec<u64>,
    /// Shared-memory footprint in bytes (static shared globals plus the
    /// globalization stack high-water mark) — Figure 10's "SMem" column.
    pub shared_mem_bytes: u64,
    /// Device-heap (globalization fallback) high-water mark in bytes.
    pub heap_bytes: u64,
    /// Estimated registers per thread — Figure 10's "# Regs" column.
    pub registers: u32,
    /// Total executed instructions across all threads.
    pub instructions: u64,
    /// Dynamic calls to each runtime entry point.
    pub rtl_calls: HashMap<String, u64>,
    /// Globalization allocations performed.
    pub globalization_allocs: u64,
    /// Barriers executed (per group release).
    pub barriers: u64,
    /// Indirect calls executed.
    pub indirect_calls: u64,
    /// Generic-mode parallel-region dispatches.
    pub parallel_regions: u64,
    /// Memory accesses executed.
    pub memory_accesses: u64,
    /// Global-memory accesses classified as coalesced.
    pub coalesced_accesses: u64,
    /// Global-memory accesses classified as uncoalesced.
    pub uncoalesced_accesses: u64,
}

impl KernelStats {
    /// Dynamic count of calls to the named runtime function.
    pub fn rtl_count(&self, name: &str) -> u64 {
        self.rtl_calls.get(name).copied().unwrap_or(0)
    }

    /// Aggregates team cycles into the kernel time given an SM count:
    /// team `i` runs on SM `i % num_sms`; SM time is the sum of its
    /// teams; kernel time is the maximum SM time.
    pub fn finish(&mut self, num_sms: u32) {
        let n = num_sms.max(1) as usize;
        let mut sm = vec![0u64; n];
        for (i, &c) in self.team_cycles.iter().enumerate() {
            sm[i % n] += c;
        }
        self.cycles = sm.into_iter().max().unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_aggregation() {
        let mut s = KernelStats {
            team_cycles: vec![100, 200, 300, 400],
            ..KernelStats::default()
        };
        s.finish(2);
        // SM0: 100 + 300 = 400; SM1: 200 + 400 = 600.
        assert_eq!(s.cycles, 600);
        s.finish(4);
        assert_eq!(s.cycles, 400);
        s.finish(1);
        assert_eq!(s.cycles, 1000);
    }

    #[test]
    fn rtl_count_lookup() {
        let mut s = KernelStats::default();
        s.rtl_calls.insert("__kmpc_barrier".into(), 3);
        assert_eq!(s.rtl_count("__kmpc_barrier"), 3);
        assert_eq!(s.rtl_count("nope"), 0);
    }
}
