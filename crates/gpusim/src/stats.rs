//! Launch statistics — the quantities the paper's Figure 10 reports
//! (kernel time, shared memory, registers) plus diagnostic counters.

use crate::config::Tier;
use std::collections::HashMap;

/// Statistics of one kernel launch.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Kernel time in model cycles: teams are scheduled round-robin over
    /// SMs, SM time is the sum of its teams, kernel time the max SM.
    pub cycles: u64,
    /// Per-team cycle counts.
    pub team_cycles: Vec<u64>,
    /// Shared-memory footprint in bytes (static shared globals plus the
    /// globalization stack high-water mark) — Figure 10's "SMem" column.
    pub shared_mem_bytes: u64,
    /// Device-heap (globalization fallback) high-water mark in bytes.
    pub heap_bytes: u64,
    /// Estimated registers per thread — Figure 10's "# Regs" column.
    pub registers: u32,
    /// Total executed instructions across all threads.
    pub instructions: u64,
    /// Dynamic calls to each runtime entry point.
    pub rtl_calls: HashMap<String, u64>,
    /// Globalization allocations performed.
    pub globalization_allocs: u64,
    /// Barriers executed (per group release).
    pub barriers: u64,
    /// Indirect calls executed.
    pub indirect_calls: u64,
    /// Generic-mode parallel-region dispatches.
    pub parallel_regions: u64,
    /// Memory accesses executed.
    pub memory_accesses: u64,
    /// Global-memory accesses classified as coalesced.
    pub coalesced_accesses: u64,
    /// Global-memory accesses classified as uncoalesced.
    pub uncoalesced_accesses: u64,
    /// Tier-1 steps executed through the `gep+load` superinstruction.
    pub fused_gep_load: u64,
    /// Tier-1 steps executed through the `load+bin+store`
    /// superinstruction.
    pub fused_load_bin_store: u64,
    /// Tier-1 fused compare-and-branch terminators executed.
    pub fused_cmp_br: u64,
    /// Tier-1 steps executed without fusion. Together with the fused
    /// counters this gives the superinstruction hit rate; all four are
    /// zero under the interpreter tier and therefore tier-*dependent*
    /// (unlike every counter above, which is bit-identical across
    /// tiers).
    pub plain_steps: u64,
    /// Execution tier this launch ran under
    /// ([`crate::DeviceConfig::effective_tier`]). Every counter above is
    /// bit-identical across tiers; the tier is recorded so regressions
    /// are diagnosable from artifacts alone.
    pub tier: Tier,
}

/// A deterministic, order-stable projection of [`KernelStats`]: the
/// `rtl_calls` map is flattened into a name-sorted vector so two runs of
/// the same program compare equal with `==` and serialize identically —
/// the form the differential oracle records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Kernel time in model cycles.
    pub cycles: u64,
    /// Shared-memory footprint in bytes.
    pub shared_mem_bytes: u64,
    /// Device-heap (globalization fallback) high-water mark in bytes.
    pub heap_bytes: u64,
    /// Estimated registers per thread.
    pub registers: u32,
    /// Total executed instructions across all threads.
    pub instructions: u64,
    /// Globalization allocations performed.
    pub globalization_allocs: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Indirect calls executed.
    pub indirect_calls: u64,
    /// Generic-mode parallel-region dispatches.
    pub parallel_regions: u64,
    /// Memory accesses executed.
    pub memory_accesses: u64,
    /// Execution tier the launch ran under (`interp` or `compiled`).
    /// Informational: all other fields are bit-identical across tiers,
    /// except the superinstruction counters below.
    pub tier: Tier,
    /// Superinstruction hit counters, in the fixed order `gep_load`,
    /// `load_bin_store`, `cmp_br`, `plain`. Tier-dependent (all zero
    /// under the interpreter) — cross-tier comparisons must zero them
    /// alongside normalizing `tier`.
    pub superinstructions: [u64; 4],
    /// Dynamic calls per runtime entry point, sorted by name.
    pub rtl_calls: Vec<(String, u64)>,
}

impl StatsSnapshot {
    /// Folds this launch into a [`omp_telemetry::MetricsRegistry`]:
    /// per-tier launch counts, instruction/memory/barrier counters, the
    /// deopt (unfused-step) counter, and a histogram of kernel model
    /// cycles. Every input is deterministic, so identical launches
    /// produce bit-identical registries; the `sim.launches.<tier>` and
    /// `sim.deopt_steps` entries are tier-*dependent* (like the
    /// superinstruction counters they derive from) and must be
    /// normalized before cross-tier comparison.
    pub fn record_metrics(&self, reg: &mut omp_telemetry::MetricsRegistry) {
        reg.counter_add("sim.launches", 1);
        reg.counter_add(&format!("sim.launches.{}", self.tier.as_str()), 1);
        reg.counter_add("sim.instructions", self.instructions);
        reg.counter_add("sim.memory_accesses", self.memory_accesses);
        reg.counter_add("sim.barriers", self.barriers);
        reg.counter_add("sim.parallel_regions", self.parallel_regions);
        reg.counter_add("sim.globalization_allocs", self.globalization_allocs);
        reg.counter_add("sim.deopt_steps", self.superinstructions[3]);
        reg.observe("sim.kernel_cycles", self.cycles);
    }

    /// Serializes to one flat JSON object with stable field order.
    pub fn to_json(&self) -> String {
        let mut w = omp_json::JsonWriter::with_capacity(256);
        w.begin_object();
        for (k, v) in [
            ("cycles", self.cycles),
            ("shared_mem_bytes", self.shared_mem_bytes),
            ("heap_bytes", self.heap_bytes),
            ("registers", self.registers as u64),
            ("instructions", self.instructions),
            ("globalization_allocs", self.globalization_allocs),
            ("barriers", self.barriers),
            ("indirect_calls", self.indirect_calls),
            ("parallel_regions", self.parallel_regions),
            ("memory_accesses", self.memory_accesses),
        ] {
            w.key(k).u64(v);
        }
        w.key("tier").string(self.tier.as_str());
        w.key("superinstructions").begin_object();
        for (k, v) in [
            ("gep_load", self.superinstructions[0]),
            ("load_bin_store", self.superinstructions[1]),
            ("cmp_br", self.superinstructions[2]),
            ("plain", self.superinstructions[3]),
        ] {
            w.key(k).u64(v);
        }
        w.end_object();
        w.key("rtl_calls").begin_object();
        for (name, n) in &self.rtl_calls {
            w.key(name).u64(*n);
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

impl KernelStats {
    /// Dynamic count of calls to the named runtime function.
    pub fn rtl_count(&self, name: &str) -> u64 {
        self.rtl_calls.get(name).copied().unwrap_or(0)
    }

    /// Deterministic snapshot (sorted `rtl_calls`) for comparison and
    /// serialization.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut rtl_calls: Vec<(String, u64)> = self
            .rtl_calls
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        rtl_calls.sort();
        StatsSnapshot {
            cycles: self.cycles,
            shared_mem_bytes: self.shared_mem_bytes,
            heap_bytes: self.heap_bytes,
            registers: self.registers,
            instructions: self.instructions,
            globalization_allocs: self.globalization_allocs,
            barriers: self.barriers,
            indirect_calls: self.indirect_calls,
            parallel_regions: self.parallel_regions,
            memory_accesses: self.memory_accesses,
            tier: self.tier,
            superinstructions: [
                self.fused_gep_load,
                self.fused_load_bin_store,
                self.fused_cmp_br,
                self.plain_steps,
            ],
            rtl_calls,
        }
    }

    /// Aggregates team cycles into the kernel time given an SM count:
    /// team `i` runs on SM `i % num_sms`; SM time is the sum of its
    /// teams; kernel time is the maximum SM time.
    pub fn finish(&mut self, num_sms: u32) {
        let n = num_sms.max(1) as usize;
        let mut sm = vec![0u64; n];
        for (i, &c) in self.team_cycles.iter().enumerate() {
            sm[i % n] += c;
        }
        self.cycles = sm.into_iter().max().unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_aggregation() {
        let mut s = KernelStats {
            team_cycles: vec![100, 200, 300, 400],
            ..KernelStats::default()
        };
        s.finish(2);
        // SM0: 100 + 300 = 400; SM1: 200 + 400 = 600.
        assert_eq!(s.cycles, 600);
        s.finish(4);
        assert_eq!(s.cycles, 400);
        s.finish(1);
        assert_eq!(s.cycles, 1000);
    }

    #[test]
    fn rtl_count_lookup() {
        let mut s = KernelStats::default();
        s.rtl_calls.insert("__kmpc_barrier".into(), 3);
        assert_eq!(s.rtl_count("__kmpc_barrier"), 3);
        assert_eq!(s.rtl_count("nope"), 0);
    }

    #[test]
    fn snapshot_sorts_rtl_calls_and_compares_equal() {
        let mut a = KernelStats::default();
        a.rtl_calls.insert("b".into(), 2);
        a.rtl_calls.insert("a".into(), 1);
        let mut b = KernelStats::default();
        b.rtl_calls.insert("a".into(), 1);
        b.rtl_calls.insert("b".into(), 2);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(
            a.snapshot().rtl_calls,
            vec![("a".to_string(), 1), ("b".to_string(), 2)]
        );
        assert_eq!(a.snapshot().to_json(), b.snapshot().to_json());
    }

    #[test]
    fn snapshot_json_shape() {
        let mut s = KernelStats {
            cycles: 7,
            ..KernelStats::default()
        };
        s.rtl_calls.insert("__kmpc_barrier".into(), 3);
        let j = s.snapshot().to_json();
        assert!(j.starts_with("{\"cycles\":7,"));
        assert!(j.contains("\"tier\":\"compiled\""));
        assert!(j.contains(
            "\"superinstructions\":{\"gep_load\":0,\"load_bin_store\":0,\"cmp_br\":0,\"plain\":0}"
        ));
        assert!(j.contains("\"rtl_calls\":{\"__kmpc_barrier\":3}"));
        assert!(j.ends_with("}}"));
    }

    #[test]
    fn snapshot_carries_superinstruction_counters() {
        let s = KernelStats {
            fused_gep_load: 4,
            fused_load_bin_store: 3,
            fused_cmp_br: 2,
            plain_steps: 11,
            ..KernelStats::default()
        };
        let snap = s.snapshot();
        assert_eq!(snap.superinstructions, [4, 3, 2, 11]);
        let j = snap.to_json();
        assert!(j.contains(
            "\"superinstructions\":{\"gep_load\":4,\"load_bin_store\":3,\"cmp_br\":2,\"plain\":11}"
        ));
    }
}
