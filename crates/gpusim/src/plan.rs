//! Precompiled execution plans: the module is decoded **once** at
//! device construction into flat per-function tables, so the hot
//! interpreter loop never clones instruction kinds or terminators and
//! never resolves a callee by string comparison.
//!
//! A [`FuncPlan`] holds, per defined function:
//!
//! * block bodies split into leading phis and straight-line code, each
//!   entry borrowing the instruction from the module arena;
//! * the pre-resolved [`CallTarget`] of every direct call site
//!   (runtime entry point, math intrinsic, or ordinary function);
//! * `num_regs`, the register-file size a frame needs (the instruction
//!   arena bound), so frames are allocated at full size exactly once;
//! * `site_base`, this function's offset into the plan-wide dense
//!   access-site index used by the coalescing tables.
//!
//! Plan construction validates every call and operand: a call to an
//! undefined function id is a clean [`SimError`] at `Device::new` time
//! instead of an index panic mid-run.

use crate::compile::{self, CompiledBlock};
use crate::cost::CostModel;
use crate::error::SimError;
use omp_ir::omprtl::{math_fn_signature, RtlFn, ALL_RTL_FNS};
use omp_ir::{BlockId, FuncId, InstId, InstKind, Module, Terminator, Value};

/// Number of runtime entry points — the size of the dense per-team
/// runtime-call counter table.
pub(crate) const NUM_RTL_FNS: usize = ALL_RTL_FNS.len();

/// A math intrinsic, resolved from its name at plan-build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MathKind {
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Fabs,
    Pow,
    Fmin,
    Fmax,
    Floor,
}

impl MathKind {
    fn from_name(name: &str) -> Option<MathKind> {
        Some(match name.trim_end_matches('f') {
            "sqrt" => MathKind::Sqrt,
            "exp" => MathKind::Exp,
            "log" => MathKind::Log,
            "sin" => MathKind::Sin,
            "cos" => MathKind::Cos,
            "fabs" => MathKind::Fabs,
            "pow" => MathKind::Pow,
            "fmin" => MathKind::Fmin,
            "fmax" => MathKind::Fmax,
            "floor" => MathKind::Floor,
            _ => return None,
        })
    }
}

/// Pre-resolved dispatch target of a call.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CallTarget {
    /// Call into a defined function body.
    Direct(FuncId),
    /// OpenMP device runtime entry point.
    Rtl(RtlFn),
    /// Math intrinsic (`true` = `f32` result, the `-f` suffix forms).
    Math(MathKind, bool),
    /// Declaration with no runtime semantics — traps if executed.
    Extern(FuncId),
    /// Callee is a runtime value; resolved per execution.
    Indirect,
}

/// One basic block, decoded: leading phis (evaluated on block entry),
/// the remaining instructions, and the terminator — all borrowed from
/// the module, never cloned.
pub(crate) struct BlockPlan<'m> {
    pub phis: Vec<(InstId, &'m [(BlockId, Value)])>,
    pub code: Vec<(InstId, &'m InstKind)>,
    pub term: &'m Terminator,
    /// Tier-1 lowering of this block ([`crate::compile`]); `None` when
    /// the block contains a construct only the interpreter handles.
    pub compiled: Option<CompiledBlock>,
}

/// The decoded form of one defined function.
pub(crate) struct FuncPlan<'m> {
    pub entry: BlockId,
    /// Frame register-file size: one slot per instruction-arena entry.
    pub num_regs: usize,
    /// Offset of this function's sites in the dense plan-wide index.
    pub site_base: u32,
    /// Indexed by `BlockId`; `None` for dead arena slots.
    pub blocks: Vec<Option<BlockPlan<'m>>>,
    /// Indexed by `InstId`; meaningful only at `Call` instructions.
    pub call_targets: Vec<CallTarget>,
}

impl<'m> FuncPlan<'m> {
    #[inline]
    pub fn block(&self, id: BlockId) -> &BlockPlan<'m> {
        self.blocks[id.index()]
            .as_ref()
            .expect("dead block executed")
    }
}

/// The precompiled execution plan for a module: per-function tables
/// plus the function-nature table used to dispatch indirect calls.
pub struct ExecPlan<'m> {
    funcs: Vec<Option<FuncPlan<'m>>>,
    /// Indexed by `FuncId`: how a call to that function dispatches
    /// (never `Indirect`).
    nature: Vec<CallTarget>,
    /// Total number of access sites across all functions — the length
    /// of the dense coalescing-state tables.
    total_sites: u32,
    num_globals: usize,
}

impl<'m> ExecPlan<'m> {
    /// Decodes `module` into an execution plan, validating every call
    /// target and operand reference. Tier-1 blocks are compiled against
    /// the default cost model; use [`ExecPlan::build_with_cost`] when
    /// the device charges a non-default one.
    pub fn build(module: &'m Module) -> Result<ExecPlan<'m>, SimError> {
        Self::build_with_cost(module, &CostModel::default())
    }

    /// Like [`ExecPlan::build`], pre-summing tier-1 block cycle costs
    /// from `cost` so compiled-tier charges are bit-identical to the
    /// interpreter's under any cost model.
    pub fn build_with_cost(module: &'m Module, cost: &CostModel) -> Result<ExecPlan<'m>, SimError> {
        let num_functions = module.num_functions();
        let num_globals = module.global_ids().count();
        let mut nature = Vec::with_capacity(num_functions);
        for fid in module.func_ids() {
            let f = module.func(fid);
            nature.push(if let Some(rtl) = RtlFn::from_name(&f.name) {
                CallTarget::Rtl(rtl)
            } else if math_fn_signature(&f.name).is_some() {
                let kind = MathKind::from_name(&f.name)
                    .ok_or_else(|| SimError::trap(format!("unknown math fn {}", f.name)))?;
                CallTarget::Math(kind, f.name.ends_with('f'))
            } else if f.is_declaration() {
                CallTarget::Extern(fid)
            } else {
                CallTarget::Direct(fid)
            });
        }
        let mut funcs: Vec<Option<FuncPlan<'m>>> = Vec::with_capacity(num_functions);
        let mut total_sites: u32 = 0;
        for fid in module.func_ids() {
            let f = module.func(fid);
            if f.is_declaration() {
                funcs.push(None);
                continue;
            }
            let check =
                |v: Value| -> Result<(), SimError> {
                    match v {
                        Value::Func(g) if g.index() >= num_functions => Err(SimError::trap(
                            format!("@{}: reference to undefined function {g}", f.name),
                        )),
                        Value::Global(g) if g.index() >= num_globals => Err(SimError::trap(
                            format!("@{}: reference to undefined global {g}", f.name),
                        )),
                        _ => Ok(()),
                    }
                };
            let mut num_regs = 0usize;
            let mut max_block = 0usize;
            for b in f.block_ids() {
                max_block = max_block.max(b.index() + 1);
                for &i in &f.block(b).insts {
                    num_regs = num_regs.max(i.index() + 1);
                }
            }
            let mut blocks: Vec<Option<BlockPlan<'m>>> = (0..max_block).map(|_| None).collect();
            let mut call_targets = vec![CallTarget::Indirect; num_regs];
            for b in f.block_ids() {
                let data = f.block(b);
                let mut phis = Vec::new();
                let mut code = Vec::new();
                let mut in_header = true;
                for &i in &data.insts {
                    let kind = f.inst(i);
                    match kind {
                        InstKind::Phi { incoming, .. } if in_header => {
                            for &(_, v) in incoming.iter() {
                                check(v)?;
                            }
                            phis.push((i, incoming.as_slice()));
                            continue;
                        }
                        _ => in_header = false,
                    }
                    for_each_operand(kind, &mut |v| check(v).is_ok())
                        .then_some(())
                        .ok_or_else(|| bad_operand(&f.name, kind, num_functions, num_globals))?;
                    if let InstKind::Call {
                        callee: Value::Func(g),
                        ..
                    } = *kind
                    {
                        // `check` above already rejected out-of-range
                        // ids; resolve in-range ones to their nature.
                        call_targets[i.index()] = nature[g.index()];
                    }
                    code.push((i, kind));
                }
                match &data.term {
                    Terminator::CondBr { cond, .. } => check(*cond)?,
                    Terminator::Ret(Some(v)) => check(*v)?,
                    _ => {}
                }
                blocks[b.index()] = Some(BlockPlan {
                    phis,
                    code,
                    term: &data.term,
                    compiled: None,
                });
            }
            compile::compile_func(&mut blocks, &call_targets, num_regs, total_sites, cost);
            funcs.push(Some(FuncPlan {
                entry: f.entry(),
                num_regs,
                site_base: total_sites,
                blocks,
                call_targets,
            }));
            total_sites += num_regs as u32;
        }
        Ok(ExecPlan {
            funcs,
            nature,
            total_sites,
            num_globals,
        })
    }

    /// The decoded plan for a defined function, or `None` for
    /// declarations.
    #[inline]
    pub(crate) fn func(&self, id: FuncId) -> Option<&FuncPlan<'m>> {
        self.funcs.get(id.index()).and_then(|f| f.as_ref())
    }

    /// How a call to `id` dispatches, or `None` if out of range.
    #[inline]
    pub(crate) fn nature(&self, id: FuncId) -> Option<CallTarget> {
        self.nature.get(id.index()).copied()
    }

    /// Total access-site count (dense coalescing-table length).
    #[inline]
    pub(crate) fn total_sites(&self) -> u32 {
        self.total_sites
    }

    /// Number of globals the plan was validated against.
    pub(crate) fn num_globals(&self) -> usize {
        self.num_globals
    }
}

fn bad_operand(func: &str, kind: &InstKind, num_functions: usize, num_globals: usize) -> SimError {
    // Re-walk to produce a precise message (cold path).
    let mut msg = format!("@{func}: invalid operand in {kind:?}");
    for_each_operand(kind, &mut |v| {
        match v {
            Value::Func(g) if g.index() >= num_functions => {
                msg = format!("@{func}: call or reference to undefined function {g}");
            }
            Value::Global(g) if g.index() >= num_globals => {
                msg = format!("@{func}: reference to undefined global {g}");
            }
            _ => {}
        }
        true
    });
    SimError::trap(msg)
}

/// Visits each operand; stops early (returning `false`) when the
/// visitor does.
pub(crate) fn for_each_operand(kind: &InstKind, f: &mut impl FnMut(Value) -> bool) -> bool {
    let mut ok = true;
    let mut visit = |v: Value| {
        if ok && !f(v) {
            ok = false;
        }
    };
    match kind {
        InstKind::Alloca { .. } => {}
        InstKind::Load { ptr, .. } => visit(*ptr),
        InstKind::Store { ptr, val } => {
            visit(*ptr);
            visit(*val);
        }
        InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
            visit(*lhs);
            visit(*rhs);
        }
        InstKind::Cast { val, .. } => visit(*val),
        InstKind::Gep { base, index, .. } => {
            visit(*base);
            visit(*index);
        }
        InstKind::Call { callee, args, .. } => {
            visit(*callee);
            for a in args {
                visit(*a);
            }
        }
        InstKind::Select {
            cond,
            on_true,
            on_false,
            ..
        } => {
            visit(*cond);
            visit(*on_true);
            visit(*on_false);
        }
        InstKind::Phi { incoming, .. } => {
            for &(_, v) in incoming {
                visit(v);
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use omp_ir::{Function, Type};

    fn module_with_call(callee: Value) -> Module {
        let mut m = Module::new("t");
        let mut f = Function::definition("k", vec![], Type::Void);
        let e = f.entry();
        f.append_inst(
            e,
            InstKind::Call {
                callee,
                args: vec![],
                ret: Type::Void,
            },
        );
        f.block_mut(e).term = Terminator::Ret(None);
        m.add_function(f);
        m
    }

    #[test]
    fn plan_rejects_call_to_undefined_function() {
        let m = module_with_call(Value::Func(FuncId(999)));
        let err = ExecPlan::build(&m).err().expect("must not build");
        match err.kind {
            crate::error::SimErrorKind::Trap(msg) => {
                assert!(msg.contains("undefined function"), "{msg}")
            }
            other => panic!("expected a trap, got {other:?}"),
        }
    }

    #[test]
    fn plan_rejects_reference_to_undefined_global() {
        let mut m = Module::new("t");
        let mut f = Function::definition("k", vec![], Type::Void);
        let e = f.entry();
        f.append_inst(
            e,
            InstKind::Load {
                ptr: Value::Global(omp_ir::GlobalId(7)),
                ty: Type::I64,
            },
        );
        f.block_mut(e).term = Terminator::Ret(None);
        m.add_function(f);
        assert!(matches!(
            ExecPlan::build(&m),
            Err(e) if matches!(e.kind, crate::error::SimErrorKind::Trap(_))
        ));
    }

    #[test]
    fn plan_resolves_rtl_and_direct_targets() {
        let mut m = Module::new("t");
        let rtl = m.add_function(Function::declaration("__kmpc_barrier", vec![], Type::Void));
        let mut f = Function::definition("k", vec![], Type::Void);
        let e = f.entry();
        let call = f.append_inst(
            e,
            InstKind::Call {
                callee: Value::Func(rtl),
                args: vec![],
                ret: Type::Void,
            },
        );
        f.block_mut(e).term = Terminator::Ret(None);
        let k = m.add_function(f);
        let plan = ExecPlan::build(&m).unwrap();
        let fp = plan.func(k).unwrap();
        assert!(matches!(
            fp.call_targets[call.index()],
            CallTarget::Rtl(RtlFn::Barrier)
        ));
        assert!(matches!(plan.nature(k), Some(CallTarget::Direct(_))));
        assert!(plan.func(rtl).is_none());
    }
}
