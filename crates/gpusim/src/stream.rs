//! Host-side streams, events, and task-graph capture-and-replay.
//!
//! A host function with several `target` regions lowers to a *launch
//! plan*: every kernel sharing one `source_name`, in module order, each
//! carrying its [`omp_ir::LaunchAttrs`] (`nowait`, `depend`,
//! `taskwait`, `taskgraph` membership). This module resolves a plan
//! into explicit dependency edges, assigns nodes to streams, and
//! executes them — eagerly ([`Device::launch_plan`]) or through
//! capture-and-replay ([`Device::capture_graph`] /
//! [`Device::replay_graph`]), the simulator's analogue of CUDA Graphs.
//!
//! **Determinism invariant.** Plan nodes always *execute* sequentially
//! in submission order: node `j` sees the global-memory writes of every
//! node `i < j`, exactly as if each were a separate [`Device::launch`].
//! Stream overlap is modelled only in the *cycle makespan*, via a
//! deterministic list schedule over the device's SMs (no host timing,
//! no seeds). Outputs, statistics, cycles, profiles, and sanitizer
//! findings are therefore bit-identical across `--jobs`, execution
//! tiers, and eager-vs-replay execution.
//!
//! **What a replay skips.** Capture resolves the plan once: kernel
//! lookup, argument validation and marshalling, geometry resolution,
//! edge derivation, stream assignment, and register estimation. Replays
//! additionally run all nodes on one persistent worker pool
//! (barrier-coordinated) instead of spawning a fresh thread set per
//! node — the per-launch setup cost the paper's Figure 10 amortizes.

use crate::config::Tier;
use crate::error::SimError;
use crate::interp::{TeamExec, TeamOutcome};
use crate::launch::{Device, LaunchDims};
use crate::mem::{Memory, PAGE_BYTES};
use crate::profile::{LaunchProfile, ProfileMode, StreamSpan, TeamProfile};
use crate::sanitize::{Finding, FindingKind, SanitizeMode, Severity};
use crate::stats::KernelStats;
use crate::value::RtVal;
use omp_ir::{ExecMode, FuncId, LaunchAttrs};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

/// One resolved launch node of a host plan: kernel, geometry, and
/// dependency edges, pre-resolved so eager launches and graph replays
/// feed the exact same inputs to the team executor.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub(crate) kfunc: FuncId,
    /// Device function name (diagnostics, profiler stream spans).
    pub(crate) label: String,
    pub(crate) teams: u32,
    pub(crate) threads: u32,
    pub(crate) mode: ExecMode,
    /// Indices of earlier nodes this node waits for (sorted, deduped).
    pub(crate) deps: Vec<usize>,
    /// Deterministically assigned stream (greedy reuse: a node joins
    /// the lowest stream whose latest node it depends on).
    pub(crate) stream: u32,
}

impl PlanNode {
    /// Device function name of the node's kernel.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Stream the node was assigned to.
    pub fn stream(&self) -> u32 {
        self.stream
    }

    /// Indices of the nodes this node waits for.
    pub fn deps(&self) -> &[usize] {
        &self.deps
    }
}

/// A resolved host launch plan: every kernel sharing one `source_name`
/// in module order, with derived dependency edges and stream
/// assignments.
#[derive(Debug, Clone)]
pub struct LaunchPlan {
    pub(crate) name: String,
    pub(crate) nodes: Vec<PlanNode>,
}

impl LaunchPlan {
    /// Source-level name the plan was resolved from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The resolved launch nodes, in submission order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Number of launch nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct streams the nodes were assigned to.
    pub fn num_streams(&self) -> u32 {
        self.nodes.iter().map(|n| n.stream + 1).max().unwrap_or(0)
    }
}

/// A captured task graph: the resolved plan plus pre-marshalled launch
/// arguments. Replaying one skips every per-launch setup step — kernel
/// lookup, validation, geometry/edge/stream resolution, register
/// estimation — and runs all nodes on a single persistent worker pool.
#[derive(Debug, Clone)]
pub struct CapturedGraph {
    pub(crate) plan: LaunchPlan,
    pub(crate) args: Vec<RtVal>,
}

impl CapturedGraph {
    /// The captured plan.
    pub fn plan(&self) -> &LaunchPlan {
        &self.plan
    }

    /// The pre-marshalled launch arguments.
    pub fn args(&self) -> &[RtVal] {
        &self.args
    }
}

/// Derives dependency edges for nodes with the given launch attributes.
///
/// Node `j` waits for node `i < j` when any of:
/// * a fence sits between them: some node `m` with `i < m <= j` has
///   `taskwait_before` (the host blocked on every outstanding region
///   before submitting `m`);
/// * `i` is synchronous (no `nowait`): the host waited for `i` before
///   submitting anything later;
/// * they are on different sides of a `taskgraph` region boundary (a
///   graph launches as a unit, fenced on entry and exit);
/// * their `depend` clauses conflict on the same parameter (any pairing
///   other than in/in).
fn derive_edges(attrs: &[&LaunchAttrs]) -> Vec<Vec<usize>> {
    let n = attrs.len();
    let mut edges = Vec::with_capacity(n);
    let mut fence = 0usize; // nodes below this index are behind a fence
    for j in 0..n {
        if attrs[j].wait_before {
            fence = j;
        }
        let mut deps = BTreeSet::new();
        for i in 0..j {
            let conflicting_depend = || {
                attrs[i].depends.iter().any(|&(ki, pi)| {
                    attrs[j]
                        .depends
                        .iter()
                        .any(|&(kj, pj)| pi == pj && ki.conflicts_with(kj))
                })
            };
            if i < fence
                || !attrs[i].nowait
                || attrs[i].graph != attrs[j].graph
                || conflicting_depend()
            {
                deps.insert(i);
            }
        }
        edges.push(deps.into_iter().collect());
    }
    edges
}

/// Assigns each node to a stream: reuse the lowest stream whose latest
/// node is a direct dependency (the node continues that pipeline),
/// otherwise open a new stream. Independent `nowait` launches land on
/// distinct streams; a serial chain stays on one.
fn assign_streams(nodes: &mut [PlanNode]) {
    let mut last_of_stream: Vec<usize> = Vec::new();
    for (j, node) in nodes.iter_mut().enumerate() {
        let chosen = last_of_stream
            .iter()
            .position(|last| node.deps.contains(last));
        let s = match chosen {
            Some(s) => {
                last_of_stream[s] = j;
                s
            }
            None => {
                last_of_stream.push(j);
                last_of_stream.len() - 1
            }
        };
        node.stream = s as u32;
    }
}

/// Deterministic list schedule of the plan's nodes over the device's
/// SMs, for the cycle makespan only (execution is always sequential).
/// Each node occupies `min(teams, num_sms)` SMs — the ones with the
/// earliest free times, tie-broken by SM index — and starts at the
/// later of its dependencies' finishes and its SMs' free times.
/// Returns per-node `(start, end)` spans and the makespan.
fn schedule_nodes(nodes: &[PlanNode], durations: &[u64], num_sms: u32) -> (Vec<(u64, u64)>, u64) {
    let n_sms = (num_sms.max(1)) as usize;
    let mut sm_free = vec![0u64; n_sms];
    let mut spans: Vec<(u64, u64)> = Vec::with_capacity(nodes.len());
    for (j, node) in nodes.iter().enumerate() {
        let width = (node.teams as usize).min(n_sms).max(1);
        let mut order: Vec<usize> = (0..n_sms).collect();
        order.sort_by_key(|&i| (sm_free[i], i));
        let chosen = &order[..width];
        let dep_ready = node.deps.iter().map(|&d| spans[d].1).max().unwrap_or(0);
        let sm_ready = chosen.iter().map(|&i| sm_free[i]).max().unwrap_or(0);
        let start = dep_ready.max(sm_ready);
        let end = start + durations[j];
        for &i in chosen {
            sm_free[i] = end;
        }
        spans.push((start, end));
    }
    let makespan = spans.iter().map(|&(_, e)| e).max().unwrap_or(0);
    (spans, makespan)
}

/// `reach[i][j]`: node `i` is (transitively) ordered before node `j`.
fn reachability(nodes: &[PlanNode]) -> Vec<Vec<bool>> {
    let n = nodes.len();
    let mut reach = vec![vec![false; n]; n];
    for j in 0..n {
        for &d in &nodes[j].deps {
            reach[d][j] = true;
            for row in reach.iter_mut() {
                if row[d] {
                    row[j] = true;
                }
            }
        }
    }
    reach
}

/// Everything one executed node contributes to the plan totals.
struct NodeRun {
    team_cycles: Vec<u64>,
    /// Counters merged across the node's teams; `cycles` holds the
    /// node's own duration (SM-packed, same rule as a single launch).
    stats: KernelStats,
    shared: u64,
    heap: u64,
    /// Global pages the node stored to (sanitizer runs only).
    written: BTreeSet<u64>,
    profiles: Vec<TeamProfile>,
    findings: Vec<Finding>,
}

/// Merges one node's team outcomes — in team-id order, the rule that
/// makes every `jobs` setting bit-identical — into device memory and a
/// [`NodeRun`].
fn merge_node(
    mem: &mut Memory,
    num_sms: u32,
    track_writes: bool,
    outcomes: Vec<TeamOutcome>,
) -> NodeRun {
    let mut stats = KernelStats::default();
    let mut team_cycles = Vec::with_capacity(outcomes.len());
    let mut profiles = Vec::new();
    let mut findings = Vec::new();
    let mut written = BTreeSet::new();
    for outcome in outcomes {
        team_cycles.push(outcome.cycles);
        outcome.stats.merge_into(&mut stats);
        if let Some(p) = outcome.profile {
            profiles.push(p);
        }
        findings.extend(outcome.findings);
        if track_writes {
            written.extend(outcome.delta.written_pages());
        }
        mem.apply_delta(outcome.delta);
    }
    stats.team_cycles = team_cycles.clone();
    stats.finish(num_sms);
    NodeRun {
        team_cycles,
        stats,
        shared: mem.shared_high_water,
        heap: mem.heap_high_water,
        written,
        profiles,
        findings,
    }
}

/// A reusable rendezvous for the persistent replay pool. All `parties`
/// workers arrive at the end of each node phase; the *last* arrival
/// runs the inter-node work (delta merge, launch-state reset) while the
/// gate is still closed, then releases everyone into the next phase.
/// Each worker therefore sleeps at most once per node — half the
/// wakeups of a two-`Barrier` start/end protocol, which is the
/// dominant replay cost for plans of tiny nodes.
struct Phaser {
    parties: usize,
    /// Arrivals in the current phase; the `parties`-th arrival seals.
    arrived: AtomicUsize,
    /// Phase generation, bumped once per sealed phase.
    gen: AtomicU64,
    /// Parked waiters tagged with the generation they wait on. The
    /// tag matters: a fast worker can register for phase `n+1` while
    /// phase `n`'s sealer is still draining, and consuming that entry
    /// early would strand the worker parked forever.
    waiters: Mutex<Vec<(u64, std::thread::Thread)>>,
}

impl Phaser {
    fn new(parties: usize) -> Self {
        Phaser {
            parties,
            arrived: AtomicUsize::new(0),
            gen: AtomicU64::new(0),
            waiters: Mutex::new(Vec::with_capacity(parties)),
        }
    }

    /// Blocks until all parties arrive; the last arrival runs `seal`
    /// before anyone is released. Waiters sleep via `park` and are
    /// woken by a targeted `unpark` each — no broadcast storm, no
    /// lock reacquisition on wake.
    fn rendezvous(&self, seal: impl FnOnce()) {
        let gen = self.gen.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Every other party is parked (or about to park and will
            // consume a pending unpark token), so `seal` has exclusive
            // use of the shared node state.
            seal();
            self.arrived.store(0, Ordering::Release);
            self.gen.store(gen + 1, Ordering::Release);
            // Wake only this phase's waiters (and garbage-collect any
            // stale earlier-phase entries left by waiters that saw the
            // generation advance before parking); entries registered
            // for later phases must survive for their own sealer.
            let mut ws = self.waiters.lock().unwrap();
            let mut i = 0;
            while i < ws.len() {
                if ws[i].0 <= gen {
                    ws.swap_remove(i).1.unpark();
                } else {
                    i += 1;
                }
            }
        } else {
            self.waiters
                .lock()
                .unwrap()
                .push((gen, std::thread::current()));
            // `unpark` before `park` leaves a token, so this cannot
            // miss a wake that raced the registration above.
            while self.gen.load(Ordering::Acquire) == gen {
                std::thread::park();
            }
        }
    }
}

/// Sums one node's counters into the plan-wide totals.
fn add_counters(dst: &mut KernelStats, src: &KernelStats) {
    dst.instructions += src.instructions;
    dst.globalization_allocs += src.globalization_allocs;
    dst.barriers += src.barriers;
    dst.indirect_calls += src.indirect_calls;
    dst.parallel_regions += src.parallel_regions;
    dst.memory_accesses += src.memory_accesses;
    dst.coalesced_accesses += src.coalesced_accesses;
    dst.uncoalesced_accesses += src.uncoalesced_accesses;
    dst.fused_gep_load += src.fused_gep_load;
    dst.fused_load_bin_store += src.fused_load_bin_store;
    dst.fused_cmp_br += src.fused_cmp_br;
    dst.plain_steps += src.plain_steps;
    for (name, n) in &src.rtl_calls {
        *dst.rtl_calls.entry(name.clone()).or_insert(0) += n;
    }
}

impl<'m> Device<'m> {
    /// Number of kernels launched by the plan named `name` (0 when the
    /// name resolves to nothing). Callers use this to pick between
    /// [`Device::launch`] and [`Device::launch_plan`].
    pub fn plan_width(&self, name: &str) -> usize {
        let by_source = self
            .module
            .kernels
            .iter()
            .filter(|k| k.source_name == name)
            .count();
        if by_source > 0 {
            return by_source;
        }
        self.module
            .kernels
            .iter()
            .filter(|k| self.module.func(k.func).name == name)
            .count()
            .min(1)
    }

    /// Resolves the host launch plan for `name`: every kernel whose
    /// `source_name` is `name`, in module order (falling back to the
    /// single kernel whose device function is named `name`). Validates
    /// `args` against every node, derives dependency edges from the
    /// kernels' launch attributes, and assigns streams.
    pub fn resolve_plan(
        &self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<LaunchPlan, SimError> {
        let _span = omp_telemetry::span_lazy("gpusim", || format!("plan.resolve {name}"));
        let mut kernels: Vec<&omp_ir::KernelInfo> = self
            .module
            .kernels
            .iter()
            .filter(|k| k.source_name == name)
            .collect();
        if kernels.is_empty() {
            if let Some(k) = self
                .module
                .kernels
                .iter()
                .find(|k| self.module.func(k.func).name == name)
            {
                kernels.push(k);
            }
        }
        if kernels.is_empty() {
            return Err(SimError::unknown_kernel(name));
        }
        for k in &kernels {
            self.validate_args(name, k.func, args)?;
        }
        let attrs: Vec<&LaunchAttrs> = kernels.iter().map(|k| &k.launch).collect();
        let edges = derive_edges(&attrs);
        let mut nodes: Vec<PlanNode> = kernels
            .iter()
            .zip(edges)
            .map(|(k, deps)| PlanNode {
                kfunc: k.func,
                label: self.module.func(k.func).name.clone(),
                teams: dims
                    .teams
                    .or(k.num_teams)
                    .unwrap_or(self.cfg.default_teams)
                    .max(1),
                threads: dims
                    .threads
                    .or(k.thread_limit)
                    .unwrap_or(self.cfg.default_threads)
                    .max(1),
                mode: k.exec_mode,
                deps,
                stream: 0,
            })
            .collect();
        assign_streams(&mut nodes);
        Ok(LaunchPlan {
            name: name.to_string(),
            nodes,
        })
    }

    /// Launches the full plan for `name` eagerly — node by node, each
    /// with fresh per-launch setup — and returns the combined
    /// statistics. A one-node plan is exactly [`Device::launch`].
    pub fn launch_plan(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<KernelStats, SimError> {
        self.launch_plan_full(name, args, dims).map(|(s, _, _)| s)
    }

    /// Like [`Device::launch_plan`], but also returns the plan's
    /// profile (with per-stream spans) when profiling is enabled.
    pub fn launch_plan_profiled(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<(KernelStats, Option<LaunchProfile>), SimError> {
        self.launch_plan_full(name, args, dims)
            .map(|(s, p, _)| (s, p))
    }

    /// Like [`Device::launch_plan`], but also returns sanitizer
    /// findings — per-team findings in submission/team order, then
    /// cross-kernel race findings on unordered node pairs.
    pub fn launch_plan_checked(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<(KernelStats, Vec<Finding>), SimError> {
        self.launch_plan_full(name, args, dims)
            .map(|(s, _, f)| (s, f))
    }

    pub(crate) fn launch_plan_full(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<(KernelStats, Option<LaunchProfile>, Vec<Finding>), SimError> {
        let plan = self.resolve_plan(name, args, dims)?;
        if plan.nodes.len() == 1 {
            // Degenerate plan: exactly a single launch, bit for bit.
            return self.launch_full(name, args, dims);
        }
        self.execute_plan(&plan, args, false)
    }

    /// Records the plan for `name` as a replayable task graph: resolves
    /// and validates everything once, marshals the arguments, and warms
    /// the per-kernel register-estimate cache. Capture does not execute
    /// any node.
    pub fn capture_graph(
        &mut self,
        name: &str,
        args: &[RtVal],
        dims: LaunchDims,
    ) -> Result<CapturedGraph, SimError> {
        let _span = omp_telemetry::span_lazy("gpusim", || format!("graph.capture {name}"));
        let plan = self.resolve_plan(name, args, dims)?;
        for node in &plan.nodes {
            self.register_estimate(node.kfunc);
        }
        Ok(CapturedGraph {
            plan,
            args: args.to_vec(),
        })
    }

    /// Replays a captured graph: no lookup, validation, marshalling, or
    /// resolution — and one persistent worker pool for all nodes.
    /// Outputs and statistics are bit-identical to the eager
    /// [`Device::launch_plan`] of the same name and arguments.
    pub fn replay_graph(&mut self, graph: &CapturedGraph) -> Result<KernelStats, SimError> {
        self.execute_plan(&graph.plan, &graph.args, true)
            .map(|(s, _, _)| s)
    }

    /// Like [`Device::replay_graph`], but also returns sanitizer
    /// findings (identical to the eager launch's).
    pub fn replay_graph_checked(
        &mut self,
        graph: &CapturedGraph,
    ) -> Result<(KernelStats, Vec<Finding>), SimError> {
        self.execute_plan(&graph.plan, &graph.args, true)
            .map(|(s, _, f)| (s, f))
    }

    /// Like [`Device::replay_graph`], but also returns the profile
    /// (with per-stream spans) when profiling is enabled.
    pub fn replay_graph_profiled(
        &mut self,
        graph: &CapturedGraph,
    ) -> Result<(KernelStats, Option<LaunchProfile>), SimError> {
        self.execute_plan(&graph.plan, &graph.args, true)
            .map(|(s, p, _)| (s, p))
    }

    /// Runs a resolved plan's nodes sequentially in submission order,
    /// then assembles combined statistics: counters summed, team cycles
    /// concatenated, shared/heap high-water maxima, registers the
    /// per-node maximum, and `cycles` the list-schedule makespan.
    /// `pooled` selects the replay executor (one persistent worker pool
    /// for all nodes) over the eager one (fresh per-node setup); both
    /// produce bit-identical results.
    fn execute_plan(
        &mut self,
        plan: &LaunchPlan,
        args: &[RtVal],
        pooled: bool,
    ) -> Result<(KernelStats, Option<LaunchProfile>, Vec<Finding>), SimError> {
        let _span = omp_telemetry::span(
            if pooled {
                "graph.replay"
            } else {
                "plan.execute"
            },
            "gpusim",
        );
        let track_writes = self.cfg.sanitize != SanitizeMode::Off;
        let num_sms = self.cfg.num_sms;
        let mut registers = 0u32;
        for node in &plan.nodes {
            registers = registers.max(self.register_estimate(node.kfunc));
        }
        let max_teams = plan.nodes.iter().map(|n| n.teams).max().unwrap_or(1);
        let pool_workers = self.worker_count(max_teams);
        let runs: Vec<NodeRun> = if pooled && pool_workers > 1 {
            self.run_nodes_pooled(&plan.nodes, args, pool_workers, track_writes)?
        } else {
            self.run_nodes_eager(&plan.nodes, args, track_writes)?
        };
        // Combined statistics.
        let mut stats = KernelStats::default();
        let mut findings = Vec::new();
        let mut team_profiles = Vec::new();
        for run in &runs {
            stats.team_cycles.extend_from_slice(&run.team_cycles);
            add_counters(&mut stats, &run.stats);
            stats.shared_mem_bytes = stats.shared_mem_bytes.max(run.shared);
            stats.heap_bytes = stats.heap_bytes.max(run.heap);
        }
        let durations: Vec<u64> = runs.iter().map(|r| r.stats.cycles).collect();
        let (spans, makespan) = schedule_nodes(&plan.nodes, &durations, num_sms);
        stats.cycles = makespan;
        stats.registers = registers;
        stats.tier = self.cfg.effective_tier();
        debug_assert!(stats.tier == Tier::Interp || !track_writes);
        let mut written: Vec<BTreeSet<u64>> = Vec::with_capacity(runs.len());
        for run in runs {
            written.push(run.written);
            team_profiles.extend(run.profiles);
            findings.extend(run.findings);
        }
        // Cross-kernel write-write race detection: two nodes with no
        // ordering edge (in either direction, transitively) that both
        // stored to the same global page raced — had the streams truly
        // overlapped, the commit order would be timing-dependent. One
        // finding per unordered conflicting pair, in (i, j) order.
        if track_writes && plan.nodes.len() > 1 {
            let reach = reachability(&plan.nodes);
            for i in 0..plan.nodes.len() {
                for j in i + 1..plan.nodes.len() {
                    if reach[i][j] || reach[j][i] {
                        continue;
                    }
                    if let Some(&page) = written[i].intersection(&written[j]).next() {
                        findings.push(Finding {
                            kind: FindingKind::CrossKernelRace,
                            severity: Severity::Error,
                            function: plan.nodes[j].label.clone(),
                            block: 0,
                            inst: 0,
                            team: 0,
                            thread: 0,
                            epoch: 0,
                            message: format!(
                                "kernels `{}` (node {i}) and `{}` (node {j}) of plan \
                                 `{}` both write global bytes [0x{:x}, 0x{:x}) with no \
                                 ordering edge (`depend`/`taskwait`) between them \
                                 (page-granular, write-write only)",
                                plan.nodes[i].label,
                                plan.nodes[j].label,
                                plan.name,
                                page * PAGE_BYTES,
                                (page + 1) * PAGE_BYTES,
                            ),
                        });
                    }
                }
            }
        }
        let profile = (self.cfg.profile == ProfileMode::On).then(|| {
            let mut p = LaunchProfile::assemble(self.module, num_sms, &stats, team_profiles);
            p.streams = plan
                .nodes
                .iter()
                .zip(&spans)
                .map(|(n, &(start, end))| StreamSpan {
                    stream: n.stream,
                    label: n.label.clone(),
                    start,
                    end,
                })
                .collect();
            p
        });
        Ok((stats, profile, findings))
    }

    /// Eager executor: each node pays full per-launch setup, including
    /// a fresh worker-thread spawn (inside [`Device::run_teams`]).
    fn run_nodes_eager(
        &mut self,
        nodes: &[PlanNode],
        args: &[RtVal],
        track_writes: bool,
    ) -> Result<Vec<NodeRun>, SimError> {
        let num_sms = self.cfg.num_sms;
        let mut runs = Vec::with_capacity(nodes.len());
        for node in nodes {
            self.mem.reset_launch_state();
            let outcomes = self.run_teams(node.kfunc, args, node.teams, node.threads, node.mode)?;
            runs.push(merge_node(&mut self.mem, num_sms, track_writes, outcomes));
        }
        Ok(runs)
    }

    /// Replay executor: one persistent pool of workers runs every
    /// node. Workers take teams round-robin (worker `w` runs teams
    /// `w`, `w + pool`, ...), and between nodes the last worker to
    /// finish merges outcomes in team-id order inside the [`Phaser`]
    /// rendezvous — so results are bit-identical to eager execution at
    /// every `jobs` setting, while each worker pays a single sleep per
    /// node instead of the spawn-per-node setup of the eager path.
    ///
    /// Unlike the eager path (which models the runtime's per-launch
    /// team spawns), the persistent pool is sized to the *host*:
    /// `min(jobs, available_parallelism)`. Workers beyond the
    /// hardware's parallelism can only time-slice, so extras would add
    /// pure context-switch overhead per rendezvous; the team→worker
    /// assignment does not affect results (the merge is in team-id
    /// order either way).
    fn run_nodes_pooled(
        &mut self,
        nodes: &[PlanNode],
        args: &[RtVal],
        jobs: u32,
        track_writes: bool,
    ) -> Result<Vec<NodeRun>, SimError> {
        let module = self.module;
        let eplan = &self.plan;
        let cfg = &self.cfg;
        let cost = &self.cost;
        let globals = &self.globals[..];
        let num_sms = cfg.num_sms;
        let hw = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1);
        let pool = jobs.min(hw).max(1);
        // Workers read device memory while running a node's teams; the
        // sealing worker takes the write lock inside the rendezvous
        // (everyone else is parked there) to merge deltas — the same
        // sequential-commit order as eager execution.
        self.mem.reset_launch_state();
        let mem = RwLock::new(&mut self.mem);
        let phaser = Phaser::new(pool as usize);
        let abort = AtomicBool::new(false);
        // One outcome slot per (node, team), filled by whichever worker
        // ran the team and drained in team-id order by the sealer.
        type TeamSlot = Mutex<Option<Result<TeamOutcome, SimError>>>;
        let slots: Vec<Vec<TeamSlot>> = nodes
            .iter()
            .map(|n| (0..n.teams).map(|_| Mutex::new(None)).collect())
            .collect();
        // Merged node runs plus the first error, committed by whichever
        // worker seals each phase.
        let merged: Mutex<(Vec<NodeRun>, Option<SimError>)> =
            Mutex::new((Vec::with_capacity(nodes.len()), None));
        std::thread::scope(|s| {
            for w in 0..pool {
                let mem = &mem;
                let phaser = &phaser;
                let abort = &abort;
                let slots = &slots;
                let merged = &merged;
                s.spawn(move || {
                    for (ni, node) in nodes.iter().enumerate() {
                        if !abort.load(Ordering::Acquire) {
                            let guard = mem.read().unwrap();
                            let mut team_id = w;
                            while team_id < node.teams {
                                let r =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        if cfg.fault.abort_team == Some(team_id) {
                                            return Err(SimError::fault_injected(format!(
                                                "team {team_id} aborted"
                                            )));
                                        }
                                        TeamExec::new(
                                            module,
                                            eplan,
                                            cfg,
                                            cost,
                                            globals,
                                            guard.team_view(team_id),
                                            node.teams,
                                            node.threads,
                                            team_id,
                                            node.mode,
                                            node.kfunc,
                                            args,
                                        )
                                        .run()
                                    }))
                                    .unwrap_or_else(|_| {
                                        Err(SimError::trap("internal: team worker thread panicked"))
                                    });
                                let failed = r.is_err();
                                *slots[ni][team_id as usize].lock().unwrap() = Some(r);
                                if failed {
                                    break;
                                }
                                team_id += pool;
                            }
                        }
                        // Node end: the last worker to arrive commits
                        // the node (outcomes merged in team-id order)
                        // and resets launch state for the next node,
                        // before anyone reads device memory again.
                        phaser.rendezvous(|| {
                            let mut st = merged.lock().unwrap();
                            if st.1.is_some() {
                                return;
                            }
                            let mut outcomes = Vec::with_capacity(node.teams as usize);
                            for slot in &slots[ni] {
                                match slot.lock().unwrap().take() {
                                    Some(Ok(o)) => outcomes.push(o),
                                    Some(Err(e)) => {
                                        st.1 = Some(e);
                                        break;
                                    }
                                    None => {
                                        st.1 = Some(SimError::trap(
                                            "internal: team skipped without a prior error",
                                        ));
                                        break;
                                    }
                                }
                            }
                            match &st.1 {
                                None => {
                                    let mut guard = mem.write().unwrap();
                                    st.0.push(merge_node(
                                        &mut guard,
                                        num_sms,
                                        track_writes,
                                        outcomes,
                                    ));
                                    guard.reset_launch_state();
                                }
                                Some(_) => abort.store(true, Ordering::Release),
                            }
                        });
                    }
                });
            }
        });
        let (runs, first_error) = merged.into_inner().unwrap();
        match first_error {
            Some(e) => Err(e),
            None => Ok(runs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Phaser;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Hammers the rendezvous with more parties than this host may
    /// have cores: every phase must seal exactly once, and no worker
    /// may enter phase `n + 1` before phase `n` sealed. A missed wake
    /// (e.g. a sealer consuming a next-phase registration) turns this
    /// into a hang rather than a silent flake.
    #[test]
    fn phaser_seals_every_phase_exactly_once() {
        const PARTIES: usize = 4;
        const PHASES: u64 = 2000;
        let phaser = Phaser::new(PARTIES);
        let seals = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..PARTIES {
                let phaser = &phaser;
                let seals = &seals;
                s.spawn(move || {
                    for phase in 0..PHASES {
                        phaser.rendezvous(|| {
                            let sealed = seals.fetch_add(1, Ordering::AcqRel);
                            assert_eq!(sealed, phase, "phase sealed out of order");
                        });
                    }
                });
            }
        });
        assert_eq!(seals.load(Ordering::Acquire), PHASES);
    }
}
