//! Opt-in cycle-attribution profiling for the plan interpreter.
//!
//! With [`ProfileMode::On`] the interpreter attributes every charged
//! cycle to (a) the function on top of the charging thread's stack —
//! its *exclusive* time — and (b) an instruction class; runtime-call
//! charges are additionally attributed to the specific `__kmpc_*`
//! entry point. Cycle *jumps* (barrier releases, join alignment,
//! worker wakeup) are recorded as per-function *stall* time under the
//! `sync` class, so for every thread
//!
//! ```text
//! sum(exclusive) + sum(stall) == thread cycles == sum(class cycles)
//! ```
//!
//! holds exactly. *Inclusive* time counts cycles while a function is
//! anywhere on a thread's stack (recursion counted once, via on-stack
//! depth). Team/parallel-region spans, barrier releases, and
//! globalization allocations are recorded as timeline events in model
//! cycles.
//!
//! All profile state is per-team and derived purely from model cycles,
//! and teams are merged in team-id order — so profiles are
//! bit-identical across `--jobs` settings, exactly like
//! [`crate::KernelStats`].

use crate::plan::NUM_RTL_FNS;
use crate::stats::KernelStats;
use omp_ir::omprtl::ALL_RTL_FNS;
use omp_ir::{FuncId, Module, RtlFn};
use omp_json::JsonWriter;

/// Whether the interpreter gathers a cycle-attribution profile.
/// `Off` leaves launches byte-identical to a build without profiling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ProfileMode {
    #[default]
    Off,
    On,
}

/// Instruction classes cycles are attributed to. `Rtl` carries the
/// entry point for the per-`__kmpc_*` cycle table; all runtime charges
/// share the `runtime` class bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CycleClass {
    Alloca,
    Load,
    Store,
    Alu,
    Branch,
    Call,
    Math,
    Rtl(RtlFn),
    Sync,
}

pub(crate) const NUM_CLASSES: usize = 9;

/// Display names, indexed by [`CycleClass::index`].
pub const CLASS_NAMES: [&str; NUM_CLASSES] = [
    "alloca", "load", "store", "alu", "branch", "call", "math", "runtime", "sync",
];

impl CycleClass {
    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            CycleClass::Alloca => 0,
            CycleClass::Load => 1,
            CycleClass::Store => 2,
            CycleClass::Alu => 3,
            CycleClass::Branch => 4,
            CycleClass::Call => 5,
            CycleClass::Math => 6,
            CycleClass::Rtl(_) => 7,
            CycleClass::Sync => 8,
        }
    }
}

const SYNC: usize = 8;

/// Mutable per-team collector the interpreter writes into while the
/// team runs. Boxed behind an `Option` on `TeamExec`: `None` (mode
/// off) costs one branch per charge.
pub(crate) struct TeamProfileState {
    num_funcs: usize,
    // Dense per-function tables, indexed by `FuncId`.
    calls: Vec<u64>,
    incl: Vec<u64>,
    excl: Vec<u64>,
    stall: Vec<u64>,
    coalesced: Vec<u64>,
    uncoalesced: Vec<u64>,
    class_cycles: [u64; NUM_CLASSES],
    rtl_cycles: [u64; NUM_RTL_FNS],
    // Per-(thread, function) on-stack depth and level-0 entry cycle,
    // indexed by `hw * num_funcs + func` — recursion-safe inclusive
    // accounting.
    depth: Vec<u32>,
    entry: Vec<u64>,
    /// Open team-level parallel-region span `(region fn, start)`.
    open_region: Option<(FuncId, u64)>,
    regions: Vec<(FuncId, u64, u64)>,
    /// Barrier release cycles (one entry per group release).
    barriers: Vec<u64>,
    /// Globalization allocations as `(cycle, bytes)`.
    allocs: Vec<(u64, u64)>,
}

impl TeamProfileState {
    pub fn new(num_funcs: usize, team_size: usize) -> TeamProfileState {
        TeamProfileState {
            num_funcs,
            calls: vec![0; num_funcs],
            incl: vec![0; num_funcs],
            excl: vec![0; num_funcs],
            stall: vec![0; num_funcs],
            coalesced: vec![0; num_funcs],
            uncoalesced: vec![0; num_funcs],
            class_cycles: [0; NUM_CLASSES],
            rtl_cycles: [0; NUM_RTL_FNS],
            depth: vec![0; num_funcs * team_size],
            entry: vec![0; num_funcs * team_size],
            open_region: None,
            regions: Vec::new(),
            barriers: Vec::new(),
            allocs: Vec::new(),
        }
    }

    /// A charge of `cycles` with the named class, while `top` is the
    /// charging thread's top-of-stack function.
    #[inline]
    pub fn on_charge(&mut self, top: Option<FuncId>, class: CycleClass, cycles: u64) {
        self.class_cycles[class.index()] += cycles;
        if let CycleClass::Rtl(rtl) = class {
            self.rtl_cycles[rtl as usize] += cycles;
        }
        if let Some(f) = top {
            self.excl[f.index()] += cycles;
        }
    }

    /// A cycle jump of `delta` applied to a blocked/aligned thread
    /// whose top-of-stack function is `top`. Accounted as stall and
    /// under the `sync` class.
    #[inline]
    pub fn on_stall(&mut self, top: Option<FuncId>, delta: u64) {
        if delta == 0 {
            return;
        }
        self.class_cycles[SYNC] += delta;
        if let Some(f) = top {
            self.stall[f.index()] += delta;
        }
    }

    /// Thread `hw` pushed a frame for `func` at cycle `now`.
    #[inline]
    pub fn on_push(&mut self, hw: u32, func: FuncId, now: u64) {
        self.calls[func.index()] += 1;
        let slot = hw as usize * self.num_funcs + func.index();
        if self.depth[slot] == 0 {
            self.entry[slot] = now;
        }
        self.depth[slot] += 1;
    }

    /// Thread `hw` popped a frame for `func` at cycle `now`.
    #[inline]
    pub fn on_pop(&mut self, hw: u32, func: FuncId, now: u64) {
        let slot = hw as usize * self.num_funcs + func.index();
        debug_assert!(self.depth[slot] > 0, "pop without matching push");
        self.depth[slot] -= 1;
        if self.depth[slot] == 0 {
            self.incl[func.index()] += now - self.entry[slot];
        }
    }

    /// A global-memory access in `func` classified by the coalescing
    /// model.
    #[inline]
    pub fn on_global_access(&mut self, func: FuncId, coalesced: bool) {
        if coalesced {
            self.coalesced[func.index()] += 1;
        } else {
            self.uncoalesced[func.index()] += 1;
        }
    }

    pub fn open_region(&mut self, func: FuncId, start: u64) {
        self.open_region = Some((func, start));
    }

    pub fn close_region(&mut self, end: u64) {
        if let Some((f, start)) = self.open_region.take() {
            self.regions.push((f, start, end.max(start)));
        }
    }

    pub fn record_barrier(&mut self, cycle: u64) {
        self.barriers.push(cycle);
    }

    pub fn record_alloc(&mut self, cycle: u64, bytes: u64) {
        self.allocs.push((cycle, bytes));
    }

    /// Freezes the collector into the immutable per-team result.
    pub fn finish(mut self: Box<Self>, total_thread_cycles: u64) -> TeamProfile {
        self.close_region(total_thread_cycles);
        TeamProfile {
            calls: self.calls,
            incl: self.incl,
            excl: self.excl,
            stall: self.stall,
            coalesced: self.coalesced,
            uncoalesced: self.uncoalesced,
            class_cycles: self.class_cycles,
            rtl_cycles: self.rtl_cycles,
            regions: self.regions,
            barriers: self.barriers,
            allocs: self.allocs,
            total_thread_cycles,
        }
    }
}

/// One finished team's profile, in team-local model cycles. Carried on
/// `TeamOutcome` and merged into a [`LaunchProfile`] in team-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TeamProfile {
    pub calls: Vec<u64>,
    pub incl: Vec<u64>,
    pub excl: Vec<u64>,
    pub stall: Vec<u64>,
    pub coalesced: Vec<u64>,
    pub uncoalesced: Vec<u64>,
    pub class_cycles: [u64; NUM_CLASSES],
    pub rtl_cycles: [u64; NUM_RTL_FNS],
    pub regions: Vec<(FuncId, u64, u64)>,
    pub barriers: Vec<u64>,
    pub allocs: Vec<(u64, u64)>,
    pub total_thread_cycles: u64,
}

/// Per-function row of a launch profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncProfile {
    pub name: String,
    /// Times a frame for this function was pushed.
    pub calls: u64,
    /// Cycles while the function was anywhere on a thread's stack.
    pub inclusive_cycles: u64,
    /// Cycles charged while the function was on top of a stack.
    pub exclusive_cycles: u64,
    /// Barrier/join/wakeup alignment applied while on top of a stack.
    pub stall_cycles: u64,
    /// Global accesses in this function classified coalesced.
    pub coalesced_accesses: u64,
    /// Global accesses in this function classified uncoalesced.
    pub uncoalesced_accesses: u64,
}

/// Per-runtime-entry-point row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlProfile {
    pub name: String,
    pub calls: u64,
    /// Cycles charged by the entry point itself (barrier *wait* time
    /// is reported as stall/`sync`, not here).
    pub cycles: u64,
}

/// One parallel-region span on a team's timeline (absolute track
/// cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSpan {
    pub func: String,
    pub start: u64,
    pub end: u64,
}

/// One team's placement and events on its SM track. Cycles are
/// absolute track coordinates: team `i` runs on SM `i % num_sms`, and
/// an SM executes its teams back-to-back in team-id order — the same
/// layout [`KernelStats::finish`] uses to compute kernel time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeamTrack {
    pub team: u32,
    pub sm: u32,
    pub start: u64,
    pub end: u64,
    pub regions: Vec<RegionSpan>,
    pub barriers: Vec<u64>,
    /// Globalization allocations as `(cycle, bytes)`.
    pub allocs: Vec<(u64, u64)>,
}

/// One launch node's span on its stream track of a plan or captured
/// task-graph launch. Cycles are absolute plan coordinates from the
/// deterministic list schedule, so traces are bit-identical across
/// `--jobs`, tiers, and eager-vs-replay execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSpan {
    /// Stream the node was scheduled on (0-based, deterministic).
    pub stream: u32,
    /// Kernel (device function) name of the node.
    pub label: String,
    pub start: u64,
    pub end: u64,
}

/// The merged profile of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchProfile {
    /// Kernel time in model cycles (same as `KernelStats::cycles`).
    pub cycles: u64,
    /// Sum of every thread's cycle counter across all teams; the
    /// denominator for attribution percentages.
    pub total_thread_cycles: u64,
    pub num_sms: u32,
    /// Per-function rows, in module function order (all-zero rows
    /// dropped).
    pub functions: Vec<FuncProfile>,
    /// Cycles per instruction class, aligned with [`CLASS_NAMES`].
    pub class_cycles: [u64; NUM_CLASSES],
    /// Per-runtime-entry-point rows (zero rows dropped).
    pub rtl: Vec<RtlProfile>,
    /// One entry per team, in team-id order.
    pub teams: Vec<TeamTrack>,
    /// Stream spans of a plan/graph launch, one per node in submission
    /// order. Empty for plain single-kernel launches, which keeps their
    /// serialized profiles byte-identical to pre-stream builds.
    pub streams: Vec<StreamSpan>,
}

impl LaunchProfile {
    /// Merges per-team profiles (already in team-id order) into the
    /// launch-wide profile, resolving names and laying teams out on
    /// their SM tracks.
    pub(crate) fn assemble(
        module: &Module,
        num_sms: u32,
        stats: &KernelStats,
        teams: Vec<TeamProfile>,
    ) -> LaunchProfile {
        let num_funcs = module.num_functions();
        let mut calls = vec![0u64; num_funcs];
        let mut incl = vec![0u64; num_funcs];
        let mut excl = vec![0u64; num_funcs];
        let mut stall = vec![0u64; num_funcs];
        let mut coal = vec![0u64; num_funcs];
        let mut uncoal = vec![0u64; num_funcs];
        let mut class_cycles = [0u64; NUM_CLASSES];
        let mut rtl_cycles = [0u64; NUM_RTL_FNS];
        let mut total_thread_cycles = 0u64;
        for t in &teams {
            for f in 0..num_funcs {
                calls[f] += t.calls[f];
                incl[f] += t.incl[f];
                excl[f] += t.excl[f];
                stall[f] += t.stall[f];
                coal[f] += t.coalesced[f];
                uncoal[f] += t.uncoalesced[f];
            }
            for (acc, &c) in class_cycles.iter_mut().zip(t.class_cycles.iter()) {
                *acc += c;
            }
            for (acc, &c) in rtl_cycles.iter_mut().zip(t.rtl_cycles.iter()) {
                *acc += c;
            }
            total_thread_cycles += t.total_thread_cycles;
        }
        let functions: Vec<FuncProfile> = module
            .func_ids()
            .filter_map(|fid| {
                let f = fid.index();
                if calls[f] == 0
                    && incl[f] == 0
                    && excl[f] == 0
                    && stall[f] == 0
                    && coal[f] == 0
                    && uncoal[f] == 0
                {
                    return None;
                }
                Some(FuncProfile {
                    name: module.func(fid).name.clone(),
                    calls: calls[f],
                    inclusive_cycles: incl[f],
                    exclusive_cycles: excl[f],
                    stall_cycles: stall[f],
                    coalesced_accesses: coal[f],
                    uncoalesced_accesses: uncoal[f],
                })
            })
            .collect();
        let rtl: Vec<RtlProfile> = ALL_RTL_FNS
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let calls = stats.rtl_count(f.name());
                if calls == 0 && rtl_cycles[i] == 0 {
                    return None;
                }
                Some(RtlProfile {
                    name: f.name().to_string(),
                    calls,
                    cycles: rtl_cycles[i],
                })
            })
            .collect();
        // Lay teams out on SM tracks exactly like `KernelStats::finish`
        // aggregates cycles: team i on SM i % n, teams back-to-back.
        let n = num_sms.max(1);
        let mut sm_time = vec![0u64; n as usize];
        let mut tracks = Vec::with_capacity(teams.len());
        for (i, t) in teams.into_iter().enumerate() {
            let sm = (i as u32) % n;
            let start = sm_time[sm as usize];
            let dur = stats.team_cycles.get(i).copied().unwrap_or(0);
            let end = start + dur;
            sm_time[sm as usize] = end;
            tracks.push(TeamTrack {
                team: i as u32,
                sm,
                start,
                end,
                regions: t
                    .regions
                    .iter()
                    .map(|&(f, s, e)| RegionSpan {
                        func: module.func(f).name.clone(),
                        start: start + s,
                        end: (start + e).min(end),
                    })
                    .collect(),
                barriers: t.barriers.iter().map(|&c| start + c).collect(),
                allocs: t.allocs.iter().map(|&(c, b)| (start + c, b)).collect(),
            });
        }
        LaunchProfile {
            cycles: stats.cycles,
            total_thread_cycles,
            num_sms,
            functions,
            class_cycles,
            rtl,
            teams: tracks,
            streams: Vec::new(),
        }
    }

    /// Function rows ranked hottest-first: by exclusive cycles
    /// descending, then name (a deterministic tiebreak).
    pub fn hot_functions(&self) -> Vec<&FuncProfile> {
        let mut v: Vec<&FuncProfile> = self.functions.iter().collect();
        v.sort_by(|a, b| {
            b.exclusive_cycles
                .cmp(&a.exclusive_cycles)
                .then_with(|| a.name.cmp(&b.name))
        });
        v
    }

    /// Serializes the full profile as one compact JSON object
    /// (`schema: ompgpu-profile/v1`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(4096);
        w.begin_object();
        w.key("schema").string("ompgpu-profile/v1");
        w.key("cycles").u64(self.cycles);
        w.key("total_thread_cycles").u64(self.total_thread_cycles);
        w.key("num_sms").u32(self.num_sms);
        w.key("functions").begin_array();
        for f in self.hot_functions() {
            w.begin_object();
            w.key("name").string(&f.name);
            w.key("calls").u64(f.calls);
            w.key("inclusive_cycles").u64(f.inclusive_cycles);
            w.key("exclusive_cycles").u64(f.exclusive_cycles);
            w.key("stall_cycles").u64(f.stall_cycles);
            w.key("coalesced_accesses").u64(f.coalesced_accesses);
            w.key("uncoalesced_accesses").u64(f.uncoalesced_accesses);
            w.end_object();
        }
        w.end_array();
        w.key("classes").begin_object();
        for (name, &cycles) in CLASS_NAMES.iter().zip(&self.class_cycles) {
            w.key(name).u64(cycles);
        }
        w.end_object();
        w.key("rtl").begin_array();
        for r in &self.rtl {
            w.begin_object();
            w.key("name").string(&r.name);
            w.key("calls").u64(r.calls);
            w.key("cycles").u64(r.cycles);
            w.end_object();
        }
        w.end_array();
        w.key("teams").begin_array();
        for t in &self.teams {
            w.begin_object();
            w.key("team").u32(t.team);
            w.key("sm").u32(t.sm);
            w.key("start").u64(t.start);
            w.key("end").u64(t.end);
            w.key("regions").begin_array();
            for r in &t.regions {
                w.begin_object();
                w.key("func").string(&r.func);
                w.key("start").u64(r.start);
                w.key("end").u64(r.end);
                w.end_object();
            }
            w.end_array();
            w.key("barriers").begin_array();
            for &b in &t.barriers {
                w.u64(b);
            }
            w.end_array();
            w.key("allocs").begin_array();
            for &(c, b) in &t.allocs {
                w.begin_object();
                w.key("cycle").u64(c);
                w.key("bytes").u64(b);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        if !self.streams.is_empty() {
            w.key("streams").begin_array();
            for s in &self.streams {
                w.begin_object();
                w.key("stream").u32(s.stream);
                w.key("label").string(&s.label);
                w.key("start").u64(s.start);
                w.key("end").u64(s.end);
                w.end_object();
            }
            w.end_array();
        }
        w.end_object();
        w.finish()
    }

    /// Serializes the launch timeline in the Chrome trace-event JSON
    /// format (loadable in Perfetto / `chrome://tracing`): one track
    /// per SM (`tid`), an `X` duration span per team and per parallel
    /// region, and `i` instant events for barrier releases and
    /// globalization allocations. Plan/graph launches additionally get
    /// one track per stream (tids above the SM range) with a span per
    /// launch node. Timestamps are model cycles exposed through the
    /// format's microsecond field.
    pub fn chrome_trace(&self) -> String {
        use omp_telemetry::trace::{instant_event, meta_event, span_event};
        let mut w = JsonWriter::with_capacity(4096);
        w.begin_object();
        w.key("displayTimeUnit").string("ms");
        w.key("traceEvents").begin_array();
        meta_event(&mut w, "process_name", None, "gpusim");
        let mut sms: Vec<u32> = self.teams.iter().map(|t| t.sm).collect();
        sms.sort_unstable();
        sms.dedup();
        for &sm in &sms {
            meta_event(&mut w, "thread_name", Some(sm), &format!("SM {sm}"));
        }
        // Plan/graph launches add one track per stream, placed above the
        // SM tid range so the two families never collide.
        let stream_base = self.num_sms.max(1);
        let mut stream_ids: Vec<u32> = self.streams.iter().map(|s| s.stream).collect();
        stream_ids.sort_unstable();
        stream_ids.dedup();
        for &sid in &stream_ids {
            meta_event(
                &mut w,
                "thread_name",
                Some(stream_base + sid),
                &format!("stream {sid}"),
            );
        }
        for t in &self.teams {
            span_event(
                &mut w,
                &format!("team {}", t.team),
                "team",
                t.sm,
                t.start,
                t.end,
            );
            for r in &t.regions {
                span_event(&mut w, &r.func, "parallel", t.sm, r.start, r.end);
            }
            for &b in &t.barriers {
                instant_event(&mut w, "barrier", "sync", t.sm, b, None);
            }
            for &(c, bytes) in &t.allocs {
                instant_event(&mut w, "globalization_alloc", "alloc", t.sm, c, Some(bytes));
            }
        }
        for s in &self.streams {
            span_event(
                &mut w,
                &s.label,
                "stream",
                stream_base + s.stream,
                s.start,
                s.end,
            );
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Renders the human-readable profile report: ranked hot-function
    /// table, instruction-class breakdown, and runtime-call table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let total = self.total_thread_cycles.max(1);
        let _ = writeln!(
            s,
            "kernel cycles: {}  ({} teams over {} SMs, {} thread-cycles)",
            self.cycles,
            self.teams.len(),
            self.num_sms,
            self.total_thread_cycles
        );
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "hot functions (by exclusive cycles; stall = barrier/join wait):"
        );
        let _ = writeln!(
            s,
            "  {:>12} {:>6} {:>12} {:>12} {:>8} {:>8} {:>8}  FUNCTION",
            "EXCL", "%", "STALL", "INCL", "CALLS", "COAL", "UNCOAL"
        );
        for f in self.hot_functions() {
            let pct = 100.0 * f.exclusive_cycles as f64 / total as f64;
            let _ = writeln!(
                s,
                "  {:>12} {:>5.1}% {:>12} {:>12} {:>8} {:>8} {:>8}  {}",
                f.exclusive_cycles,
                pct,
                f.stall_cycles,
                f.inclusive_cycles,
                f.calls,
                f.coalesced_accesses,
                f.uncoalesced_accesses,
                f.name
            );
        }
        let _ = writeln!(s);
        let _ = writeln!(s, "cycles by instruction class:");
        for (name, &cycles) in CLASS_NAMES.iter().zip(&self.class_cycles) {
            if cycles == 0 {
                continue;
            }
            let pct = 100.0 * cycles as f64 / total as f64;
            let _ = writeln!(s, "  {:>12} {:>5.1}%  {}", cycles, pct, name);
        }
        if !self.rtl.is_empty() {
            let _ = writeln!(s);
            let _ = writeln!(s, "runtime entry points:");
            let _ = writeln!(s, "  {:>12} {:>10}  ENTRY POINT", "CYCLES", "CALLS");
            let mut rows: Vec<&RtlProfile> = self.rtl.iter().collect();
            rows.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.name.cmp(&b.name)));
            for r in rows {
                let _ = writeln!(s, "  {:>12} {:>10}  {}", r.cycles, r.calls, r.name);
            }
        }
        s
    }
}
