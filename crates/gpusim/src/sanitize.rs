//! Opt-in device sanitizer and fault-injection plans.
//!
//! [`SanitizeMode::On`] arms per-team shadow state in the interpreter
//! that detects, while the kernel runs:
//!
//! * **data races** — two accesses to the same shared/global word in
//!   the same *barrier epoch*, at least one a write, from different
//!   threads. Epochs approximate happens-before: every synchronization
//!   edge the device runtime creates (barrier release, generic-mode
//!   parallel dispatch, end-of-region join, kernel deinit) advances the
//!   epoch of the synchronized threads, so accesses separated by a
//!   sync edge can never alias an epoch. The approximation is
//!   conservative in the safe direction: it can miss races (scalar
//!   epochs, 4-byte granules) but a reported race is never ordered by
//!   any runtime-visible synchronization.
//! * **barrier divergence** — threads of one team parked at *different*
//!   barrier sites released together, or a team deadlocking with some
//!   threads still waiting at a barrier.
//! * **uninitialized reads / use-after-free** of *globalized* memory —
//!   the allocations made by `__kmpc_alloc_shared` /
//!   `__kmpc_data_sharing_push_stack`, the exact storage the paper's
//!   globalization optimizations move around.
//!
//! Every [`Finding`] carries structured provenance (function, block,
//! instruction index, team/thread ids, epoch). All shadow state is
//! per-team and findings are merged in team-id order, so sanitizer
//! output is bit-identical across `--jobs` settings — the same
//! discipline as the profiler. `Off` costs one untaken branch per
//! memory access.
//!
//! [`FaultPlan`] is the companion injection layer: it can cap the
//! shared globalization stack (forcing the fallback-to-heap path),
//! fail the Nth globalization allocation, trap at the Nth dynamic
//! instruction of a thread, or abort a single team — so tests can
//! prove every failure path degrades into a structured [`crate::SimError`]
//! instead of a panic or a wedged worker.

use crate::mem::{self, AccessClass, FastMap, Space};
use omp_ir::{FuncId, Module};
use omp_json::JsonWriter;

/// Whether the interpreter runs the device sanitizer. `Off` (default)
/// leaves launches byte-identical to a build without sanitizing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SanitizeMode {
    #[default]
    Off,
    On,
}

/// Deterministic fault injection, applied per team so outcomes are
/// identical across `--jobs` settings. All knobs default to "no fault".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Cap the per-team shared globalization stack to this many bytes
    /// (on top of static shared data), forcing allocations to fall back
    /// to the device heap early.
    pub shared_stack_limit: Option<u64>,
    /// Let this many globalization allocations succeed per team, then
    /// fail the next with an injected allocation fault.
    pub fail_alloc_after: Option<u64>,
    /// Trap the first thread whose dynamic instruction counter reaches
    /// this value.
    pub trap_at_inst: Option<u64>,
    /// Abort this team before it executes anything.
    pub abort_team: Option<u32>,
}

impl FaultPlan {
    /// True when any fault is armed.
    pub fn is_active(&self) -> bool {
        self.shared_stack_limit.is_some()
            || self.fail_alloc_after.is_some()
            || self.trap_at_inst.is_some()
            || self.abort_team.is_some()
    }
}

/// How bad a finding is. `Error` findings make a run "unclean" (and
/// `ompgpu sanitize` exit nonzero); `Note` findings are expected
/// degradations worth surfacing, like the globalization stack falling
/// back to the device heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Note,
}

/// What the sanitizer detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    DataRace,
    BarrierDivergence,
    UninitRead,
    UseAfterFree,
    /// Two kernels of one launch plan write the same global-memory page
    /// without an ordering edge (`depend`/`taskwait`/sync) between them.
    /// Page-granular and write-write only: cross-kernel reads are not
    /// tracked, so read-write conflicts go undetected.
    CrossKernelRace,
    SharedStackFallback,
}

impl FindingKind {
    /// Stable machine-readable name (also the JSON `kind` value).
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::DataRace => "data-race",
            FindingKind::BarrierDivergence => "barrier-divergence",
            FindingKind::UninitRead => "uninit-read",
            FindingKind::UseAfterFree => "use-after-free",
            FindingKind::CrossKernelRace => "cross-kernel-race",
            FindingKind::SharedStackFallback => "shared-stack-fallback",
        }
    }

    /// Stable `OMPxxx` diagnostic id (catalogued in `docs/remarks.md`).
    /// The 3xx block is reserved for simulator-side diagnostics, away
    /// from the compiler's optimization remarks.
    pub fn id(self) -> u32 {
        match self {
            FindingKind::DataRace => 300,
            FindingKind::BarrierDivergence => 301,
            FindingKind::UninitRead => 302,
            FindingKind::UseAfterFree => 303,
            FindingKind::CrossKernelRace => 304,
            FindingKind::SharedStackFallback => 310,
        }
    }

    fn severity(self) -> Severity {
        match self {
            FindingKind::SharedStackFallback => Severity::Note,
            _ => Severity::Error,
        }
    }
}

/// One sanitizer finding with full provenance. `function`/`block`/
/// `inst` locate the access that completed the detection; `message`
/// describes the conflicting party where there is one.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub kind: FindingKind,
    pub severity: Severity,
    pub function: String,
    pub block: u32,
    pub inst: u32,
    pub team: u32,
    pub thread: u32,
    pub epoch: u32,
    pub message: String,
}

impl Finding {
    /// Serializes the finding as one JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("id").u32(self.kind.id());
        w.key("kind").string(self.kind.name());
        w.key("severity").string(match self.severity {
            Severity::Error => "error",
            Severity::Note => "note",
        });
        w.key("function").string(&self.function);
        w.key("block").u32(self.block);
        w.key("inst").u32(self.inst);
        w.key("team").u32(self.team);
        w.key("thread").u32(self.thread);
        w.key("epoch").u32(self.epoch);
        w.key("message").string(&self.message);
        w.end_object();
    }

    /// One-line human rendering: `severity kind @fn (block B, inst I)
    /// team T thread H epoch E: message`.
    pub fn render(&self) -> String {
        format!(
            "{} {} @{} (block {}, inst {}) team {} thread {} epoch {}: {}",
            match self.severity {
                Severity::Error => "error",
                Severity::Note => "note",
            },
            self.kind.name(),
            self.function,
            self.block,
            self.inst,
            self.team,
            self.thread,
            self.epoch,
            self.message
        )
    }
}

/// Serializes findings as a JSON array string.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut w = JsonWriter::with_capacity(256);
    w.begin_array();
    for f in findings {
        f.write_json(&mut w);
    }
    w.end_array();
    w.finish()
}

/// A code position inside the module, in plan coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SiteRef {
    pub func: FuncId,
    pub block: u32,
    pub inst: u32,
}

/// One recorded access to a shadow granule.
#[derive(Debug, Clone, Copy)]
struct Access {
    thread: u32,
    epoch: u32,
    site: SiteRef,
}

/// Shadow cell for one 4-byte granule: the last write plus up to two
/// reads from distinct threads (enough to catch read/write races even
/// when the racing read is not the most recent one).
#[derive(Debug, Clone, Copy, Default)]
struct Shadow {
    write: Option<Access>,
    reads: [Option<Access>; 2],
}

// Allocation states for granules inside globalization allocations.
const ST_UNINIT: u8 = 1;
const ST_INIT: u8 = 2;
const ST_FREED: u8 = 3;

/// A barrier park site: position plus the simple-barrier flag, so a
/// team-wide simple barrier never compares equal to a worksharing one.
type BarrierSite = (SiteRef, bool);

/// Cap on findings retained per team — dedup already collapses repeats
/// per static site, this bounds pathological programs.
const MAX_FINDINGS: usize = 64;

/// Mutable per-team sanitizer state. Boxed behind an `Option` on
/// `TeamExec`: `None` (mode off) costs one branch per access.
pub(crate) struct TeamSanState {
    team: u32,
    /// Monotonic epoch source; bumped at every synchronization edge.
    epoch_counter: u32,
    /// Current epoch of each thread.
    epochs: Vec<u32>,
    /// Shadow cells keyed by address granule (`addr >> 2`).
    shadow: FastMap<Shadow>,
    /// Allocation state keyed by granule — only granules inside
    /// globalization allocations are present.
    alloc_state: FastMap<u8>,
    /// Where each thread is currently parked at a barrier.
    park: Vec<Option<BarrierSite>>,
    raw: Vec<RawFinding>,
    /// Dedup set keyed by (kind, site) hash.
    seen: FastMap<u8>,
}

struct RawFinding {
    kind: FindingKind,
    site: SiteRef,
    thread: u32,
    epoch: u32,
    /// The conflicting party, where there is one: `(thread, site,
    /// was_write, epoch)`.
    other: Option<(u32, SiteRef, bool, u32)>,
    /// Freeform detail (e.g. fallback allocation size).
    note: Option<String>,
}

impl TeamSanState {
    pub fn new(team: u32, team_size: usize) -> TeamSanState {
        TeamSanState {
            team,
            epoch_counter: 0,
            epochs: vec![0; team_size],
            shadow: FastMap::default(),
            alloc_state: FastMap::default(),
            park: vec![None; team_size],
            raw: Vec::new(),
            seen: FastMap::default(),
        }
    }

    fn record(
        &mut self,
        kind: FindingKind,
        site: SiteRef,
        thread: u32,
        epoch: u32,
        other: Option<(u32, SiteRef, bool, u32)>,
        note: Option<String>,
    ) {
        if self.raw.len() >= MAX_FINDINGS {
            return;
        }
        // One finding per (kind, static site): the same racy loop
        // should not flood the report once per iteration.
        let key = ((kind as u64) << 58)
            ^ ((site.func.index() as u64) << 40)
            ^ ((site.block as u64) << 20)
            ^ site.inst as u64;
        if self.seen.insert(key, 1).is_some() {
            return;
        }
        self.raw.push(RawFinding {
            kind,
            site,
            thread,
            epoch,
            other,
            note,
        });
    }

    /// The current epoch of `thread` (for error provenance).
    pub fn epoch_of(&self, thread: u32) -> u32 {
        self.epochs.get(thread as usize).copied().unwrap_or(0)
    }

    /// A load or store of `size` bytes at `addr` by `thread`.
    pub fn on_access(
        &mut self,
        thread: u32,
        addr: u64,
        size: u64,
        is_write: bool,
        class: AccessClass,
        site: SiteRef,
    ) {
        if class == AccessClass::Local {
            return;
        }
        let epoch = self.epochs[thread as usize];
        let first = addr >> 2;
        let last = (addr + size.max(1) - 1) >> 2;
        for g in first..=last {
            // Lifetime state of globalized storage. A write to an
            // uninitialized granule initializes the whole granule —
            // conservative against false positives on partial writes.
            let state = self.alloc_state.get_mut(&g).map(|st| {
                let s = *st;
                if is_write && s == ST_UNINIT {
                    *st = ST_INIT;
                }
                s
            });
            match state {
                Some(ST_FREED) => {
                    self.record(FindingKind::UseAfterFree, site, thread, epoch, None, None);
                }
                Some(ST_UNINIT) if !is_write => {
                    self.record(FindingKind::UninitRead, site, thread, epoch, None, None);
                }
                _ => {}
            }
            // Happens-before race check against the shadow cell.
            let me = Access {
                thread,
                epoch,
                site,
            };
            let sh = self.shadow.entry(g).or_default();
            let mut conflict: Option<(Access, bool)> = None;
            if let Some(w) = sh.write {
                if w.thread != thread && w.epoch == epoch {
                    conflict = Some((w, true));
                }
            }
            if is_write && conflict.is_none() {
                for r in sh.reads.iter().flatten() {
                    if r.thread != thread && r.epoch == epoch {
                        conflict = Some((*r, false));
                        break;
                    }
                }
            }
            if is_write {
                sh.write = Some(me);
            } else {
                // Keep reads from two distinct threads; refresh in place
                // when this thread already holds a slot.
                match (&sh.reads[0], &sh.reads[1]) {
                    (Some(r0), _) if r0.thread == thread => sh.reads[0] = Some(me),
                    (_, Some(r1)) if r1.thread == thread => sh.reads[1] = Some(me),
                    (None, _) => sh.reads[0] = Some(me),
                    _ => sh.reads[1] = Some(me),
                }
            }
            if let Some((o, o_write)) = conflict {
                self.record(
                    FindingKind::DataRace,
                    site,
                    thread,
                    epoch,
                    Some((o.thread, o.site, o_write, o.epoch)),
                    None,
                );
            }
        }
    }

    /// `thread` parked at a barrier (`None` site only if it has no
    /// frame, which real barriers never hit).
    pub fn on_barrier_park(&mut self, thread: u32, site: Option<BarrierSite>) {
        self.park[thread as usize] = site;
    }

    /// A barrier group released: check that every member parked at the
    /// same site, then advance the group's epoch (the sync edge).
    pub fn on_barrier_release(&mut self, group: std::ops::Range<u32>) {
        let mut parked = group
            .clone()
            .filter_map(|t| self.park[t as usize].map(|s| (t, s)));
        if let Some((t0, s0)) = parked.next() {
            let divergent = parked.find(|&(_, s)| s != s0);
            if let Some((t1, (site1, _))) = divergent {
                let epoch = self.epochs[t1 as usize];
                self.record(
                    FindingKind::BarrierDivergence,
                    site1,
                    t1,
                    epoch,
                    Some((t0, s0.0, false, self.epochs[t0 as usize])),
                    None,
                );
            }
        }
        for t in group.clone() {
            self.park[t as usize] = None;
        }
        self.bump(group);
    }

    /// A team deadlocked with some threads parked at a barrier: report
    /// the waiters as barrier divergence (their peers exited the region
    /// or never arrived).
    pub fn on_barrier_deadlock(&mut self) {
        let parked: Vec<(u32, BarrierSite)> = self
            .park
            .iter()
            .enumerate()
            .filter_map(|(t, s)| s.map(|s| (t as u32, s)))
            .collect();
        for (t, (site, _)) in parked {
            let epoch = self.epochs[t as usize];
            self.record(
                FindingKind::BarrierDivergence,
                site,
                t,
                epoch,
                None,
                Some("peers exited or never reached this barrier".to_string()),
            );
        }
    }

    /// Advances the epoch of every thread in `group` to a fresh value —
    /// one synchronization edge.
    pub fn bump(&mut self, group: std::ops::Range<u32>) {
        self.epoch_counter += 1;
        let e = self.epoch_counter;
        for t in group {
            if let Some(slot) = self.epochs.get_mut(t as usize) {
                *slot = e;
            }
        }
    }

    /// A sync edge touching the whole team (dispatch, join, deinit).
    pub fn bump_all(&mut self) {
        let n = self.epochs.len() as u32;
        self.bump(0..n);
    }

    /// A globalization allocation at `addr`: reset shadow state for the
    /// granules (free-list reuse must not inherit stale accesses), mark
    /// them uninitialized, and note heap fallback.
    pub fn on_alloc(&mut self, addr: u64, size: u64, thread: u32, site: SiteRef) {
        let first = addr >> 2;
        let last = (addr + size.max(1) - 1) >> 2;
        for g in first..=last {
            self.shadow.remove(&g);
            self.alloc_state.insert(g, ST_UNINIT);
        }
        if matches!(mem::decode(addr), Some(Space::Global { .. })) {
            let epoch = self.epochs[thread as usize];
            self.record(
                FindingKind::SharedStackFallback,
                site,
                thread,
                epoch,
                None,
                Some(format!(
                    "globalization allocation of {size} bytes fell back to the device heap"
                )),
            );
        }
    }

    /// A globalization free: the granules become poisoned.
    pub fn on_free(&mut self, addr: u64, size: u64) {
        let first = addr >> 2;
        let last = (addr + size.max(1) - 1) >> 2;
        for g in first..=last {
            self.alloc_state.insert(g, ST_FREED);
        }
    }

    /// Resolves raw findings into their reportable form (names looked
    /// up once, at team end — never in the hot path).
    pub fn finish(self, module: &Module) -> Vec<Finding> {
        let name = |f: FuncId| module.func(f).name.clone();
        self.raw
            .into_iter()
            .map(|r| {
                let message = match (r.kind, &r.other, &r.note) {
                    (FindingKind::DataRace, Some((ot, os, ow, oe)), _) => format!(
                        "conflicts with {} by thread {} at @{} (block {}, inst {}) in epoch {}",
                        if *ow { "write" } else { "read" },
                        ot,
                        name(os.func),
                        os.block,
                        os.inst,
                        oe
                    ),
                    (FindingKind::BarrierDivergence, Some((ot, os, _, _)), _) => format!(
                        "released with thread {} parked at a different barrier @{} (block {}, inst {})",
                        ot,
                        name(os.func),
                        os.block,
                        os.inst
                    ),
                    (FindingKind::UninitRead, ..) => {
                        "read of uninitialized globalized memory".to_string()
                    }
                    (FindingKind::UseAfterFree, ..) => {
                        "access to freed globalized memory".to_string()
                    }
                    (_, _, Some(note)) => note.clone(),
                    _ => String::new(),
                };
                Finding {
                    kind: r.kind,
                    severity: r.kind.severity(),
                    function: name(r.site.func),
                    block: r.site.block,
                    inst: r.site.inst,
                    team: self.team,
                    thread: r.thread,
                    epoch: r.epoch,
                    message,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(inst: u32) -> SiteRef {
        SiteRef {
            func: FuncId(0),
            block: 0,
            inst,
        }
    }

    fn finish(s: TeamSanState) -> Vec<Finding> {
        let mut m = Module::new("t");
        m.add_function(omp_ir::Function::definition(
            "k",
            vec![],
            omp_ir::Type::Void,
        ));
        s.finish(&m)
    }

    #[test]
    fn same_epoch_write_write_is_a_race() {
        let mut s = TeamSanState::new(0, 2);
        let a = mem::global_addr(0x100);
        s.on_access(0, a, 4, true, AccessClass::Global, site(1));
        s.on_access(1, a, 4, true, AccessClass::Global, site(2));
        let f = finish(s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::DataRace);
        assert_eq!(f[0].thread, 1);
    }

    #[test]
    fn barrier_separated_accesses_do_not_race() {
        let mut s = TeamSanState::new(0, 2);
        let a = mem::global_addr(0x100);
        s.on_access(0, a, 4, true, AccessClass::Global, site(1));
        s.on_barrier_release(0..2);
        s.on_access(1, a, 4, true, AccessClass::Global, site(2));
        assert!(finish(s).is_empty());
    }

    #[test]
    fn read_read_never_races_but_read_write_does() {
        let mut s = TeamSanState::new(0, 3);
        let a = mem::global_addr(0x40);
        s.on_access(0, a, 4, false, AccessClass::Global, site(1));
        s.on_access(1, a, 4, false, AccessClass::Global, site(2));
        assert!(s.raw.is_empty());
        s.on_access(2, a, 4, true, AccessClass::Global, site(3));
        let f = finish(s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::DataRace);
    }

    #[test]
    fn adjacent_words_do_not_alias() {
        let mut s = TeamSanState::new(0, 2);
        let a = mem::global_addr(0x100);
        s.on_access(0, a, 4, true, AccessClass::Global, site(1));
        s.on_access(1, a + 4, 4, true, AccessClass::Global, site(2));
        assert!(finish(s).is_empty());
    }

    #[test]
    fn local_accesses_are_ignored() {
        let mut s = TeamSanState::new(0, 2);
        let a = mem::local_addr(0, 0, 0x10);
        s.on_access(0, a, 4, true, AccessClass::Local, site(1));
        s.on_access(1, a, 4, true, AccessClass::Local, site(2));
        assert!(finish(s).is_empty());
    }

    #[test]
    fn uninit_read_and_use_after_free() {
        let mut s = TeamSanState::new(0, 1);
        let a = mem::shared_addr(0, 0x20);
        s.on_alloc(a, 8, 0, site(1));
        s.on_access(0, a, 8, false, AccessClass::Shared, site(2));
        s.on_access(0, a, 8, true, AccessClass::Shared, site(3));
        s.on_access(0, a, 8, false, AccessClass::Shared, site(4));
        s.on_free(a, 8);
        s.on_access(0, a, 8, false, AccessClass::Shared, site(5));
        let f = finish(s);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].kind, FindingKind::UninitRead);
        assert_eq!(f[0].inst, 2);
        assert_eq!(f[1].kind, FindingKind::UseAfterFree);
        assert_eq!(f[1].inst, 5);
    }

    #[test]
    fn realloc_clears_stale_shadow_and_poison() {
        let mut s = TeamSanState::new(0, 2);
        let a = mem::shared_addr(0, 0x20);
        s.on_alloc(a, 4, 0, site(1));
        s.on_access(0, a, 4, true, AccessClass::Shared, site(2));
        s.on_free(a, 4);
        // Reused by another thread in the same epoch: no race, no UAF.
        s.on_alloc(a, 4, 1, site(3));
        s.on_access(1, a, 4, true, AccessClass::Shared, site(4));
        assert!(finish(s).is_empty());
    }

    #[test]
    fn divergent_park_sites_reported_once() {
        let mut s = TeamSanState::new(0, 2);
        s.on_barrier_park(0, Some((site(1), false)));
        s.on_barrier_park(1, Some((site(9), false)));
        s.on_barrier_release(0..2);
        let f = finish(s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::BarrierDivergence);
        assert!(f[0].message.contains("different barrier"));
    }

    #[test]
    fn matching_park_sites_are_clean() {
        let mut s = TeamSanState::new(0, 2);
        s.on_barrier_park(0, Some((site(1), false)));
        s.on_barrier_park(1, Some((site(1), false)));
        s.on_barrier_release(0..2);
        assert!(finish(s).is_empty());
    }

    #[test]
    fn heap_fallback_alloc_is_a_note() {
        let mut s = TeamSanState::new(0, 1);
        s.on_alloc(mem::global_addr(0x1000), 64, 0, site(1));
        let f = finish(s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::SharedStackFallback);
        assert_eq!(f[0].severity, Severity::Note);
    }

    #[test]
    fn findings_dedup_per_site_and_serialize() {
        let mut s = TeamSanState::new(0, 2);
        let a = mem::global_addr(0x100);
        for _ in 0..10 {
            s.on_access(0, a, 4, true, AccessClass::Global, site(1));
            s.on_access(1, a, 4, true, AccessClass::Global, site(2));
        }
        let f = finish(s);
        // Each static site reports at most once.
        assert!(f.len() <= 2, "got {} findings", f.len());
        let json = findings_to_json(&f);
        omp_json::validate(&json).expect("findings JSON must be valid");
        assert!(json.contains("\"data-race\""));
    }
}
