//! Simulated device memory: global memory (+ heap), per-team shared
//! memory, and per-thread local memory.
//!
//! Addresses are 64-bit with a space tag in the top nibble:
//!
//! ```text
//! 0x0                  null
//! 0x1ooo_oooo_oooo     global memory offset o
//! 0x2tt._....          shared memory of team t (offset in low 32 bits)
//! 0x3...               local memory of (team, thread)
//! 0x4...               function address (index in low bits)
//! ```
//!
//! Loads and stores validate that the executing thread may touch the
//! target: shared memory belongs to one team, local memory to one
//! thread. Cross-thread local accesses optionally trap — this is what
//! makes the unsound LLVM 12 "SPMD mode uses stack memory" fast path
//! (paper Figure 3) observable in the simulator.

use crate::config::DeviceConfig;
use crate::value::RtVal;
use omp_ir::Type;
use std::collections::HashMap;
use std::fmt;

const TAG_SHIFT: u32 = 60;
const TAG_GLOBAL: u64 = 1;
const TAG_SHARED: u64 = 2;
const TAG_LOCAL: u64 = 3;
const TAG_FUNC: u64 = 4;

/// Decoded address space of a pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// Global memory at `offset`.
    Global { offset: u64 },
    /// Shared memory of `team` at `offset`.
    Shared { team: u32, offset: u64 },
    /// Local memory of `(team, thread)` at `offset`.
    Local { team: u32, thread: u32, offset: u64 },
    /// A function address.
    Func { index: u32 },
}

/// Classification used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Global memory (coalescing decided by the interpreter).
    Global,
    /// Shared memory.
    Shared,
    /// Thread-local memory.
    Local,
}

/// Builds a global-memory address.
pub fn global_addr(offset: u64) -> u64 {
    (TAG_GLOBAL << TAG_SHIFT) | offset
}

/// Builds a shared-memory address for `team`.
pub fn shared_addr(team: u32, offset: u64) -> u64 {
    (TAG_SHARED << TAG_SHIFT) | ((team as u64) << 32) | offset
}

/// Builds a local-memory address for `(team, thread)`.
pub fn local_addr(team: u32, thread: u32, offset: u64) -> u64 {
    (TAG_LOCAL << TAG_SHIFT) | ((team as u64) << 40) | ((thread as u64) << 24) | offset
}

/// Builds a function address.
pub fn func_addr(index: u32) -> u64 {
    (TAG_FUNC << TAG_SHIFT) | index as u64
}

/// Decodes an address into its space.
pub fn decode(addr: u64) -> Option<Space> {
    match addr >> TAG_SHIFT {
        TAG_GLOBAL => Some(Space::Global {
            offset: addr & 0x0FFF_FFFF_FFFF_FFFF,
        }),
        TAG_SHARED => Some(Space::Shared {
            team: ((addr >> 32) & 0x0FFF_FFFF) as u32,
            offset: addr & 0xFFFF_FFFF,
        }),
        TAG_LOCAL => Some(Space::Local {
            team: ((addr >> 40) & 0xF_FFFF) as u32,
            thread: ((addr >> 24) & 0xFFFF) as u32,
            offset: addr & 0xFF_FFFF,
        }),
        TAG_FUNC => Some(Space::Func {
            index: (addr & 0xFFFF_FFFF) as u32,
        }),
        _ => None,
    }
}

/// A memory access or allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Null or undecodable pointer.
    InvalidPointer(u64),
    /// Access beyond the bounds of its region.
    OutOfBounds(u64),
    /// A thread touched another thread's local memory.
    CrossThreadLocal {
        /// Team/thread of the accessor.
        accessor: (u32, u32),
        /// Team/thread owning the memory.
        owner: (u32, u32),
    },
    /// A thread touched another team's shared memory.
    CrossTeamShared,
    /// The device heap (globalization fallback) is exhausted — the
    /// paper's RSBench out-of-memory outcome.
    HeapExhausted {
        /// Bytes requested by the failing allocation.
        requested: u64,
    },
    /// Global-memory buffer allocation failed.
    GlobalExhausted,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidPointer(a) => write!(f, "invalid pointer 0x{a:x}"),
            MemError::OutOfBounds(a) => write!(f, "out-of-bounds access at 0x{a:x}"),
            MemError::CrossThreadLocal { accessor, owner } => write!(
                f,
                "thread {accessor:?} accessed local memory of thread {owner:?}"
            ),
            MemError::CrossTeamShared => write!(f, "cross-team shared memory access"),
            MemError::HeapExhausted { requested } => {
                write!(f, "device heap exhausted (requested {requested} bytes)")
            }
            MemError::GlobalExhausted => write!(f, "global memory exhausted"),
        }
    }
}

impl std::error::Error for MemError {}

/// A simple first-fit free-list allocator over a byte range.
#[derive(Debug, Clone, Default)]
struct FreeListAlloc {
    start: u64,
    cursor: u64,
    limit: u64,
    free: Vec<(u64, u64)>, // (offset, size)
    live: u64,
    high_water: u64,
}

impl FreeListAlloc {
    fn new(start: u64, limit: u64) -> FreeListAlloc {
        FreeListAlloc {
            start,
            cursor: start,
            limit,
            free: Vec::new(),
            live: 0,
            high_water: start,
        }
    }

    fn alloc(&mut self, size: u64) -> Option<u64> {
        let size = size.max(1).div_ceil(8) * 8;
        if let Some(i) = self.free.iter().position(|&(_, s)| s >= size) {
            let (off, s) = self.free.remove(i);
            if s > size {
                self.free.push((off + size, s - size));
            }
            self.live += size;
            return Some(off);
        }
        if self.cursor + size > self.limit {
            return None;
        }
        let off = self.cursor;
        self.cursor += size;
        self.high_water = self.high_water.max(self.cursor);
        self.live += size;
        Some(off)
    }

    fn dealloc(&mut self, offset: u64, size: u64) {
        let size = size.max(1).div_ceil(8) * 8;
        self.live = self.live.saturating_sub(size);
        self.free.push((offset, size));
        // Cheap compaction: if everything is free again, reset fully.
        if self.live == 0 {
            self.free.clear();
            self.cursor = self.start;
        }
    }
}

/// Per-team shared memory: statics + a globalization stack region.
#[derive(Debug, Clone)]
pub struct TeamShared {
    data: Vec<u8>,
    alloc: FreeListAlloc,
}

/// The whole simulated memory system.
#[derive(Debug)]
pub struct Memory {
    cfg: DeviceConfig,
    global: Vec<u8>,
    global_cursor: u64,
    heap: FreeListAlloc,
    heap_base: u64,
    shared: HashMap<u32, TeamShared>,
    shared_static_size: u64,
    local: HashMap<(u32, u32), Vec<u8>>,
    /// High-water mark of shared usage across all teams (statics +
    /// globalization stack), reported as the kernel's shared-memory
    /// footprint.
    pub shared_high_water: u64,
    /// High-water mark of heap usage.
    pub heap_high_water: u64,
}

impl Memory {
    /// Creates the memory system. `shared_static_size` is the total size
    /// of the module's static shared globals, placed at the base of
    /// every team's shared memory.
    pub fn new(cfg: &DeviceConfig, shared_static_size: u64) -> Memory {
        let heap_base = cfg.global_mem_bytes;
        Memory {
            cfg: cfg.clone(),
            global: vec![0; (cfg.global_mem_bytes + cfg.global_heap_bytes) as usize],
            global_cursor: 0,
            heap: FreeListAlloc::new(heap_base, heap_base + cfg.global_heap_bytes),
            heap_base,
            shared: HashMap::new(),
            shared_static_size,
            local: HashMap::new(),
            shared_high_water: shared_static_size,
            heap_high_water: 0,
        }
    }

    /// Allocates a host-visible global buffer; returns its address.
    pub fn alloc_global(&mut self, size: u64) -> Result<u64, MemError> {
        let size = size.max(1).div_ceil(8) * 8;
        if self.global_cursor + size > self.cfg.global_mem_bytes {
            return Err(MemError::GlobalExhausted);
        }
        let off = self.global_cursor;
        self.global_cursor += size;
        Ok(global_addr(off))
    }

    fn team_shared(&mut self, team: u32) -> &mut TeamShared {
        let statics = self.shared_static_size;
        let cap = self.cfg.shared_mem_per_team;
        self.shared.entry(team).or_insert_with(|| TeamShared {
            data: vec![0; cap.max(statics) as usize],
            alloc: FreeListAlloc::new(statics, cap.max(statics)),
        })
    }

    /// Device-side globalization allocation: tries the team's shared
    /// stack first, falls back to the device heap (the paper's
    /// `LIBOMPTARGET_HEAP_SIZE` fallback). Returns the address.
    pub fn alloc_shared(&mut self, team: u32, size: u64) -> Result<u64, MemError> {
        if let Some(off) = self.team_shared(team).alloc.alloc(size) {
            let hw = self.team_shared(team).alloc.high_water;
            self.shared_high_water = self.shared_high_water.max(hw);
            return Ok(shared_addr(team, off));
        }
        match self.heap.alloc(size) {
            Some(off) => {
                self.heap_high_water = self.heap_high_water.max(self.heap.live);
                Ok(global_addr(off))
            }
            None => Err(MemError::HeapExhausted { requested: size }),
        }
    }

    /// Frees a globalization allocation made by
    /// [`Memory::alloc_shared`].
    pub fn free_shared(&mut self, addr: u64, size: u64) -> Result<(), MemError> {
        match decode(addr) {
            Some(Space::Shared { team, offset }) => {
                self.team_shared(team).alloc.dealloc(offset, size);
                Ok(())
            }
            Some(Space::Global { offset }) if offset >= self.heap_base => {
                self.heap.dealloc(offset, size);
                Ok(())
            }
            _ => Err(MemError::InvalidPointer(addr)),
        }
    }

    fn local_arena(&mut self, team: u32, thread: u32) -> &mut Vec<u8> {
        let cap = self.cfg.local_mem_per_thread as usize;
        self.local
            .entry((team, thread))
            .or_insert_with(|| vec![0; cap])
    }

    /// Raw byte slice resolution with permission checks.
    fn resolve(
        &mut self,
        addr: u64,
        len: u64,
        team: u32,
        thread: u32,
    ) -> Result<(&mut [u8], AccessClass), MemError> {
        let space = decode(addr).ok_or(MemError::InvalidPointer(addr))?;
        match space {
            Space::Global { offset } => {
                let end = offset + len;
                if end > self.global.len() as u64 {
                    return Err(MemError::OutOfBounds(addr));
                }
                Ok((
                    &mut self.global[offset as usize..end as usize],
                    AccessClass::Global,
                ))
            }
            Space::Shared { team: t, offset } => {
                if t != team {
                    return Err(MemError::CrossTeamShared);
                }
                let arena = self.team_shared(t);
                let end = offset + len;
                if end > arena.data.len() as u64 {
                    return Err(MemError::OutOfBounds(addr));
                }
                Ok((
                    &mut arena.data[offset as usize..end as usize],
                    AccessClass::Shared,
                ))
            }
            Space::Local {
                team: t,
                thread: th,
                offset,
            } => {
                if (t, th) != (team, thread) && self.cfg.trap_on_cross_thread_local {
                    return Err(MemError::CrossThreadLocal {
                        accessor: (team, thread),
                        owner: (t, th),
                    });
                }
                let arena = self.local_arena(t, th);
                let end = offset + len;
                if end > arena.len() as u64 {
                    return Err(MemError::OutOfBounds(addr));
                }
                Ok((
                    &mut arena[offset as usize..end as usize],
                    AccessClass::Local,
                ))
            }
            Space::Func { .. } => Err(MemError::InvalidPointer(addr)),
        }
    }

    /// Loads a typed value. `(team, thread)` identify the accessor.
    pub fn load(
        &mut self,
        addr: u64,
        ty: Type,
        team: u32,
        thread: u32,
    ) -> Result<(RtVal, AccessClass), MemError> {
        let (bytes, class) = self.resolve(addr, ty.size(), team, thread)?;
        Ok((RtVal::from_bytes(ty, bytes), class))
    }

    /// Stores a typed value. `(team, thread)` identify the accessor.
    pub fn store(
        &mut self,
        addr: u64,
        val: RtVal,
        team: u32,
        thread: u32,
    ) -> Result<AccessClass, MemError> {
        let bytes = val.to_bytes();
        let (dst, class) = self.resolve(addr, bytes.len() as u64, team, thread)?;
        dst.copy_from_slice(&bytes);
        Ok(class)
    }

    /// Host-side buffer write (no permission checks, global space only).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        match decode(addr) {
            Some(Space::Global { offset }) => {
                let end = offset as usize + data.len();
                if end > self.global.len() {
                    return Err(MemError::OutOfBounds(addr));
                }
                self.global[offset as usize..end].copy_from_slice(data);
                Ok(())
            }
            _ => Err(MemError::InvalidPointer(addr)),
        }
    }

    /// Host-side buffer read.
    pub fn read_bytes(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, MemError> {
        match decode(addr) {
            Some(Space::Global { offset }) => {
                let end = offset as usize + len;
                if end > self.global.len() {
                    return Err(MemError::OutOfBounds(addr));
                }
                Ok(self.global[offset as usize..end].to_vec())
            }
            _ => Err(MemError::InvalidPointer(addr)),
        }
    }

    /// Resets the per-launch state (shared memory, local memory, heap,
    /// high-water marks) while keeping global buffers intact.
    pub fn reset_launch_state(&mut self) {
        self.shared.clear();
        self.local.clear();
        self.heap = FreeListAlloc::new(self.heap_base, self.heap_base + self.cfg.global_heap_bytes);
        self.shared_high_water = self.shared_static_size;
        self.heap_high_water = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(&DeviceConfig::default(), 0)
    }

    #[test]
    fn address_encoding_roundtrip() {
        assert_eq!(
            decode(global_addr(0x1234)),
            Some(Space::Global { offset: 0x1234 })
        );
        assert_eq!(
            decode(shared_addr(3, 0x40)),
            Some(Space::Shared {
                team: 3,
                offset: 0x40
            })
        );
        assert_eq!(
            decode(local_addr(2, 17, 0x100)),
            Some(Space::Local {
                team: 2,
                thread: 17,
                offset: 0x100
            })
        );
        assert_eq!(decode(func_addr(9)), Some(Space::Func { index: 9 }));
        assert_eq!(decode(0), None);
    }

    #[test]
    fn global_rw() {
        let mut m = mem();
        let a = m.alloc_global(64).unwrap();
        m.store(a, RtVal::F64(3.5), 0, 0).unwrap();
        let (v, class) = m.load(a, Type::F64, 0, 0).unwrap();
        assert_eq!(v, RtVal::F64(3.5));
        assert_eq!(class, AccessClass::Global);
    }

    #[test]
    fn shared_permissions() {
        let mut m = mem();
        let a = m.alloc_shared(1, 16).unwrap();
        m.store(a, RtVal::I32(7), 1, 5).unwrap();
        let (v, class) = m.load(a, Type::I32, 1, 9).unwrap();
        assert_eq!(v, RtVal::I32(7));
        assert_eq!(class, AccessClass::Shared);
        // Another team cannot touch it.
        assert_eq!(
            m.load(a, Type::I32, 2, 0).unwrap_err(),
            MemError::CrossTeamShared
        );
    }

    #[test]
    fn cross_thread_local_traps() {
        let mut m = mem();
        let a = local_addr(0, 1, 0x10);
        m.store(a, RtVal::I32(1), 0, 1).unwrap();
        let err = m.load(a, Type::I32, 0, 2).unwrap_err();
        assert!(matches!(err, MemError::CrossThreadLocal { .. }));
    }

    #[test]
    fn cross_thread_local_allowed_when_configured() {
        let cfg = DeviceConfig {
            trap_on_cross_thread_local: false,
            ..DeviceConfig::default()
        };
        let mut m = Memory::new(&cfg, 0);
        let a = local_addr(0, 1, 0x10);
        m.store(a, RtVal::I32(42), 0, 1).unwrap();
        let (v, _) = m.load(a, Type::I32, 0, 2).unwrap();
        assert_eq!(v, RtVal::I32(42));
    }

    #[test]
    fn shared_overflow_falls_back_to_heap_then_oom() {
        let cfg = DeviceConfig {
            shared_mem_per_team: 64,
            global_heap_bytes: 128,
            ..DeviceConfig::default()
        };
        let mut m = Memory::new(&cfg, 0);
        // Fill shared.
        let a = m.alloc_shared(0, 64).unwrap();
        assert!(matches!(decode(a), Some(Space::Shared { .. })));
        // Next goes to the heap.
        let b = m.alloc_shared(0, 64).unwrap();
        assert!(matches!(decode(b), Some(Space::Global { .. })));
        let _c = m.alloc_shared(0, 64).unwrap();
        // Heap now exhausted.
        let err = m.alloc_shared(0, 64).unwrap_err();
        assert!(matches!(err, MemError::HeapExhausted { .. }));
        // Freeing makes room again.
        m.free_shared(b, 64).unwrap();
        assert!(m.alloc_shared(0, 64).is_ok());
    }

    #[test]
    fn free_list_reuses_shared() {
        let mut m = mem();
        let a = m.alloc_shared(0, 32).unwrap();
        m.free_shared(a, 32).unwrap();
        let b = m.alloc_shared(0, 32).unwrap();
        assert_eq!(a, b, "freed block should be reused");
    }

    #[test]
    fn high_water_tracking() {
        let mut m = mem();
        let _a = m.alloc_shared(0, 100).unwrap();
        let _b = m.alloc_shared(0, 100).unwrap();
        assert!(m.shared_high_water >= 200);
    }

    #[test]
    fn host_read_write() {
        let mut m = mem();
        let a = m.alloc_global(16).unwrap();
        m.write_bytes(a, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(a, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut m = mem();
        let err = m
            .load(global_addr(u64::MAX >> 8), Type::I64, 0, 0)
            .unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
    }
}
