//! Simulated device memory: global memory (+ heap), per-team shared
//! memory, and per-thread local memory.
//!
//! Addresses are 64-bit with a space tag in the top nibble:
//!
//! ```text
//! 0x0                  null
//! 0x1ooo_oooo_oooo     global memory offset o
//! 0x2tt._....          shared memory of team t (offset in low 32 bits)
//! 0x3...               local memory of (team, thread)
//! 0x4...               function address (index in low bits)
//! ```
//!
//! Loads and stores validate that the executing thread may touch the
//! target: shared memory belongs to one team, local memory to one
//! thread. Cross-thread local accesses optionally trap — this is what
//! makes the unsound LLVM 12 "SPMD mode uses stack memory" fast path
//! (paper Figure 3) observable in the simulator.
//!
//! # Per-team views
//!
//! Teams are independent, so a launch hands every team a
//! [`TeamMemView`]: a read-only borrow of the pre-launch global memory
//! plus team-private state (shared memory, local arenas, a full-capacity
//! globalization heap, and a copy-on-write page journal for global
//! stores). Views never alias mutable state, which lets the scheduler
//! run teams on separate host threads. After the launch the journals are
//! merged back into global memory **in team-id order** — the same
//! last-writer-wins outcome sequential execution produces — so results
//! are bit-identical regardless of how many worker threads ran.

use crate::config::DeviceConfig;
use crate::value::RtVal;
use omp_ir::Type;
use std::collections::HashMap;
use std::fmt;

const TAG_SHIFT: u32 = 60;
const TAG_GLOBAL: u64 = 1;
const TAG_SHARED: u64 = 2;
const TAG_LOCAL: u64 = 3;
const TAG_FUNC: u64 = 4;

/// Copy-on-write page size for per-team global-memory journals.
const PAGE: usize = 256;
const PAGE_WORDS: usize = PAGE / 64;

/// Multiply-based hasher for page-number keys. Page journals are hit
/// on every global load/store, where the default SipHash is the
/// dominant cost; page numbers are small dense integers, so one
/// Fibonacci multiply spreads them across buckets with good high bits.
#[derive(Default)]
pub struct PageHasher(u64);

impl std::hash::Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // FNV-style fallback for non-u64 keys (unused on page maps).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// [`std::hash::BuildHasher`] for [`PageHasher`]-keyed maps.
#[derive(Default, Clone)]
pub struct PageHash;

impl std::hash::BuildHasher for PageHash {
    type Hasher = PageHasher;
    #[inline]
    fn build_hasher(&self) -> PageHasher {
        PageHasher::default()
    }
}

/// A `u64`-keyed map with the cheap [`PageHasher`].
pub type FastMap<V> = HashMap<u64, V, PageHash>;

/// Decoded address space of a pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// Global memory at `offset`.
    Global { offset: u64 },
    /// Shared memory of `team` at `offset`.
    Shared { team: u32, offset: u64 },
    /// Local memory of `(team, thread)` at `offset`.
    Local { team: u32, thread: u32, offset: u64 },
    /// A function address.
    Func { index: u32 },
}

/// Classification used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Global memory (coalescing decided by the interpreter).
    Global,
    /// Shared memory.
    Shared,
    /// Thread-local memory.
    Local,
}

/// Builds a global-memory address.
pub fn global_addr(offset: u64) -> u64 {
    (TAG_GLOBAL << TAG_SHIFT) | offset
}

/// Builds a shared-memory address for `team`.
pub fn shared_addr(team: u32, offset: u64) -> u64 {
    (TAG_SHARED << TAG_SHIFT) | ((team as u64) << 32) | offset
}

/// Builds a local-memory address for `(team, thread)`.
pub fn local_addr(team: u32, thread: u32, offset: u64) -> u64 {
    (TAG_LOCAL << TAG_SHIFT) | ((team as u64) << 40) | ((thread as u64) << 24) | offset
}

/// Builds a function address.
pub fn func_addr(index: u32) -> u64 {
    (TAG_FUNC << TAG_SHIFT) | index as u64
}

/// Decodes an address into its space.
pub fn decode(addr: u64) -> Option<Space> {
    match addr >> TAG_SHIFT {
        TAG_GLOBAL => Some(Space::Global {
            offset: addr & 0x0FFF_FFFF_FFFF_FFFF,
        }),
        TAG_SHARED => Some(Space::Shared {
            team: ((addr >> 32) & 0x0FFF_FFFF) as u32,
            offset: addr & 0xFFFF_FFFF,
        }),
        TAG_LOCAL => Some(Space::Local {
            team: ((addr >> 40) & 0xF_FFFF) as u32,
            thread: ((addr >> 24) & 0xFFFF) as u32,
            offset: addr & 0xFF_FFFF,
        }),
        TAG_FUNC => Some(Space::Func {
            index: (addr & 0xFFFF_FFFF) as u32,
        }),
        _ => None,
    }
}

/// A memory access or allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Null or undecodable pointer.
    InvalidPointer(u64),
    /// Access beyond the bounds of its region.
    OutOfBounds(u64),
    /// A thread touched another thread's local memory.
    CrossThreadLocal {
        /// Team/thread of the accessor.
        accessor: (u32, u32),
        /// Team/thread owning the memory.
        owner: (u32, u32),
    },
    /// A thread touched another team's shared memory.
    CrossTeamShared,
    /// The device heap (globalization fallback) is exhausted — the
    /// paper's RSBench out-of-memory outcome.
    HeapExhausted {
        /// Bytes requested by the failing allocation.
        requested: u64,
    },
    /// Global-memory buffer allocation failed.
    GlobalExhausted,
    /// A fault-injection plan failed this allocation on purpose. The
    /// message deliberately avoids the OOM vocabulary ("memory",
    /// "heap") so tolerance for genuine out-of-memory outcomes never
    /// masks an injected fault.
    AllocFaultInjected,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidPointer(a) => write!(f, "invalid pointer 0x{a:x}"),
            MemError::OutOfBounds(a) => write!(f, "out-of-bounds access at 0x{a:x}"),
            MemError::CrossThreadLocal { accessor, owner } => write!(
                f,
                "thread {accessor:?} accessed local memory of thread {owner:?}"
            ),
            MemError::CrossTeamShared => write!(f, "cross-team shared memory access"),
            MemError::HeapExhausted { requested } => {
                write!(f, "device heap exhausted (requested {requested} bytes)")
            }
            MemError::GlobalExhausted => write!(f, "global memory exhausted"),
            MemError::AllocFaultInjected => write!(f, "injected allocation fault"),
        }
    }
}

impl std::error::Error for MemError {}

/// A simple first-fit free-list allocator over a byte range.
#[derive(Debug, Clone, Default)]
struct FreeListAlloc {
    start: u64,
    cursor: u64,
    limit: u64,
    free: Vec<(u64, u64)>, // (offset, size)
    live: u64,
    high_water: u64,
    live_high: u64,
}

impl FreeListAlloc {
    fn new(start: u64, limit: u64) -> FreeListAlloc {
        FreeListAlloc {
            start,
            cursor: start,
            limit,
            free: Vec::new(),
            live: 0,
            high_water: start,
            live_high: 0,
        }
    }

    fn alloc(&mut self, size: u64) -> Option<u64> {
        let size = size.max(1).div_ceil(8) * 8;
        if let Some(i) = self.free.iter().position(|&(_, s)| s >= size) {
            let (off, s) = self.free.remove(i);
            if s > size {
                self.free.push((off + size, s - size));
            }
            self.live += size;
            self.live_high = self.live_high.max(self.live);
            return Some(off);
        }
        if self.cursor + size > self.limit {
            return None;
        }
        let off = self.cursor;
        self.cursor += size;
        self.high_water = self.high_water.max(self.cursor);
        self.live += size;
        self.live_high = self.live_high.max(self.live);
        Some(off)
    }

    fn dealloc(&mut self, offset: u64, size: u64) {
        let size = size.max(1).div_ceil(8) * 8;
        self.live = self.live.saturating_sub(size);
        self.free.push((offset, size));
        // Cheap compaction: if everything is free again, reset fully.
        if self.live == 0 {
            self.free.clear();
            self.cursor = self.start;
        }
    }
}

/// Per-team shared memory: statics + a globalization stack region.
#[derive(Debug, Clone)]
struct TeamShared {
    data: Vec<u8>,
    alloc: FreeListAlloc,
}

/// One copy-on-write page of a team's global-memory journal: a snapshot
/// of the pre-launch bytes with the team's own stores applied, plus a
/// per-byte dirty bitmap so merging only writes back bytes the team
/// actually stored.
#[derive(Debug)]
struct CowPage {
    data: Box<[u8; PAGE]>,
    dirty: [u64; PAGE_WORDS],
}

/// The global-memory effects of one team's execution, merged back into
/// [`Memory`] with [`Memory::apply_delta`] after the team finishes.
#[derive(Debug)]
pub struct TeamMemDelta {
    pages: Vec<(u64, CowPage)>,
    shared_high_water: u64,
    heap_live_high: u64,
}

/// Page granule of the COW store journal in bytes, re-exported for the
/// cross-kernel race detector's diagnostics.
pub(crate) const PAGE_BYTES: u64 = PAGE as u64;

impl TeamMemDelta {
    /// Numbers of the pages this team actually stored to (at least one
    /// dirty byte), in first-write order. Page `p` covers global bytes
    /// `[p * PAGE_BYTES, (p + 1) * PAGE_BYTES)`.
    pub(crate) fn written_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages
            .iter()
            .filter(|(_, p)| p.dirty.iter().any(|&w| w != 0))
            .map(|&(n, _)| n)
    }
}

/// One team's private window onto device memory during a launch: a
/// read-only borrow of pre-launch global memory plus team-owned shared
/// memory, local arenas, a full-capacity globalization heap, and the
/// copy-on-write store journal. Safe to move to a worker thread.
#[derive(Debug)]
pub struct TeamMemView<'a> {
    base: &'a [u8],
    team: u32,
    /// COW store journal: pages in first-write order plus a page# →
    /// slot index. Slots are never removed during a launch, so the
    /// direct-mapped two-entry `last_page` lookup cache (shared by the
    /// load and store paths, indexed by page parity so an input/output
    /// buffer pair does not thrash it; `u32::MAX` slot = "page not
    /// journalled") stays valid until a conflicting access overwrites
    /// its way.
    page_slots: Vec<(u64, CowPage)>,
    page_index: FastMap<u32>,
    last_page: [(u64, u32); 2],
    shared: TeamShared,
    local: Vec<Vec<u8>>,
    heap: FreeListAlloc,
    heap_base: u64,
    local_cap: u64,
    trap_cross_local: bool,
    /// Remaining globalization allocations before the fault plan fails
    /// one (`None` = no injected failure). Per-team, so outcomes do not
    /// depend on `--jobs`.
    alloc_budget: Option<u64>,
}

impl<'a> TeamMemView<'a> {
    /// Slot of `page` in the journal, `None` when the team never wrote
    /// it. One-entry cache in front of the hash lookup: the hot loops
    /// touch the same page repeatedly (sequential buffers), so most
    /// accesses skip the map entirely.
    #[inline(always)]
    fn page_slot(&mut self, page: u64) -> Option<u32> {
        let way = (page & 1) as usize;
        let (cached_page, cached_slot) = self.last_page[way];
        if cached_page == page {
            return (cached_slot != u32::MAX).then_some(cached_slot);
        }
        let slot = self.page_index.get(&page).copied().unwrap_or(u32::MAX);
        self.last_page[way] = (page, slot);
        (slot != u32::MAX).then_some(slot)
    }

    fn page_for_write(&mut self, page: u64) -> &mut CowPage {
        let slot = match self.page_slot(page) {
            Some(s) => s,
            None => {
                let mut data = Box::new([0u8; PAGE]);
                let start = (page as usize) * PAGE;
                let n = PAGE.min(self.base.len().saturating_sub(start));
                data[..n].copy_from_slice(&self.base[start..start + n]);
                let s = self.page_slots.len() as u32;
                self.page_slots.push((
                    page,
                    CowPage {
                        data,
                        dirty: [0; PAGE_WORDS],
                    },
                ));
                self.page_index.insert(page, s);
                self.last_page[(page & 1) as usize] = (page, s);
                s
            }
        };
        &mut self.page_slots[slot as usize].1
    }

    fn read_global(&mut self, addr: u64, offset: u64, out: &mut [u8]) -> Result<(), MemError> {
        let end = offset + out.len() as u64;
        if end > self.base.len() as u64 {
            return Err(MemError::OutOfBounds(addr));
        }
        let mut o = offset as usize;
        let mut i = 0;
        while i < out.len() {
            let page = (o / PAGE) as u64;
            let po = o % PAGE;
            let n = (PAGE - po).min(out.len() - i);
            match self.page_slot(page) {
                Some(s) => {
                    let p = &self.page_slots[s as usize].1;
                    out[i..i + n].copy_from_slice(&p.data[po..po + n]);
                }
                None => out[i..i + n].copy_from_slice(&self.base[o..o + n]),
            }
            i += n;
            o += n;
        }
        Ok(())
    }

    fn write_global(&mut self, addr: u64, offset: u64, data: &[u8]) -> Result<(), MemError> {
        let end = offset + data.len() as u64;
        if end > self.base.len() as u64 {
            return Err(MemError::OutOfBounds(addr));
        }
        let mut o = offset as usize;
        let mut i = 0;
        while i < data.len() {
            let page = (o / PAGE) as u64;
            let po = o % PAGE;
            let n = (PAGE - po).min(data.len() - i);
            let p = self.page_for_write(page);
            p.data[po..po + n].copy_from_slice(&data[i..i + n]);
            for b in po..po + n {
                p.dirty[b / 64] |= 1 << (b % 64);
            }
            i += n;
            o += n;
        }
        Ok(())
    }

    /// Device-side globalization allocation: tries the team's shared
    /// stack first, falls back to the device heap (the paper's
    /// `LIBOMPTARGET_HEAP_SIZE` fallback). Returns the address.
    pub fn alloc_shared(&mut self, size: u64) -> Result<u64, MemError> {
        if let Some(left) = self.alloc_budget.as_mut() {
            if *left == 0 {
                return Err(MemError::AllocFaultInjected);
            }
            *left -= 1;
        }
        if let Some(off) = self.shared.alloc.alloc(size) {
            return Ok(shared_addr(self.team, off));
        }
        match self.heap.alloc(size) {
            Some(off) => Ok(global_addr(off)),
            None => Err(MemError::HeapExhausted { requested: size }),
        }
    }

    /// Frees a globalization allocation made by
    /// [`TeamMemView::alloc_shared`].
    pub fn free_shared(&mut self, addr: u64, size: u64) -> Result<(), MemError> {
        match decode(addr) {
            Some(Space::Shared { team, offset }) if team == self.team => {
                self.shared.alloc.dealloc(offset, size);
                Ok(())
            }
            Some(Space::Global { offset }) if offset >= self.heap_base => {
                self.heap.dealloc(offset, size);
                Ok(())
            }
            _ => Err(MemError::InvalidPointer(addr)),
        }
    }

    /// The arena for `thread`'s local memory, grown on demand: arenas
    /// start empty and extend geometrically (zero-filled, preserving
    /// the read-zero semantics of untouched local memory) up to the
    /// configured per-thread capacity, so threads that use a few
    /// hundred bytes of stack never pay for the full capacity.
    fn local_arena(&mut self, thread: u32, end: u64) -> Result<&mut Vec<u8>, MemError> {
        let cap = self.local_cap as usize;
        if thread as usize >= self.local.len() {
            self.local.resize_with(thread as usize + 1, Vec::new);
        }
        let arena = &mut self.local[thread as usize];
        if end as usize > arena.len() {
            let want = (end as usize).next_power_of_two().max(4096).min(cap);
            arena.resize(want, 0);
        }
        Ok(arena)
    }

    /// Loads a typed value. `thread` identifies the accessor within this
    /// view's team.
    pub fn load(
        &mut self,
        addr: u64,
        ty: Type,
        thread: u32,
    ) -> Result<(RtVal, AccessClass), MemError> {
        let space = decode(addr).ok_or(MemError::InvalidPointer(addr))?;
        let len = ty.size();
        match space {
            Space::Global { offset } => {
                let mut buf = [0u8; 8];
                self.read_global(addr, offset, &mut buf[..len as usize])?;
                Ok((RtVal::from_bytes(ty, &buf), AccessClass::Global))
            }
            Space::Shared { team, offset } => {
                if team != self.team {
                    return Err(MemError::CrossTeamShared);
                }
                let end = offset + len;
                if end > self.shared.data.len() as u64 {
                    return Err(MemError::OutOfBounds(addr));
                }
                Ok((
                    RtVal::from_bytes(ty, &self.shared.data[offset as usize..end as usize]),
                    AccessClass::Shared,
                ))
            }
            Space::Local {
                team,
                thread: th,
                offset,
            } => {
                self.check_local(addr, team, th, thread)?;
                let end = offset + len;
                if end > self.local_cap {
                    return Err(MemError::OutOfBounds(addr));
                }
                let arena = self.local_arena(th, end)?;
                Ok((
                    RtVal::from_bytes(ty, &arena[offset as usize..end as usize]),
                    AccessClass::Local,
                ))
            }
            Space::Func { .. } => Err(MemError::InvalidPointer(addr)),
        }
    }

    /// Stores a typed value. `thread` identifies the accessor within
    /// this view's team.
    pub fn store(&mut self, addr: u64, val: RtVal, thread: u32) -> Result<AccessClass, MemError> {
        let space = decode(addr).ok_or(MemError::InvalidPointer(addr))?;
        let mut buf = [0u8; 8];
        let len = val.write_le(&mut buf);
        let bytes = &buf[..len];
        match space {
            Space::Global { offset } => {
                self.write_global(addr, offset, bytes)?;
                Ok(AccessClass::Global)
            }
            Space::Shared { team, offset } => {
                if team != self.team {
                    return Err(MemError::CrossTeamShared);
                }
                let end = offset + len as u64;
                if end > self.shared.data.len() as u64 {
                    return Err(MemError::OutOfBounds(addr));
                }
                self.shared.data[offset as usize..end as usize].copy_from_slice(bytes);
                Ok(AccessClass::Shared)
            }
            Space::Local {
                team,
                thread: th,
                offset,
            } => {
                self.check_local(addr, team, th, thread)?;
                let end = offset + len as u64;
                if end > self.local_cap {
                    return Err(MemError::OutOfBounds(addr));
                }
                let arena = self.local_arena(th, end)?;
                arena[offset as usize..end as usize].copy_from_slice(bytes);
                Ok(AccessClass::Local)
            }
            Space::Func { .. } => Err(MemError::InvalidPointer(addr)),
        }
    }

    fn check_local(&self, addr: u64, team: u32, owner: u32, accessor: u32) -> Result<(), MemError> {
        // Cross-team local access is impossible under team isolation —
        // trap regardless of configuration; cross-thread access within
        // the team is what the unsound SPMD stack fast path exercises
        // and is gated by `trap_on_cross_thread_local`.
        if team != self.team {
            return Err(MemError::CrossThreadLocal {
                accessor: (self.team, accessor),
                owner: (team, owner),
            });
        }
        if owner != accessor && self.trap_cross_local {
            return Err(MemError::CrossThreadLocal {
                accessor: (self.team, accessor),
                owner: (team, owner),
            });
        }
        let _ = addr;
        Ok(())
    }

    /// Consumes the view, returning the effects to merge back into the
    /// launch-level [`Memory`].
    pub fn finish(self) -> TeamMemDelta {
        TeamMemDelta {
            pages: self.page_slots,
            shared_high_water: self.shared.alloc.high_water,
            heap_live_high: self.heap.live_high,
        }
    }
}

/// The launch-level memory system: host-visible global memory plus the
/// per-launch high-water marks folded in from each team's view.
#[derive(Debug)]
pub struct Memory {
    cfg: DeviceConfig,
    global: Vec<u8>,
    global_cursor: u64,
    heap_base: u64,
    shared_static_size: u64,
    /// High-water mark of shared usage across all teams (statics +
    /// globalization stack), reported as the kernel's shared-memory
    /// footprint.
    pub shared_high_water: u64,
    /// High-water mark of heap usage.
    pub heap_high_water: u64,
}

impl Memory {
    /// Creates the memory system. `shared_static_size` is the total size
    /// of the module's static shared globals, placed at the base of
    /// every team's shared memory.
    pub fn new(cfg: &DeviceConfig, shared_static_size: u64) -> Memory {
        let heap_base = cfg.global_mem_bytes;
        Memory {
            cfg: cfg.clone(),
            global: vec![0; (cfg.global_mem_bytes + cfg.global_heap_bytes) as usize],
            global_cursor: 0,
            heap_base,
            shared_static_size,
            shared_high_water: shared_static_size,
            heap_high_water: 0,
        }
    }

    /// Installs a fault plan after construction (the device owns the
    /// authoritative configuration; the memory system keeps a copy).
    pub fn set_fault_plan(&mut self, plan: crate::sanitize::FaultPlan) {
        self.cfg.fault = plan;
    }

    /// Allocates a host-visible global buffer; returns its address.
    pub fn alloc_global(&mut self, size: u64) -> Result<u64, MemError> {
        let size = size.max(1).div_ceil(8) * 8;
        if self.global_cursor + size > self.cfg.global_mem_bytes {
            return Err(MemError::GlobalExhausted);
        }
        let off = self.global_cursor;
        self.global_cursor += size;
        Ok(global_addr(off))
    }

    /// The current bump-allocator position in global memory (bytes
    /// allocated so far). Recorded by the device after construction so
    /// [`Memory::reset_global`] can rewind to exactly that state.
    pub fn global_cursor(&self) -> u64 {
        self.global_cursor
    }

    /// Creates the private memory view for one team of a launch. Views
    /// borrow the pre-launch global memory read-only, so every team of a
    /// launch can hold one simultaneously.
    pub fn team_view(&self, team: u32) -> TeamMemView<'_> {
        let statics = self.shared_static_size;
        let cap = self.cfg.shared_mem_per_team.max(statics);
        // A fault plan may cap the globalization stack below the
        // configured shared size, forcing the heap-fallback path.
        let stack_limit = match self.cfg.fault.shared_stack_limit {
            Some(l) => (statics + l).min(cap),
            None => cap,
        };
        TeamMemView {
            base: &self.global,
            team,
            page_slots: Vec::new(),
            page_index: FastMap::default(),
            last_page: [(u64::MAX, u32::MAX); 2],
            shared: TeamShared {
                data: vec![0; cap as usize],
                alloc: FreeListAlloc::new(statics, stack_limit),
            },
            local: Vec::new(),
            heap: FreeListAlloc::new(self.heap_base, self.heap_base + self.cfg.global_heap_bytes),
            heap_base: self.heap_base,
            local_cap: self.cfg.local_mem_per_thread,
            trap_cross_local: self.cfg.trap_on_cross_thread_local,
            alloc_budget: self.cfg.fault.fail_alloc_after,
        }
    }

    /// Merges one team's store journal and high-water marks back into
    /// global memory. Call once per team **in team-id order**: later
    /// teams overwrite earlier ones on (unsynchronized) conflicts, the
    /// same outcome sequential execution produces. Heap-region pages are
    /// scratch and are not written back.
    pub fn apply_delta(&mut self, delta: TeamMemDelta) {
        for (page, p) in delta.pages {
            let start = (page as usize) * PAGE;
            for w in 0..PAGE_WORDS {
                let mut bits = p.dirty[w];
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let off = start + w * 64 + b;
                    if (off as u64) < self.heap_base && off < self.global.len() {
                        self.global[off] = p.data[w * 64 + b];
                    }
                }
            }
        }
        self.shared_high_water = self.shared_high_water.max(delta.shared_high_water);
        self.heap_high_water = self.heap_high_water.max(delta.heap_live_high);
    }

    /// Host-side buffer write (no permission checks, global space only).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        match decode(addr) {
            Some(Space::Global { offset }) => {
                let end = offset as usize + data.len();
                if end > self.global.len() {
                    return Err(MemError::OutOfBounds(addr));
                }
                self.global[offset as usize..end].copy_from_slice(data);
                Ok(())
            }
            _ => Err(MemError::InvalidPointer(addr)),
        }
    }

    /// Host-side buffer read.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemError> {
        match decode(addr) {
            Some(Space::Global { offset }) => {
                let end = offset as usize + len;
                if end > self.global.len() {
                    return Err(MemError::OutOfBounds(addr));
                }
                Ok(self.global[offset as usize..end].to_vec())
            }
            _ => Err(MemError::InvalidPointer(addr)),
        }
    }

    /// Resets the per-launch state (high-water marks) while keeping
    /// global buffers intact. Shared/local/heap state is per-team and
    /// created fresh with each [`Memory::team_view`].
    pub fn reset_launch_state(&mut self) {
        self.shared_high_water = self.shared_static_size;
        self.heap_high_water = 0;
    }

    /// Restores global memory to a pristine state: every byte zeroed,
    /// the bump cursor rewound to `cursor` (the caller's record of the
    /// post-construction position, after module globals were placed),
    /// and the launch high-water marks reset. The caller re-writes any
    /// global initializers afterwards; see `Device::reset`.
    pub fn reset_global(&mut self, cursor: u64) {
        self.global.fill(0);
        self.global_cursor = cursor;
        self.reset_launch_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(&DeviceConfig::default(), 0)
    }

    #[test]
    fn address_encoding_roundtrip() {
        assert_eq!(
            decode(global_addr(0x1234)),
            Some(Space::Global { offset: 0x1234 })
        );
        assert_eq!(
            decode(shared_addr(3, 0x40)),
            Some(Space::Shared {
                team: 3,
                offset: 0x40
            })
        );
        assert_eq!(
            decode(local_addr(2, 17, 0x100)),
            Some(Space::Local {
                team: 2,
                thread: 17,
                offset: 0x100
            })
        );
        assert_eq!(decode(func_addr(9)), Some(Space::Func { index: 9 }));
        assert_eq!(decode(0), None);
    }

    #[test]
    fn global_rw_through_view_and_merge() {
        let mut m = mem();
        let a = m.alloc_global(64).unwrap();
        let mut v = m.team_view(0);
        v.store(a, RtVal::F64(3.5), 0).unwrap();
        let (val, class) = v.load(a, Type::F64, 0).unwrap();
        assert_eq!(val, RtVal::F64(3.5));
        assert_eq!(class, AccessClass::Global);
        let delta = v.finish();
        m.apply_delta(delta);
        let bytes = m.read_bytes(a, 8).unwrap();
        assert_eq!(f64::from_le_bytes(bytes.try_into().unwrap()), 3.5);
    }

    #[test]
    fn team_views_are_isolated_until_merge() {
        let mut m = mem();
        let a = m.alloc_global(16).unwrap();
        let mut v0 = m.team_view(0);
        let mut v1 = m.team_view(1);
        v0.store(a, RtVal::I64(7), 0).unwrap();
        // Team 1 still sees the pre-launch value.
        assert_eq!(v1.load(a, Type::I64, 0).unwrap().0, RtVal::I64(0));
        // Disjoint bytes in the same page merge independently.
        v1.store(a + 8, RtVal::I64(9), 0).unwrap();
        let (d0, d1) = (v0.finish(), v1.finish());
        m.apply_delta(d0);
        m.apply_delta(d1);
        let b = m.read_bytes(a, 16).unwrap();
        assert_eq!(i64::from_le_bytes(b[..8].try_into().unwrap()), 7);
        assert_eq!(i64::from_le_bytes(b[8..].try_into().unwrap()), 9);
    }

    #[test]
    fn merge_is_last_team_wins_in_id_order() {
        let mut m = mem();
        let a = m.alloc_global(8).unwrap();
        let mut v0 = m.team_view(0);
        let mut v1 = m.team_view(1);
        v0.store(a, RtVal::I64(1), 0).unwrap();
        v1.store(a, RtVal::I64(2), 0).unwrap();
        let (d0, d1) = (v0.finish(), v1.finish());
        m.apply_delta(d0);
        m.apply_delta(d1);
        let b = m.read_bytes(a, 8).unwrap();
        assert_eq!(i64::from_le_bytes(b.try_into().unwrap()), 2);
    }

    #[test]
    fn shared_permissions() {
        let m = mem();
        let mut v = m.team_view(1);
        let a = v.alloc_shared(16).unwrap();
        v.store(a, RtVal::I32(7), 5).unwrap();
        let (val, class) = v.load(a, Type::I32, 9).unwrap();
        assert_eq!(val, RtVal::I32(7));
        assert_eq!(class, AccessClass::Shared);
        // Another team cannot touch it.
        let mut other = m.team_view(2);
        assert_eq!(
            other.load(a, Type::I32, 0).unwrap_err(),
            MemError::CrossTeamShared
        );
    }

    #[test]
    fn cross_thread_local_traps() {
        let m = mem();
        let mut v = m.team_view(0);
        let a = local_addr(0, 1, 0x10);
        v.store(a, RtVal::I32(1), 1).unwrap();
        let err = v.load(a, Type::I32, 2).unwrap_err();
        assert!(matches!(err, MemError::CrossThreadLocal { .. }));
    }

    #[test]
    fn cross_thread_local_allowed_when_configured() {
        let cfg = DeviceConfig {
            trap_on_cross_thread_local: false,
            ..DeviceConfig::default()
        };
        let m = Memory::new(&cfg, 0);
        let mut v = m.team_view(0);
        let a = local_addr(0, 1, 0x10);
        v.store(a, RtVal::I32(42), 1).unwrap();
        let (val, _) = v.load(a, Type::I32, 2).unwrap();
        assert_eq!(val, RtVal::I32(42));
    }

    #[test]
    fn cross_team_local_always_traps() {
        let cfg = DeviceConfig {
            trap_on_cross_thread_local: false,
            ..DeviceConfig::default()
        };
        let m = Memory::new(&cfg, 0);
        let mut v = m.team_view(0);
        let err = v.load(local_addr(1, 0, 0), Type::I32, 0).unwrap_err();
        assert!(matches!(err, MemError::CrossThreadLocal { .. }));
    }

    #[test]
    fn shared_overflow_falls_back_to_heap_then_oom() {
        let cfg = DeviceConfig {
            shared_mem_per_team: 64,
            global_heap_bytes: 128,
            ..DeviceConfig::default()
        };
        let m = Memory::new(&cfg, 0);
        let mut v = m.team_view(0);
        // Fill shared.
        let a = v.alloc_shared(64).unwrap();
        assert!(matches!(decode(a), Some(Space::Shared { .. })));
        // Next goes to the heap.
        let b = v.alloc_shared(64).unwrap();
        assert!(matches!(decode(b), Some(Space::Global { .. })));
        let _c = v.alloc_shared(64).unwrap();
        // Heap now exhausted.
        let err = v.alloc_shared(64).unwrap_err();
        assert!(matches!(err, MemError::HeapExhausted { .. }));
        // Freeing makes room again.
        v.free_shared(b, 64).unwrap();
        assert!(v.alloc_shared(64).is_ok());
    }

    #[test]
    fn free_list_reuses_shared() {
        let m = mem();
        let mut v = m.team_view(0);
        let a = v.alloc_shared(32).unwrap();
        v.free_shared(a, 32).unwrap();
        let b = v.alloc_shared(32).unwrap();
        assert_eq!(a, b, "freed block should be reused");
    }

    #[test]
    fn high_water_tracking() {
        let mut m = mem();
        let mut v = m.team_view(0);
        let _a = v.alloc_shared(100).unwrap();
        let _b = v.alloc_shared(100).unwrap();
        let d = v.finish();
        m.apply_delta(d);
        assert!(m.shared_high_water >= 200);
    }

    #[test]
    fn host_read_write() {
        let mut m = mem();
        let a = m.alloc_global(16).unwrap();
        m.write_bytes(a, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes(a, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn fault_plan_caps_shared_stack() {
        let cfg = DeviceConfig {
            fault: crate::sanitize::FaultPlan {
                shared_stack_limit: Some(16),
                ..Default::default()
            },
            ..DeviceConfig::default()
        };
        let m = Memory::new(&cfg, 0);
        let mut v = m.team_view(0);
        // Fits under the injected cap: stays in shared memory.
        let a = v.alloc_shared(16).unwrap();
        assert!(matches!(decode(a), Some(Space::Shared { .. })));
        // Exceeds the cap: falls back to the heap even though the real
        // shared capacity has plenty of room.
        let b = v.alloc_shared(16).unwrap();
        assert!(matches!(decode(b), Some(Space::Global { .. })));
    }

    #[test]
    fn fault_plan_fails_nth_allocation() {
        let cfg = DeviceConfig {
            fault: crate::sanitize::FaultPlan {
                fail_alloc_after: Some(2),
                ..Default::default()
            },
            ..DeviceConfig::default()
        };
        let m = Memory::new(&cfg, 0);
        let mut v = m.team_view(0);
        v.alloc_shared(8).unwrap();
        v.alloc_shared(8).unwrap();
        let err = v.alloc_shared(8).unwrap_err();
        assert_eq!(err, MemError::AllocFaultInjected);
        // The injected message must not look like an OOM.
        let msg = err.to_string();
        assert!(!msg.contains("memory") && !msg.contains("heap") && !msg.contains("OOM"));
    }

    #[test]
    fn out_of_bounds_detected() {
        let m = mem();
        let mut v = m.team_view(0);
        let err = v
            .load(global_addr(u64::MAX >> 8), Type::I64, 0)
            .unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds(_)));
    }
}
