//! Device reuse: after [`Device::reset`], a warmed device must be
//! byte-identical to a freshly constructed one — same buffer addresses,
//! same outputs, same statistics. The serve session's warm-device LRU
//! depends on exactly this invariant.

use omp_frontend::{compile, FrontendOptions};
use omp_gpusim::{Device, DeviceConfig, LaunchDims, OwnedDevice, RtVal, StatsSnapshot};
use std::sync::Arc;

/// Uses a module-level global (init data) plus globalized captures, so
/// reset has real state to restore.
const SRC: &str = r#"
void scale_add(double* a, double f, long n) {
  #pragma omp target teams distribute
  for (long b = 0; b < n / 4; b++) {
    double base = f * (double)b;
    #pragma omp parallel for
    for (long t = 0; t < 4; t++) {
      a[b * 4 + t] = base + (double)t;
    }
  }
}
"#;

fn run_once(dev: &mut Device) -> (u64, Vec<f64>, StatsSnapshot) {
    let buf = dev.alloc_f64(&[1.5; 64]).unwrap();
    let stats = dev
        .launch(
            "scale_add",
            &[RtVal::Ptr(buf), RtVal::F64(3.0), RtVal::I64(64)],
            LaunchDims {
                teams: Some(4),
                threads: Some(4),
            },
        )
        .unwrap();
    let out = dev.read_f64(buf, 64).unwrap();
    (buf, out, stats.snapshot())
}

#[test]
fn reset_restores_fresh_device_state() {
    let module = compile(SRC, &FrontendOptions::default()).unwrap();
    let mut fresh = Device::new(&module, DeviceConfig::default()).unwrap();
    let cold = run_once(&mut fresh);

    let mut reused = Device::new(&module, DeviceConfig::default()).unwrap();
    // Dirty the device: extra allocations shift the bump cursor, a
    // launch leaves high-water marks and global-memory contents behind.
    let _scratch = reused.alloc_f64(&[9.0; 128]).unwrap();
    let _ = run_once(&mut reused);
    reused.reset();
    let warm = run_once(&mut reused);

    assert_eq!(cold.0, warm.0, "buffer addresses must match after reset");
    assert_eq!(
        cold.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        warm.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "outputs must be bit-identical after reset"
    );
    assert_eq!(cold.2, warm.2, "stats snapshots must match after reset");
    assert_eq!(
        cold.2.to_json(),
        warm.2.to_json(),
        "serialized stats must be byte-identical after reset"
    );
}

#[test]
fn reset_applies_to_owned_devices_too() {
    let module = Arc::new(compile(SRC, &FrontendOptions::default()).unwrap());
    let mut owned = OwnedDevice::new(Arc::clone(&module), DeviceConfig::default()).unwrap();
    let first = owned.with(run_once);
    owned.with(|d| d.reset());
    let second = owned.with(run_once);
    assert_eq!(first.0, second.0);
    assert_eq!(first.2, second.2);
    assert_eq!(
        first.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        second.1.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}
