//! Tests of the cycle-attribution profiler: zero observable effect when
//! off, exact accounting invariants when on, deterministic merges
//! across worker-thread counts, and well-formed trace artifacts.

use omp_frontend::{compile, FrontendOptions, GlobalizationScheme};
use omp_gpusim::{Device, DeviceConfig, LaunchDims, LaunchProfile, ProfileMode, RtVal, Tier};

fn build(src: &str) -> omp_ir::Module {
    let m = compile(src, &FrontendOptions::default()).unwrap();
    omp_ir::verifier::assert_valid(&m);
    m
}

fn build_legacy(src: &str) -> omp_ir::Module {
    let opts = FrontendOptions {
        globalization: GlobalizationScheme::Legacy,
        ..FrontendOptions::default()
    };
    let m = compile(src, &opts).unwrap();
    omp_ir::verifier::assert_valid(&m);
    m
}

fn dims(teams: u32, threads: u32) -> LaunchDims {
    LaunchDims {
        teams: Some(teams),
        threads: Some(threads),
    }
}

/// A generic-mode kernel: worker state machine, parallel-region
/// dispatch, barriers, and runtime queries all exercise the profiler.
const GENERIC_SRC: &str = r#"
void work(double* a, double* b, long n) {
  #pragma omp target teams
  {
    #pragma omp parallel
    {
      long me = (long)omp_get_thread_num();
      long nt = (long)omp_get_num_threads();
      for (long i = me; i < n; i += nt) {
        a[i] = a[i] * 2.0 + b[i];
      }
    }
  }
}
"#;

/// Launches `GENERIC_SRC` on a fresh device and returns what the caller
/// wants to compare.
fn launch_generic(
    m: &omp_ir::Module,
    mode: ProfileMode,
    jobs: u32,
) -> (omp_gpusim::KernelStats, Option<LaunchProfile>, Vec<f64>) {
    let mut dev = Device::new(
        m,
        DeviceConfig {
            num_sms: 4,
            ..DeviceConfig::default()
        },
    )
    .unwrap();
    dev.set_profile(mode);
    dev.set_jobs(jobs);
    let n = 64usize;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let b: Vec<f64> = (0..n).map(|i| (i * 3) as f64).collect();
    let ab = dev.alloc_f64(&a).unwrap();
    let bb = dev.alloc_f64(&b).unwrap();
    let (stats, profile) = dev
        .launch_profiled(
            "work",
            &[RtVal::Ptr(ab), RtVal::Ptr(bb), RtVal::I64(n as i64)],
            dims(6, 8),
        )
        .unwrap();
    let out = dev.read_f64(ab, n).unwrap();
    (stats, profile, out)
}

#[test]
fn profile_off_leaves_stats_and_results_identical() {
    let m = build(GENERIC_SRC);
    let (off_stats, off_profile, off_out) = launch_generic(&m, ProfileMode::Off, 1);
    let (on_stats, on_profile, on_out) = launch_generic(&m, ProfileMode::On, 1);
    assert!(off_profile.is_none(), "Off must not produce a profile");
    assert!(on_profile.is_some(), "On must produce a profile");
    assert_eq!(off_out, on_out, "profiling must not change results");
    assert_eq!(off_stats.tier, Tier::Compiled);
    assert_eq!(
        on_stats.tier,
        Tier::Interp,
        "profiling must force the interpreter tier"
    );
    // The tier tag and the (tier-dependent) superinstruction hit
    // counters aside, every counter must be identical.
    let mut off_snap = off_stats.snapshot();
    off_snap.tier = on_stats.tier;
    off_snap.superinstructions = on_stats.snapshot().superinstructions;
    assert_eq!(
        off_snap,
        on_stats.snapshot(),
        "profiling must not change statistics"
    );
    assert_eq!(off_stats.team_cycles, on_stats.team_cycles);
    assert_eq!(off_stats.coalesced_accesses, on_stats.coalesced_accesses);
    assert_eq!(
        off_stats.uncoalesced_accesses,
        on_stats.uncoalesced_accesses
    );
}

#[test]
fn accounting_invariants_hold() {
    let m = build(GENERIC_SRC);
    let (stats, profile, _) = launch_generic(&m, ProfileMode::On, 1);
    let p = profile.unwrap();

    // Every thread-cycle is attributed exactly once: to a function's
    // exclusive cycles (a charge) or its stall cycles (a barrier/join
    // alignment) — and, independently, to exactly one instruction class.
    let excl: u64 = p.functions.iter().map(|f| f.exclusive_cycles).sum();
    let stall: u64 = p.functions.iter().map(|f| f.stall_cycles).sum();
    let class_sum: u64 = p.class_cycles.iter().sum();
    assert_eq!(excl + stall, p.total_thread_cycles);
    assert_eq!(class_sum, p.total_thread_cycles);
    assert!(p.total_thread_cycles > 0);

    // The "runtime" class is exactly the per-entry-point cycle table.
    let runtime_class = p.class_cycles[omp_gpusim::profile::CLASS_NAMES
        .iter()
        .position(|&n| n == "runtime")
        .unwrap()];
    let rtl_sum: u64 = p.rtl.iter().map(|r| r.cycles).sum();
    assert_eq!(runtime_class, rtl_sum);

    // Inclusive covers exclusive + stall per function; the kernel entry
    // is on every stack for every cycle.
    for f in &p.functions {
        assert!(
            f.inclusive_cycles >= f.exclusive_cycles + f.stall_cycles,
            "{}: inclusive {} < exclusive {} + stall {}",
            f.name,
            f.inclusive_cycles,
            f.exclusive_cycles,
            f.stall_cycles
        );
    }
    let kernel_row = p
        .functions
        .iter()
        .find(|f| f.name.contains("__omp_offloading"))
        .expect("kernel entry profiled");
    assert_eq!(kernel_row.inclusive_cycles, p.total_thread_cycles);

    // Event counts line up with the statistics counters.
    let barrier_events: usize = p.teams.iter().map(|t| t.barriers.len()).sum();
    assert_eq!(barrier_events as u64, stats.barriers);
    let coal: u64 = p.functions.iter().map(|f| f.coalesced_accesses).sum();
    let uncoal: u64 = p.functions.iter().map(|f| f.uncoalesced_accesses).sum();
    assert_eq!(coal, stats.coalesced_accesses);
    assert_eq!(uncoal, stats.uncoalesced_accesses);

    // Generic-mode dispatch ran parallel regions, and they were tracked.
    assert!(stats.parallel_regions > 0);
    assert!(p.teams.iter().any(|t| !t.regions.is_empty()));
    assert_eq!(p.cycles, stats.cycles);
}

#[test]
fn globalization_allocs_are_tracked() {
    // Legacy globalization shares a per-thread slot through the runtime
    // stack, producing globalization allocations.
    let m = build_legacy(
        r#"
void share(long* out, long n) {
  #pragma omp target teams
  {
    long x = 7;
    #pragma omp parallel
    {
      long me = (long)omp_get_thread_num();
      out[me] = x + me;
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_profile(ProfileMode::On);
    let out = dev.alloc_i64(&[0; 8]).unwrap();
    let (stats, profile) = dev
        .launch_profiled("share", &[RtVal::Ptr(out), RtVal::I64(8)], dims(2, 4))
        .unwrap();
    let p = profile.unwrap();
    assert!(stats.globalization_allocs > 0, "legacy scheme globalizes");
    let alloc_events: usize = p.teams.iter().map(|t| t.allocs.len()).sum();
    assert_eq!(alloc_events as u64, stats.globalization_allocs);
    assert!(p
        .teams
        .iter()
        .flat_map(|t| &t.allocs)
        .all(|&(_, bytes)| bytes > 0));
}

#[test]
fn team_tracks_are_monotone_and_bounded() {
    let m = build(GENERIC_SRC);
    let (stats, profile, _) = launch_generic(&m, ProfileMode::On, 1);
    let p = profile.unwrap();
    assert_eq!(p.teams.len(), stats.team_cycles.len());
    // Per SM: teams run back-to-back in team-id order, never overlapping.
    let mut sm_cursor = vec![0u64; p.num_sms as usize];
    for (i, t) in p.teams.iter().enumerate() {
        assert_eq!(t.team as usize, i);
        assert_eq!(t.sm, (i as u32) % p.num_sms);
        assert_eq!(
            t.start, sm_cursor[t.sm as usize],
            "team {i} must start where its SM left off"
        );
        assert!(t.end >= t.start);
        assert_eq!(t.end - t.start, stats.team_cycles[i]);
        sm_cursor[t.sm as usize] = t.end;
        for r in &t.regions {
            assert!(r.start >= t.start && r.end <= t.end && r.start <= r.end);
        }
        for &b in &t.barriers {
            assert!(b >= t.start && b <= t.end);
        }
        for &(c, _) in &t.allocs {
            assert!(c >= t.start && c <= t.end);
        }
    }
    assert_eq!(sm_cursor.iter().max().copied().unwrap_or(0), stats.cycles);
}

#[test]
fn profiles_are_bit_identical_across_jobs() {
    let m = build(GENERIC_SRC);
    let (stats1, p1, out1) = launch_generic(&m, ProfileMode::On, 1);
    let (stats4, p4, out4) = launch_generic(&m, ProfileMode::On, 4);
    let (p1, p4) = (p1.unwrap(), p4.unwrap());
    assert_eq!(out1, out4);
    assert_eq!(stats1.snapshot(), stats4.snapshot());
    assert_eq!(p1, p4, "profile must not depend on host parallelism");
    assert_eq!(p1.to_json(), p4.to_json());
    assert_eq!(p1.chrome_trace(), p4.chrome_trace());
}

#[test]
fn artifacts_are_valid_json() {
    let m = build(GENERIC_SRC);
    let (_, profile, _) = launch_generic(&m, ProfileMode::On, 2);
    let p = profile.unwrap();
    let json = p.to_json();
    omp_json::validate(&json).expect("profile JSON must validate");
    assert!(json.starts_with("{\"schema\":\"ompgpu-profile/v1\""));
    let trace = p.chrome_trace();
    omp_json::validate(&trace).expect("chrome trace must validate");
    assert!(trace.contains("\"traceEvents\""));
    // Every SM with a team gets a named track, every team a span.
    for t in &p.teams {
        assert!(trace.contains(&format!("\"name\":\"team {}\"", t.team)));
    }
    assert!(trace.contains("\"name\":\"SM 0\""));
}

#[test]
fn hot_functions_rank_by_exclusive_cycles() {
    let m = build(GENERIC_SRC);
    let (_, profile, _) = launch_generic(&m, ProfileMode::On, 1);
    let p = profile.unwrap();
    let hot = p.hot_functions();
    assert!(!hot.is_empty());
    for w in hot.windows(2) {
        assert!(
            w[0].exclusive_cycles > w[1].exclusive_cycles
                || (w[0].exclusive_cycles == w[1].exclusive_cycles && w[0].name <= w[1].name)
        );
    }
}
