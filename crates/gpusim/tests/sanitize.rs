//! End-to-end device-sanitizer tests: seeded races, barrier
//! divergence, and memory-state bugs must be detected with structured
//! provenance; clean programs must stay silent; findings must be
//! bit-identical across worker-thread counts; and the `Off` path must
//! leave launches byte-identical to a device that never sanitized.

use omp_frontend::{compile, FrontendOptions};
use omp_gpusim::{
    Device, DeviceConfig, FindingKind, LaunchDims, RtVal, SanitizeMode, Severity, Tier,
};
use omp_ir::{Builder, ExecMode, Function, KernelInfo, Module, RtlFn, Type, Value};

fn build(src: &str) -> Module {
    let m = compile(src, &FrontendOptions::default()).unwrap();
    omp_ir::verifier::assert_valid(&m);
    m
}

fn dims(teams: u32, threads: u32) -> LaunchDims {
    LaunchDims {
        teams: Some(teams),
        threads: Some(threads),
    }
}

const RACY: &str = r#"
void racy(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    out[0] = me;
  }
}
"#;

#[test]
fn write_write_race_is_detected_with_provenance() {
    let m = build(RACY);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_sanitize(SanitizeMode::On);
    let out = dev.alloc_i64(&[0; 4]).unwrap();
    let (_, findings) = dev
        .launch_checked("racy", &[RtVal::Ptr(out), RtVal::I64(4)], dims(1, 4))
        .unwrap();
    let race = findings
        .iter()
        .find(|f| f.kind == FindingKind::DataRace)
        .expect("seeded write/write race not detected");
    assert_eq!(race.severity, Severity::Error);
    assert!(race.function.contains("racy"), "{}", race.function);
    assert_eq!(race.team, 0);
    assert!(race.message.contains("write"), "{}", race.message);
}

#[test]
fn barrier_separated_accesses_are_not_a_race() {
    let m = build(
        r#"
void sync(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    if (me == 0) {
      out[4] = 9;
    }
    #pragma omp barrier
    out[me] = out[4];
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_sanitize(SanitizeMode::On);
    let out = dev.alloc_i64(&[0; 8]).unwrap();
    let (_, findings) = dev
        .launch_checked("sync", &[RtVal::Ptr(out), RtVal::I64(8)], dims(1, 4))
        .unwrap();
    assert!(findings.is_empty(), "false positives: {findings:?}");
    assert_eq!(dev.read_i64(out, 4).unwrap(), vec![9; 4]);
}

#[test]
fn divergent_barrier_sites_are_reported() {
    let m = build(
        r#"
void divb(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    if (me == 0) {
      out[4] = 1;
      #pragma omp barrier
    } else {
      #pragma omp barrier
    }
    out[me] = out[4];
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_sanitize(SanitizeMode::On);
    let out = dev.alloc_i64(&[0; 8]).unwrap();
    let (_, findings) = dev
        .launch_checked("divb", &[RtVal::Ptr(out), RtVal::I64(8)], dims(1, 4))
        .unwrap();
    let div = findings
        .iter()
        .find(|f| f.kind == FindingKind::BarrierDivergence)
        .expect("divergent barrier sites not reported");
    assert_eq!(div.severity, Severity::Error);
    assert!(div.function.contains("divb"));
    assert!(div.message.contains("barrier"), "{}", div.message);
}

/// Hand-built kernel: read a `__kmpc_alloc_shared` allocation before
/// any write (uninit read), then free it and store through the dangling
/// pointer (use-after-free).
fn memory_state_kernel() -> Module {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition("mem", vec![Type::Ptr], Type::Void));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let p = b.call_rtl(RtlFn::AllocShared, vec![Value::i64(8)]);
        let v = b.load(Type::I64, p); // uninit read
        b.store(v, Value::Arg(0));
        b.call_rtl(RtlFn::FreeShared, vec![p, Value::i64(8)]);
        b.store(Value::i64(7), p); // use-after-free
        b.ret(None);
    }
    m.kernels.push(KernelInfo {
        func: f,
        exec_mode: ExecMode::Spmd,
        num_teams: Some(1),
        thread_limit: Some(1),
        source_name: "mem".into(),
        launch: Default::default(),
    });
    omp_ir::verifier::assert_valid(&m);
    m
}

#[test]
fn uninit_read_and_use_after_free_are_detected() {
    let m = memory_state_kernel();
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_sanitize(SanitizeMode::On);
    let out = dev.alloc_i64(&[0]).unwrap();
    let (_, findings) = dev
        .launch_checked("mem", &[RtVal::Ptr(out)], dims(1, 1))
        .unwrap();
    assert!(
        findings.iter().any(|f| f.kind == FindingKind::UninitRead),
        "uninit read not detected: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.kind == FindingKind::UseAfterFree),
        "use-after-free not detected: {findings:?}"
    );
    for f in &findings {
        assert!(f.function.contains("mem"));
        assert_eq!(f.severity, Severity::Error);
    }
}

#[test]
fn findings_are_bit_identical_across_worker_thread_counts() {
    let m = build(RACY);
    let mut reference = None;
    for jobs in [1u32, 2, 4] {
        let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
        dev.set_sanitize(SanitizeMode::On);
        dev.set_jobs(jobs);
        let out = dev.alloc_i64(&[0; 8]).unwrap();
        let (_, findings) = dev
            .launch_checked("racy", &[RtVal::Ptr(out), RtVal::I64(8)], dims(4, 4))
            .unwrap();
        assert!(!findings.is_empty());
        match &reference {
            None => reference = Some(findings),
            Some(r) => assert_eq!(r, &findings, "findings differ at jobs={jobs}"),
        }
    }
}

#[test]
fn off_mode_is_byte_identical_and_returns_no_findings() {
    let m = build(RACY);
    // A device that never heard of the sanitizer.
    let mut plain = Device::new(&m, DeviceConfig::default()).unwrap();
    let out1 = plain.alloc_i64(&[0; 4]).unwrap();
    let base = plain
        .launch("racy", &[RtVal::Ptr(out1), RtVal::I64(4)], dims(1, 4))
        .unwrap();
    // A device with the sanitizer explicitly Off.
    let mut off = Device::new(&m, DeviceConfig::default()).unwrap();
    off.set_sanitize(SanitizeMode::Off);
    let out2 = off.alloc_i64(&[0; 4]).unwrap();
    let (stats, findings) = off
        .launch_checked("racy", &[RtVal::Ptr(out2), RtVal::I64(4)], dims(1, 4))
        .unwrap();
    assert!(findings.is_empty());
    assert_eq!(base.snapshot(), stats.snapshot());
    assert_eq!(
        plain.read_i64(out1, 4).unwrap(),
        off.read_i64(out2, 4).unwrap()
    );
    // Sanitizing must observe, never perturb: stats identical under On.
    let mut on = Device::new(&m, DeviceConfig::default()).unwrap();
    on.set_sanitize(SanitizeMode::On);
    let out3 = on.alloc_i64(&[0; 4]).unwrap();
    let (stats_on, _) = on
        .launch_checked("racy", &[RtVal::Ptr(out3), RtVal::I64(4)], dims(1, 4))
        .unwrap();
    assert_eq!(base.tier, Tier::Compiled);
    assert_eq!(
        stats_on.tier,
        Tier::Interp,
        "sanitizing must force the interpreter tier"
    );
    // The tier tag is informational; every counter must be identical.
    let mut base_snap = base.snapshot();
    base_snap.tier = stats_on.tier;
    assert_eq!(base_snap, stats_on.snapshot());
}

#[test]
fn findings_serialize_to_valid_json() {
    let m = build(RACY);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_sanitize(SanitizeMode::On);
    let out = dev.alloc_i64(&[0; 4]).unwrap();
    let (_, findings) = dev
        .launch_checked("racy", &[RtVal::Ptr(out), RtVal::I64(4)], dims(1, 4))
        .unwrap();
    let json = omp_gpusim::findings_to_json(&findings);
    omp_json::validate(&json).unwrap();
    assert!(json.contains("\"data-race\""));
}
