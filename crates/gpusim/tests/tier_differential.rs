//! Differential testing of the two execution tiers: the compiled
//! block engine (tier 1) must be observationally indistinguishable
//! from the reference interpreter (tier 0) — bit-identical outputs,
//! statistics, per-team cycle counts, and failure diagnostics — for
//! every program, launch geometry, worker-thread count, and
//! instruction budget.

use omp_frontend::{compile, FrontendOptions};
use omp_gpusim::{Device, DeviceConfig, KernelStats, LaunchDims, RtVal, StatsSnapshot, Tier};
use omp_ir::{BinOp, Builder, CmpOp, ExecMode, Function, KernelInfo, Module, Type, Value};
use proptest::prelude::*;

/// A kernel mixing every fusion-eligible idiom: address-calc + load,
/// load + arith + store, compare + branch, constant-operand
/// arithmetic, selects, and a math call.
const MIXED_SRC: &str = r#"
void mixed(double* a, double* b, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) {
    double x = a[i] * 2.0 + b[i];
    double y = fabs(x);
    if (i % 3 == 0) { y = y + sqrt(y + 1.0); }
    a[i] = y;
  }
}
"#;

/// A generic-mode kernel: the sequential team loop bridges to the
/// interpreter at every runtime call while the parallel body runs
/// compiled.
const GENERIC_SRC: &str = r#"
void nested(double* a, long n) {
  #pragma omp target teams distribute
  for (long blk = 0; blk < n; blk++) {
    double base = (double)blk * 1.5;
    #pragma omp parallel for
    for (long t = 0; t < 8; t++) { a[blk * 8 + t] = base + (double)t; }
  }
}
"#;

fn build(src: &str) -> Module {
    let m = compile(src, &FrontendOptions::default()).unwrap();
    omp_ir::verifier::assert_valid(&m);
    m
}

/// Snapshot with the (informational) tier tag normalized away so the
/// counters can be compared across tiers.
fn norm(s: &KernelStats) -> StatsSnapshot {
    let mut snap = s.snapshot();
    snap.tier = Tier::Interp;
    // Superinstruction hit counters are tier-dependent by construction
    // (the interpreter executes no compiled steps), so they are zeroed
    // alongside the tier tag before comparison.
    snap.superinstructions = [0; 4];
    snap
}

/// Runs `kernel` twice — interpreter, then compiled — with identical
/// inputs and knobs, and asserts every observable is bit-identical.
/// Returns the interpreter outcome for additional checks.
#[allow(clippy::too_many_arguments)]
fn assert_tiers_agree(
    m: &Module,
    kernel: &str,
    init: &[f64],
    extra: &[RtVal],
    dims: LaunchDims,
    jobs: u32,
    num_sms: u32,
    max_insts: Option<u64>,
) -> Result<(Vec<f64>, KernelStats), String> {
    let run = |tier: Tier| {
        let mut dev = Device::new(
            m,
            DeviceConfig {
                num_sms,
                ..DeviceConfig::default()
            },
        )
        .unwrap();
        dev.set_tier(tier);
        dev.set_jobs(jobs);
        if let Some(b) = max_insts {
            dev.set_max_insts(b);
        }
        let buf = dev.alloc_f64(init).unwrap();
        let mut args = vec![RtVal::Ptr(buf)];
        args.extend_from_slice(extra);
        match dev.launch(kernel, &args, dims) {
            Ok(stats) => {
                let out = dev.read_f64(buf, init.len()).unwrap();
                assert_eq!(stats.tier, tier, "stats must record the tier that ran");
                Ok((out, stats))
            }
            Err(e) => Err(e.to_string()),
        }
    };
    let interp = run(Tier::Interp);
    let compiled = run(Tier::Compiled);
    match (&interp, &compiled) {
        (Ok((oi, si)), Ok((oc, sc))) => {
            assert_eq!(
                oi.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                oc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "outputs diverged between tiers"
            );
            assert_eq!(norm(si), norm(sc), "statistics diverged between tiers");
            assert_eq!(si.team_cycles, sc.team_cycles, "team cycles diverged");
            assert_eq!(si.coalesced_accesses, sc.coalesced_accesses);
            assert_eq!(si.uncoalesced_accesses, sc.uncoalesced_accesses);
            for (k, v) in &si.rtl_calls {
                assert_eq!(sc.rtl_calls.get(k), Some(v), "rtl call count for {k}");
            }
        }
        (Err(ei), Err(ec)) => {
            assert_eq!(ei, ec, "failure diagnostics diverged between tiers");
        }
        (Ok(_), Err(e)) => panic!("interp succeeded but compiled failed: {e}"),
        (Err(e), Ok(_)) => panic!("compiled succeeded but interp failed: {e}"),
    }
    interp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random geometry × worker count × SM count on the fusion-heavy
    /// SPMD kernel: outputs, stats, and team cycles bit-identical.
    #[test]
    fn mixed_kernel_is_tier_invariant(
        n in 1usize..64,
        teams in 1u32..5,
        threads in 1u32..33,
        jobs in 1u32..4,
        num_sms in 1u32..5,
    ) {
        let m = build(MIXED_SRC);
        let a: Vec<f64> = (0..n).map(|i| (i as f64) - 7.5).collect();
        let b: Vec<f64> = (0..n).map(|i| (i * 3) as f64 * 0.25).collect();
        let dims = LaunchDims { teams: Some(teams), threads: Some(threads) };
        let run = |tier: Tier| {
            let mut dev = Device::new(
                &m,
                DeviceConfig { num_sms, ..DeviceConfig::default() },
            )
            .unwrap();
            dev.set_tier(tier);
            dev.set_jobs(jobs);
            let ab = dev.alloc_f64(&a).unwrap();
            let bb = dev.alloc_f64(&b).unwrap();
            let stats = dev
                .launch("mixed", &[RtVal::Ptr(ab), RtVal::Ptr(bb), RtVal::I64(n as i64)], dims)
                .unwrap();
            (dev.read_f64(ab, n).unwrap(), stats)
        };
        let (oi, si) = run(Tier::Interp);
        let (oc, sc) = run(Tier::Compiled);
        prop_assert_eq!(
            oi.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            oc.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(norm(&si), norm(&sc));
        prop_assert_eq!(si.team_cycles, sc.team_cycles);
    }

    /// Generic-mode worker state machine under both tiers: the
    /// parallel-region bridges must preserve every counter.
    #[test]
    fn generic_kernel_is_tier_invariant(
        n in 1usize..9,
        jobs in 1u32..4,
        num_sms in 1u32..5,
    ) {
        let m = build(GENERIC_SRC);
        let init = vec![0.0; n * 8];
        let dims = LaunchDims { teams: Some(2), threads: Some(8) };
        let _ = assert_tiers_agree(
            &m, "nested", &init, &[RtVal::I64(n as i64)], dims, jobs, num_sms, None,
        );
    }

    /// Instruction-budget sweep: for every budget the two tiers stop
    /// at the same instruction with the same diagnostic — the compiled
    /// engine's amortized budget check must deopt, not overshoot.
    #[test]
    fn budget_exhaustion_is_tier_exact(budget in 1u64..2_500) {
        let m = build(MIXED_SRC);
        let n = 24usize;
        let init: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let dims = LaunchDims { teams: Some(2), threads: Some(8) };
        let run = |tier: Tier| {
            let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
            dev.set_tier(tier);
            dev.set_max_insts(budget);
            let ab = dev.alloc_f64(&init).unwrap();
            let bb = dev.alloc_f64(&init).unwrap();
            dev.launch("mixed", &[RtVal::Ptr(ab), RtVal::Ptr(bb), RtVal::I64(n as i64)], dims)
                .map(|s| {
                    (dev.read_f64(ab, n).unwrap(), norm(&s), s.team_cycles.clone())
                })
                .map_err(|e| e.to_string())
        };
        prop_assert_eq!(run(Tier::Interp), run(Tier::Compiled));
    }
}

// ---------------------------------------------------------------------
// Superinstruction decomposition: each fused pattern must charge the
// same instructions, cycles, and memory accesses as its unfused
// sequence — asserted by running the *same* IR under both tiers, with
// use counts steering whether the intermediate register is written.
// ---------------------------------------------------------------------

fn kernelize(m: &mut Module, f: omp_ir::FuncId, name: &str) {
    m.kernels.push(KernelInfo {
        func: f,
        exec_mode: ExecMode::Spmd,
        num_teams: Some(1),
        thread_limit: Some(1),
        source_name: name.into(),
        launch: Default::default(),
    });
}

fn one_thread() -> LaunchDims {
    LaunchDims {
        teams: Some(1),
        threads: Some(1),
    }
}

/// Runs a handwritten one-thread kernel under both tiers over an i64
/// buffer and asserts outputs and statistics are bit-identical.
fn assert_ir_tier_identical(m: &Module, kernel: &str, init: &[i64]) -> Vec<i64> {
    let run = |tier: Tier| {
        let mut dev = Device::new(m, DeviceConfig::default()).unwrap();
        dev.set_tier(tier);
        let buf = dev.alloc_i64(init).unwrap();
        let stats = dev
            .launch(kernel, &[RtVal::Ptr(buf)], one_thread())
            .unwrap();
        (dev.read_i64(buf, init.len()).unwrap(), norm(&stats))
    };
    let (oi, si) = run(Tier::Interp);
    let (oc, sc) = run(Tier::Compiled);
    assert_eq!(oi, oc, "outputs diverged");
    assert_eq!(si, sc, "stats diverged");
    oi
}

/// gep → load where the address has exactly one use: fuses into a
/// GepLoad with no intermediate register write.
#[test]
fn gep_load_fusion_single_use() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition("k", vec![Type::Ptr], Type::Void));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let p = b.gep_const(Value::Arg(0), 8);
        let v = b.load(Type::I64, p);
        let v2 = b.bin(BinOp::Mul, Type::I64, v, Value::i64(3));
        b.store(v2, Value::Arg(0));
        b.ret(None);
    }
    kernelize(&mut m, f, "k");
    omp_ir::verifier::assert_valid(&m);
    let out = assert_ir_tier_identical(&m, "k", &[0, 11]);
    assert_eq!(out[0], 33);
}

/// gep → load where the address is reused by a later store: still
/// fuses, but the intermediate register must be materialized.
#[test]
fn gep_load_fusion_multi_use_writes_intermediate() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition("k", vec![Type::Ptr], Type::Void));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let p = b.gep_const(Value::Arg(0), 8);
        let v = b.load(Type::I64, p);
        let v2 = b.bin(BinOp::Add, Type::I64, v, Value::i64(5));
        // Second use of `p`: the fused GepLoad must still write it.
        b.store(v2, p);
        b.ret(None);
    }
    kernelize(&mut m, f, "k");
    omp_ir::verifier::assert_valid(&m);
    let out = assert_ir_tier_identical(&m, "k", &[0, 11]);
    assert_eq!(out[1], 16);
}

/// load → bin → store read-modify-write collapses into one
/// superinstruction when the intermediates are single-use.
#[test]
fn load_bin_store_fusion() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition("k", vec![Type::Ptr], Type::Void));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let v = b.load(Type::I64, Value::Arg(0));
        let v2 = b.bin(BinOp::Add, Type::I64, v, Value::i64(100));
        b.store(v2, Value::Arg(0));
        b.ret(None);
    }
    kernelize(&mut m, f, "k");
    omp_ir::verifier::assert_valid(&m);
    let out = assert_ir_tier_identical(&m, "k", &[7]);
    assert_eq!(out[0], 107);
}

/// cmp → cond_br feeding the terminator fuses into a CmpBr; both
/// branch directions and the loop back-edge phi moves must agree.
#[test]
fn cmp_branch_fusion_loop() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition("k", vec![Type::Ptr], Type::Void));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64);
        let acc = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::i64(0));
        b.add_phi_incoming(acc, entry, Value::i64(0));
        let c = b.cmp(CmpOp::Slt, Type::I64, i, Value::i64(10));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add_i64(i, Value::i64(1));
        let acc2 = b.add_i64(acc, i2);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to(exit);
        b.store(acc, Value::Arg(0));
        b.ret(None);
    }
    kernelize(&mut m, f, "k");
    omp_ir::verifier::assert_valid(&m);
    let out = assert_ir_tier_identical(&m, "k", &[0]);
    assert_eq!(out[0], 55);
}

/// Runtime traps must carry identical diagnostics from both tiers,
/// including the faulting position restored by a fused step.
#[test]
fn trap_diagnostics_are_tier_identical() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition("k", vec![Type::Ptr], Type::Void));
    {
        let mut b = Builder::at_entry(&mut m, f);
        // Load through a wild pointer from inside a fused gep+load.
        let p = b.gep_const(Value::i64(0x7777_7777), 8);
        let v = b.load(Type::I64, p);
        b.store(v, Value::Arg(0));
        b.ret(None);
    }
    kernelize(&mut m, f, "k");
    let run = |tier: Tier| {
        let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
        dev.set_tier(tier);
        let buf = dev.alloc_i64(&[0]).unwrap();
        dev.launch("k", &[RtVal::Ptr(buf)], one_thread())
            .map(|_| ())
            .unwrap_err()
            .to_string()
    };
    assert_eq!(run(Tier::Interp), run(Tier::Compiled));
}

/// A producer/consumer pipeline of dependent `nowait` targets: the
/// async-offload path (edge derivation, stream assignment, makespan
/// scheduling, capture/replay) must be as tier- and jobs-invariant as
/// a plain launch.
const PIPELINE_SRC: &str = r#"
void pipe(double* a, double* b, double* c, long n) {
  #pragma omp target teams distribute parallel for nowait depend(out: a) num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) { a[i] = (double)i + 1.0; }
  #pragma omp target teams distribute parallel for nowait depend(out: b) num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) { b[i] = (double)i * 2.0; }
  #pragma omp target teams distribute parallel for nowait depend(in: a, b) depend(out: c) num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) { c[i] = a[i] + b[i]; }
}
"#;

/// Runs `PIPELINE_SRC` as a launch plan (eager or captured/replayed)
/// and returns the consumer output bits plus normalized statistics.
fn run_pipeline(m: &Module, tier: Tier, jobs: u32, replay: bool) -> (Vec<u64>, StatsSnapshot) {
    let n = 48usize;
    let mut dev = Device::new(m, DeviceConfig::default()).unwrap();
    dev.set_tier(tier);
    dev.set_jobs(jobs);
    let a = dev.alloc_f64(&vec![0.0; n]).unwrap();
    let b = dev.alloc_f64(&vec![0.0; n]).unwrap();
    let c = dev.alloc_f64(&vec![0.0; n]).unwrap();
    let args = [
        RtVal::Ptr(a),
        RtVal::Ptr(b),
        RtVal::Ptr(c),
        RtVal::I64(n as i64),
    ];
    let dims = LaunchDims::default();
    let stats = if replay {
        let graph = dev.capture_graph("pipe", &args, dims).unwrap();
        dev.replay_graph(&graph).unwrap()
    } else {
        dev.launch_plan("pipe", &args, dims).unwrap()
    };
    let bits: Vec<u64> = dev
        .read_f64(c, n)
        .unwrap()
        .into_iter()
        .map(f64::to_bits)
        .collect();
    (bits, norm(&stats))
}

/// Launch plans and replays must be bit-identical across tiers, host
/// worker counts, and the eager-vs-replay axis — the same invariant a
/// single launch obeys, extended to the whole dependency graph.
#[test]
fn plans_and_replays_are_tier_and_jobs_invariant() {
    let m = build(PIPELINE_SRC);
    let (ref_bits, ref_stats) = run_pipeline(&m, Tier::Interp, 1, false);
    let expect: Vec<u64> = (0..48)
        .map(|i| ((i as f64 + 1.0) + (i as f64 * 2.0)).to_bits())
        .collect();
    assert_eq!(ref_bits, expect, "pipeline result must be correct");
    for tier in [Tier::Interp, Tier::Compiled] {
        for jobs in [1, 2, 5] {
            for replay in [false, true] {
                let (bits, stats) = run_pipeline(&m, tier, jobs, replay);
                assert_eq!(
                    bits, ref_bits,
                    "output divergence: tier={tier:?} jobs={jobs} replay={replay}"
                );
                assert_eq!(
                    stats, ref_stats,
                    "stats divergence: tier={tier:?} jobs={jobs} replay={replay}"
                );
            }
        }
    }
}

/// Every telemetry metric derived from a launch — counters and
/// histogram bucket counts alike — must be bit-identical across tiers,
/// worker counts, and the eager-vs-replay axis. Wall clock never
/// enters the registry; model cycles do, and they are deterministic.
#[test]
fn telemetry_metrics_are_tier_and_jobs_invariant() {
    let m = build(PIPELINE_SRC);
    let registry_of = |tier, jobs, replay| {
        let (_, stats) = run_pipeline(&m, tier, jobs, replay);
        let mut reg = omp_telemetry::MetricsRegistry::new();
        stats.record_metrics(&mut reg);
        reg
    };
    let reference = registry_of(Tier::Interp, 1, false);
    assert!(!reference.is_empty());
    for tier in [Tier::Interp, Tier::Compiled] {
        for jobs in [1, 4] {
            for replay in [false, true] {
                let reg = registry_of(tier, jobs, replay);
                assert_eq!(
                    reg, reference,
                    "metric divergence: tier={tier:?} jobs={jobs} replay={replay}"
                );
                // The renderings are pure functions of the registry,
                // so they must be byte-identical too.
                assert_eq!(reg.render_json(), reference.render_json());
                assert_eq!(reg.render_prometheus(), reference.render_prometheus());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Fuzz the host-parallelism and replay axes: any (jobs, replay)
    /// pair must reproduce the single-threaded eager plan bit-for-bit
    /// on both tiers.
    #[test]
    fn fuzz_plan_jobs_and_replay(jobs in 1u32..6, replay in any::<bool>()) {
        let m = build(PIPELINE_SRC);
        let (ref_bits, ref_stats) = run_pipeline(&m, Tier::Interp, 1, false);
        for tier in [Tier::Interp, Tier::Compiled] {
            let (bits, stats) = run_pipeline(&m, tier, jobs, replay);
            prop_assert_eq!(&bits, &ref_bits);
            prop_assert_eq!(&stats, &ref_stats);
        }
    }
}
