//! Robustness: the device must return structured errors, never panic,
//! on arbitrary launch requests — wrong kernel names, wrong argument
//! counts and types, degenerate launch geometry, hostile fault plans,
//! and tiny budgets (the `frontend/tests/no_panics.rs` pattern applied
//! to the simulator).

use omp_frontend::{compile, FrontendOptions};
use omp_gpusim::{Device, DeviceConfig, FaultPlan, LaunchDims, RtVal, SanitizeMode};
use proptest::prelude::*;

const SUBJECT: &str = r#"
void kern(double* out, long n) {
  #pragma omp target teams distribute
  for (long b = 0; b < n; b++) {
    double v = (double)b;
    #pragma omp parallel for
    for (long t = 0; t < 4; t++) { out[b * 4 + t] = v; }
  }
}
"#;

fn module() -> omp_ir::Module {
    compile(SUBJECT, &FrontendOptions::default()).unwrap()
}

fn rtval_strategy() -> impl Strategy<Value = RtVal> {
    prop_oneof![
        any::<i64>().prop_map(RtVal::I64),
        any::<i32>().prop_map(RtVal::I32),
        any::<bool>().prop_map(RtVal::Bool),
        (-1000i64..1000).prop_map(|v| RtVal::F64(v as f64)),
        // Wild pointers, including null and unmapped addresses.
        (0u64..u64::MAX).prop_map(RtVal::Ptr),
    ]
}

/// `Option` strategy over any range (the vendored proptest has no
/// `option` module): half `None`, half drawn from the inner strategy.
fn opt<S>(s: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: std::fmt::Debug + Clone,
{
    prop_oneof![Just(None), s.prop_map(Some)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary kernel names, argument vectors, and launch dims are
    /// rejected (or executed) without panicking.
    #[test]
    fn arbitrary_launch_requests_never_panic(
        name in "[a-z_]{0,12}",
        args in proptest::collection::vec(rtval_strategy(), 0..5),
        teams in opt(0u32..9),
        threads in opt(0u32..65),
    ) {
        let m = module();
        let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
        // Keep hostile launches cheap: wild pointers can send loop
        // bounds to the billions, which only the budget should stop.
        dev.set_max_insts(50_000);
        let _ = dev.launch(&name, &args, LaunchDims { teams, threads });
    }

    /// Hostile fault plans and tiny budgets degrade into errors, never
    /// panics — with the sanitizer on or off.
    #[test]
    fn hostile_fault_plans_never_panic(
        stack in opt(0u64..128),
        allocs in opt(0u64..4),
        trap in opt(0u64..2_000),
        abort in opt(0u32..6),
        budget in 1u64..20_000,
        sanitize in any::<bool>(),
        jobs in 1u32..5,
    ) {
        let m = module();
        let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
        dev.set_fault_plan(FaultPlan {
            shared_stack_limit: stack,
            fail_alloc_after: allocs,
            trap_at_inst: trap,
            abort_team: abort,
        });
        dev.set_max_insts(budget);
        dev.set_sanitize(if sanitize { SanitizeMode::On } else { SanitizeMode::Off });
        dev.set_jobs(jobs);
        let out = dev.alloc_f64(&[0.0; 16]).unwrap();
        let dims = LaunchDims { teams: Some(4), threads: Some(4) };
        let _ = dev.launch_checked("kern", &[RtVal::Ptr(out), RtVal::I64(4)], dims);
        // The device stays usable after whatever the plan injected.
        dev.set_fault_plan(FaultPlan::default());
        dev.set_max_insts(1_000_000);
        let _ = dev.launch("kern", &[RtVal::Ptr(out), RtVal::I64(4)], dims);
    }
}
