//! Streams, launch plans, and task-graph capture-and-replay: the
//! determinism invariant (bit-identical outputs/stats across `--jobs`,
//! tiers, and eager-vs-replay), overlap in the cycle makespan, stream
//! assignment, and cross-kernel race detection on `depend` edges.

use omp_frontend::{compile, FrontendOptions};
use omp_gpusim::{
    Device, DeviceConfig, FindingKind, LaunchDims, ProfileMode, RtVal, SanitizeMode, StatsSnapshot,
    Tier,
};

/// Producer/producer/consumer: the first two targets are independent
/// (`nowait`, disjoint `depend(out)`), the third waits on both.
const PIPELINE_SRC: &str = r#"
void pipeline(double* a, double* b, double* c, long n) {
  #pragma omp target teams distribute parallel for nowait num_teams(2) thread_limit(8) depend(out: a)
  for (long i = 0; i < n; i++) { a[i] = (double)i + 1.0; }
  #pragma omp target teams distribute parallel for nowait num_teams(2) thread_limit(8) depend(out: b)
  for (long i = 0; i < n; i++) { b[i] = (double)i * 2.0; }
  #pragma omp target teams distribute parallel for nowait num_teams(2) thread_limit(8) depend(in: a, b) depend(out: c)
  for (long i = 0; i < n; i++) { c[i] = a[i] + b[i]; }
}
"#;

/// The same pipeline inside a `taskgraph` capture-and-replay region.
const GRAPH_SRC: &str = r#"
void pipeline(double* a, double* b, double* c, long n) {
  #pragma omp taskgraph
  {
    #pragma omp target teams distribute parallel for nowait num_teams(2) thread_limit(8) depend(out: a)
    for (long i = 0; i < n; i++) { a[i] = (double)i + 1.0; }
    #pragma omp target teams distribute parallel for nowait num_teams(2) thread_limit(8) depend(out: b)
    for (long i = 0; i < n; i++) { b[i] = (double)i * 2.0; }
    #pragma omp target teams distribute parallel for nowait num_teams(2) thread_limit(8) depend(in: a, b) depend(out: c)
    for (long i = 0; i < n; i++) { c[i] = a[i] + b[i]; }
  }
}
"#;

/// Two unordered `nowait` targets writing the same buffer: a seeded
/// cross-kernel race for the sanitizer.
const RACY_SRC: &str = r#"
void racy(double* a, long n) {
  #pragma omp target teams distribute parallel for nowait num_teams(1) thread_limit(4)
  for (long i = 0; i < n; i++) { a[i] = 1.0; }
  #pragma omp target teams distribute parallel for nowait num_teams(1) thread_limit(4)
  for (long i = 0; i < n; i++) { a[i] = 2.0; }
}
"#;

/// The racy pair, ordered by a `depend(out)` chain — no race.
const ORDERED_SRC: &str = r#"
void ordered(double* a, long n) {
  #pragma omp target teams distribute parallel for nowait num_teams(1) thread_limit(4) depend(out: a)
  for (long i = 0; i < n; i++) { a[i] = 1.0; }
  #pragma omp target teams distribute parallel for nowait num_teams(1) thread_limit(4) depend(out: a)
  for (long i = 0; i < n; i++) { a[i] = 2.0; }
}
"#;

const N: usize = 64;

fn compile_src(src: &str) -> omp_ir::Module {
    compile(src, &FrontendOptions::default()).expect("source compiles")
}

/// Runs the pipeline plan under one configuration and returns the
/// output buffer bits plus the stats snapshot.
fn run_pipeline(src: &str, jobs: u32, tier: Tier, replay: bool) -> (Vec<u64>, StatsSnapshot) {
    let module = compile_src(src);
    let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
    dev.set_jobs(jobs);
    dev.set_tier(tier);
    let a = dev.alloc_f64(&[0.0; N]).unwrap();
    let b = dev.alloc_f64(&[0.0; N]).unwrap();
    let c = dev.alloc_f64(&[0.0; N]).unwrap();
    let args = [
        RtVal::Ptr(a),
        RtVal::Ptr(b),
        RtVal::Ptr(c),
        RtVal::I64(N as i64),
    ];
    let stats = if replay {
        let graph = dev
            .capture_graph("pipeline", &args, LaunchDims::default())
            .unwrap();
        dev.replay_graph(&graph).unwrap()
    } else {
        dev.launch_plan("pipeline", &args, LaunchDims::default())
            .unwrap()
    };
    let out = dev.read_f64(c, N).unwrap();
    (out.iter().map(|v| v.to_bits()).collect(), stats.snapshot())
}

#[test]
fn multi_target_function_lowers_to_one_plan() {
    let module = compile_src(PIPELINE_SRC);
    assert_eq!(module.kernels.len(), 3);
    assert!(module
        .kernels
        .iter()
        .all(|k| k.source_name == "pipeline" && k.launch.nowait));
    let dev = Device::new(&module, DeviceConfig::default()).unwrap();
    assert_eq!(dev.plan_width("pipeline"), 3);
    let args = [RtVal::Ptr(0), RtVal::Ptr(0), RtVal::Ptr(0), RtVal::I64(0)];
    let plan = dev
        .resolve_plan("pipeline", &args, LaunchDims::default())
        .unwrap();
    assert_eq!(plan.num_nodes(), 3);
    // Producers are independent; the consumer waits for both.
    assert!(plan.nodes()[0].deps().is_empty());
    assert!(plan.nodes()[1].deps().is_empty());
    assert_eq!(plan.nodes()[2].deps(), &[0, 1]);
    // Independent producers land on distinct streams.
    assert_eq!(plan.num_streams(), 2);
    assert_ne!(plan.nodes()[0].stream(), plan.nodes()[1].stream());
}

#[test]
fn producer_consumer_plan_computes_and_overlaps() {
    let module = compile_src(PIPELINE_SRC);
    let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
    let a = dev.alloc_f64(&[0.0; N]).unwrap();
    let b = dev.alloc_f64(&[0.0; N]).unwrap();
    let c = dev.alloc_f64(&[0.0; N]).unwrap();
    let args = [
        RtVal::Ptr(a),
        RtVal::Ptr(b),
        RtVal::Ptr(c),
        RtVal::I64(N as i64),
    ];
    let stats = dev
        .launch_plan("pipeline", &args, LaunchDims::default())
        .unwrap();
    let out = dev.read_f64(c, N).unwrap();
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, (i as f64 + 1.0) + i as f64 * 2.0, "c[{i}]");
    }
    // The plan ran all teams of all three nodes.
    assert_eq!(stats.team_cycles.len(), 6);
    // Overlap is modelled in the makespan: the two independent
    // producers run concurrently on disjoint SMs, so the plan is
    // strictly cheaper than the serialized sum of its nodes ...
    let node_cycles: Vec<u64> = (0..3)
        .map(|k| {
            let name = if k == 0 {
                "__omp_offloading_pipeline".to_string()
            } else {
                format!("__omp_offloading_pipeline.{k}")
            };
            let mut d2 = Device::new(&module, DeviceConfig::default()).unwrap();
            let a = d2.alloc_f64(&[0.0; N]).unwrap();
            let b = d2.alloc_f64(&[0.0; N]).unwrap();
            let c = d2.alloc_f64(&[0.0; N]).unwrap();
            d2.launch(
                &name,
                &[
                    RtVal::Ptr(a),
                    RtVal::Ptr(b),
                    RtVal::Ptr(c),
                    RtVal::I64(N as i64),
                ],
                LaunchDims::default(),
            )
            .unwrap()
            .cycles
        })
        .collect();
    let serial: u64 = node_cycles.iter().sum();
    assert!(stats.cycles < serial, "{} !< {serial}", stats.cycles);
    // ... but never cheaper than its critical path.
    assert!(stats.cycles >= node_cycles[0].max(node_cycles[1]) + node_cycles[2]);
}

#[test]
fn plan_is_bit_identical_across_jobs_tiers_and_replay() {
    let (out_base, snap_base) = run_pipeline(PIPELINE_SRC, 1, Tier::Interp, false);
    for (jobs, tier, replay) in [
        (4, Tier::Interp, false),
        (1, Tier::Interp, true),
        (4, Tier::Interp, true),
        (1, Tier::Compiled, false),
        (4, Tier::Compiled, true),
    ] {
        let (out, snap) = run_pipeline(PIPELINE_SRC, jobs, tier, replay);
        assert_eq!(
            out, out_base,
            "output @ jobs={jobs} tier={tier:?} replay={replay}"
        );
        // Tier-dependent fields are normalized for cross-tier
        // comparison; within one tier the snapshots are fully equal.
        let mut norm = snap.clone();
        norm.tier = snap_base.tier;
        norm.superinstructions = snap_base.superinstructions;
        assert_eq!(
            norm, snap_base,
            "stats @ jobs={jobs} tier={tier:?} replay={replay}"
        );
        if tier == Tier::Interp {
            assert_eq!(snap, snap_base);
        }
    }
}

#[test]
fn taskgraph_region_replays_bit_identically() {
    let module = compile_src(GRAPH_SRC);
    assert!(module.kernels.iter().all(|k| k.launch.graph == Some(0)));
    // The first in-graph node carries the region's entry fence.
    assert!(module.kernels[0].launch.wait_before);
    let (out_eager, snap_eager) = run_pipeline(GRAPH_SRC, 2, Tier::Compiled, false);
    let (out_replay, snap_replay) = run_pipeline(GRAPH_SRC, 2, Tier::Compiled, true);
    assert_eq!(out_eager, out_replay);
    assert_eq!(snap_eager, snap_replay);
    // Replaying the same captured graph repeatedly is idempotent.
    let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
    dev.set_jobs(2);
    let a = dev.alloc_f64(&[0.0; N]).unwrap();
    let b = dev.alloc_f64(&[0.0; N]).unwrap();
    let c = dev.alloc_f64(&[0.0; N]).unwrap();
    let args = [
        RtVal::Ptr(a),
        RtVal::Ptr(b),
        RtVal::Ptr(c),
        RtVal::I64(N as i64),
    ];
    let graph = dev
        .capture_graph("pipeline", &args, LaunchDims::default())
        .unwrap();
    let s1 = dev.replay_graph(&graph).unwrap().snapshot();
    let o1 = dev.read_f64(c, N).unwrap();
    let s2 = dev.replay_graph(&graph).unwrap().snapshot();
    let o2 = dev.read_f64(c, N).unwrap();
    assert_eq!(s1, s2);
    assert_eq!(o1, o2);
}

#[test]
fn single_node_plan_is_exactly_a_plain_launch() {
    let src = r#"
void fill(double* a, long n) {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) { a[i] = (double)i * 3.0; }
}
"#;
    let module = compile_src(src);
    let mut d1 = Device::new(&module, DeviceConfig::default()).unwrap();
    let a1 = d1.alloc_f64(&[0.0; N]).unwrap();
    let s1 = d1
        .launch(
            "fill",
            &[RtVal::Ptr(a1), RtVal::I64(N as i64)],
            LaunchDims::default(),
        )
        .unwrap();
    let mut d2 = Device::new(&module, DeviceConfig::default()).unwrap();
    let a2 = d2.alloc_f64(&[0.0; N]).unwrap();
    let s2 = d2
        .launch_plan(
            "fill",
            &[RtVal::Ptr(a2), RtVal::I64(N as i64)],
            LaunchDims::default(),
        )
        .unwrap();
    assert_eq!(s1.snapshot(), s2.snapshot());
    assert_eq!(d1.read_f64(a1, N).unwrap(), d2.read_f64(a2, N).unwrap());
    // A replayed single-node graph reports the same statistics too.
    let mut d3 = Device::new(&module, DeviceConfig::default()).unwrap();
    let a3 = d3.alloc_f64(&[0.0; N]).unwrap();
    let graph = d3
        .capture_graph(
            "fill",
            &[RtVal::Ptr(a3), RtVal::I64(N as i64)],
            LaunchDims::default(),
        )
        .unwrap();
    let s3 = d3.replay_graph(&graph).unwrap();
    assert_eq!(s3.snapshot(), s1.snapshot());
    assert_eq!(d3.read_f64(a3, N).unwrap(), d1.read_f64(a1, N).unwrap());
}

#[test]
fn sync_targets_serialize_onto_one_stream() {
    let src = r#"
void chain(double* a, long n) {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (long i = 0; i < n; i++) { a[i] = 1.0; }
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(4)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
}
"#;
    let module = compile_src(src);
    let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
    let a = dev.alloc_f64(&[0.0; N]).unwrap();
    let args = [RtVal::Ptr(a), RtVal::I64(N as i64)];
    let plan = dev
        .resolve_plan("chain", &args, LaunchDims::default())
        .unwrap();
    assert_eq!(plan.nodes()[1].deps(), &[0]);
    assert_eq!(plan.num_streams(), 1);
    dev.launch_plan("chain", &args, LaunchDims::default())
        .unwrap();
    assert!(dev.read_f64(a, N).unwrap().iter().all(|&v| v == 2.0));
}

#[test]
fn cross_kernel_race_is_detected_on_missing_depend_edge() {
    let module = compile_src(RACY_SRC);
    let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
    dev.set_sanitize(SanitizeMode::On);
    let a = dev.alloc_f64(&[0.0; N]).unwrap();
    let args = [RtVal::Ptr(a), RtVal::I64(N as i64)];
    let (_, findings) = dev
        .launch_plan_checked("racy", &args, LaunchDims::default())
        .unwrap();
    let races: Vec<_> = findings
        .iter()
        .filter(|f| f.kind == FindingKind::CrossKernelRace)
        .collect();
    assert_eq!(races.len(), 1);
    assert_eq!(races[0].kind.id(), 304);
    assert!(races[0].message.contains("no ordering edge"));
    // Execution stays sequential and deterministic despite the race:
    // the later node's writes win.
    assert!(dev.read_f64(a, N).unwrap().iter().all(|&v| v == 2.0));
    // Replay reports the identical findings.
    let mut dev2 = Device::new(&module, DeviceConfig::default()).unwrap();
    dev2.set_sanitize(SanitizeMode::On);
    let a2 = dev2.alloc_f64(&[0.0; N]).unwrap();
    let args2 = [RtVal::Ptr(a2), RtVal::I64(N as i64)];
    let graph = dev2
        .capture_graph("racy", &args2, LaunchDims::default())
        .unwrap();
    let (_, replay_findings) = dev2.replay_graph_checked(&graph).unwrap();
    assert_eq!(findings, replay_findings);
    // The depend-ordered variant is clean.
    let module2 = compile_src(ORDERED_SRC);
    let mut dev3 = Device::new(&module2, DeviceConfig::default()).unwrap();
    dev3.set_sanitize(SanitizeMode::On);
    let a3 = dev3.alloc_f64(&[0.0; N]).unwrap();
    let (_, ordered_findings) = dev3
        .launch_plan_checked(
            "ordered",
            &[RtVal::Ptr(a3), RtVal::I64(N as i64)],
            LaunchDims::default(),
        )
        .unwrap();
    assert!(ordered_findings
        .iter()
        .all(|f| f.kind != FindingKind::CrossKernelRace));
}

#[test]
fn plan_profile_exposes_stream_tracks() {
    let module = compile_src(PIPELINE_SRC);
    let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
    dev.set_profile(ProfileMode::On);
    let a = dev.alloc_f64(&[0.0; N]).unwrap();
    let b = dev.alloc_f64(&[0.0; N]).unwrap();
    let c = dev.alloc_f64(&[0.0; N]).unwrap();
    let args = [
        RtVal::Ptr(a),
        RtVal::Ptr(b),
        RtVal::Ptr(c),
        RtVal::I64(N as i64),
    ];
    let (stats, profile) = dev
        .launch_plan_profiled("pipeline", &args, LaunchDims::default())
        .unwrap();
    let profile = profile.expect("profiling was enabled");
    assert_eq!(profile.streams.len(), 3);
    assert_eq!(profile.cycles, stats.cycles);
    // The consumer starts after both producers finish.
    let consumer = &profile.streams[2];
    assert!(profile.streams[..2].iter().all(|p| p.end <= consumer.start));
    let trace = profile.chrome_trace();
    assert!(trace.contains("\"stream 0\""));
    assert!(trace.contains("\"stream 1\""));
    assert!(trace.contains("\"cat\":\"stream\""));
    let json = profile.to_json();
    assert!(json.contains("\"streams\":["));
}

#[test]
fn superinstruction_counters_report_tier1_hits() {
    let src = r#"
void fill(double* a, long n) {
  #pragma omp target teams distribute parallel for num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
}
"#;
    let module = compile_src(src);
    let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
    dev.set_tier(Tier::Compiled);
    let a = dev.alloc_f64(&[0.0; N]).unwrap();
    let stats = dev
        .launch(
            "fill",
            &[RtVal::Ptr(a), RtVal::I64(N as i64)],
            LaunchDims::default(),
        )
        .unwrap();
    let si = stats.snapshot().superinstructions;
    assert!(
        si.iter().sum::<u64>() > 0,
        "tier 1 executed no compiled steps at all: {si:?}"
    );
    assert!(si[1] > 0, "a[i] = a[i] + 1.0 should fuse load+bin+store");
    // The interpreter tier executes no compiled steps.
    let mut d0 = Device::new(&module, DeviceConfig::default()).unwrap();
    d0.set_tier(Tier::Interp);
    let a0 = d0.alloc_f64(&[0.0; N]).unwrap();
    let s0 = d0
        .launch(
            "fill",
            &[RtVal::Ptr(a0), RtVal::I64(N as i64)],
            LaunchDims::default(),
        )
        .unwrap();
    assert_eq!(s0.snapshot().superinstructions, [0; 4]);
}

/// Regression stress for the replay pool's phaser: with short nodes
/// and several workers, a fast worker can register for the *next*
/// phase while the current sealer is still waking waiters. An early
/// version consumed that registration and left the worker parked
/// forever; hammering replays makes such a missed wake a hang here
/// instead of a flake in the field.
#[test]
fn pooled_replay_survives_repeated_phaser_rendezvous() {
    let src = r#"
void chain(double* a, long n) {
  #pragma omp taskgraph
  {
    #pragma omp target teams distribute parallel for nowait num_teams(4) thread_limit(1) depend(inout: a)
    for (long i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
    #pragma omp target teams distribute parallel for nowait num_teams(4) thread_limit(1) depend(inout: a)
    for (long i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
    #pragma omp target teams distribute parallel for nowait num_teams(4) thread_limit(1) depend(inout: a)
    for (long i = 0; i < n; i++) { a[i] = a[i] - 0.5; }
    #pragma omp target teams distribute parallel for nowait num_teams(4) thread_limit(1) depend(inout: a)
    for (long i = 0; i < n; i++) { a[i] = a[i] + 3.0; }
  }
}
"#;
    let module = compile_src(src);
    let mut dev = Device::new(&module, DeviceConfig::default()).unwrap();
    dev.set_jobs(4);
    dev.set_tier(Tier::Compiled);
    let a = dev.alloc_f64(&[0.0; 4]).unwrap();
    let args = [RtVal::Ptr(a), RtVal::I64(4)];
    let graph = dev
        .capture_graph("chain", &args, LaunchDims::default())
        .unwrap();
    let reference = dev.replay_graph(&graph).unwrap().snapshot();
    for _ in 0..400 {
        let stats = dev.replay_graph(&graph).unwrap().snapshot();
        assert_eq!(stats, reference, "replay drifted between iterations");
    }
}
