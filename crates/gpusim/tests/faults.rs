//! Fault-injection tests: every injected failure must surface as a
//! structured error (or a sanitizer note) — no panic, no hung worker —
//! and the outcome must be identical for every worker-thread count.

use omp_frontend::{compile, FrontendOptions};
use omp_gpusim::{
    Device, DeviceConfig, FaultPlan, FindingKind, LaunchDims, MemError, RtVal, SanitizeMode,
    SimErrorKind,
};
use std::time::Duration;

/// Globalizes one capture struct per distribute iteration when built
/// without the mid-end, giving the allocation faults something to hit.
const GLOBALIZING: &str = r#"
void counted(double* a, long n) {
  #pragma omp target teams distribute
  for (long b = 0; b < n; b++) {
    double tv = (double)b;
    #pragma omp parallel for
    for (long t = 0; t < 4; t++) {
      a[b * 4 + t] = tv;
    }
  }
}
"#;

fn build(src: &str) -> omp_ir::Module {
    let m = compile(src, &FrontendOptions::default()).unwrap();
    omp_ir::verifier::assert_valid(&m);
    m
}

fn dims(teams: u32, threads: u32) -> LaunchDims {
    LaunchDims {
        teams: Some(teams),
        threads: Some(threads),
    }
}

fn launch_with_plan(
    m: &omp_ir::Module,
    plan: FaultPlan,
    jobs: u32,
) -> Result<(), omp_gpusim::SimError> {
    let mut dev = Device::new(m, DeviceConfig::default()).unwrap();
    dev.set_fault_plan(plan);
    dev.set_jobs(jobs);
    let a = dev.alloc_f64(&[0.0; 16]).unwrap();
    dev.launch("counted", &[RtVal::Ptr(a), RtVal::I64(4)], dims(4, 4))
        .map(|_| ())
}

#[test]
fn capped_shared_stack_falls_back_to_heap_and_completes() {
    let m = build(GLOBALIZING);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_sanitize(SanitizeMode::On);
    dev.set_fault_plan(FaultPlan {
        shared_stack_limit: Some(0),
        ..FaultPlan::default()
    });
    let a = dev.alloc_f64(&[0.0; 16]).unwrap();
    let (stats, findings) = dev
        .launch_checked("counted", &[RtVal::Ptr(a), RtVal::I64(4)], dims(4, 4))
        .unwrap();
    // The run degrades (heap traffic instead of shared) but completes
    // with correct results.
    assert!(stats.heap_bytes > 0, "fallback never hit the device heap");
    let out = dev.read_f64(a, 16).unwrap();
    for b in 0..4 {
        for t in 0..4 {
            assert_eq!(out[b * 4 + t], b as f64);
        }
    }
    // Each fallback is surfaced as a note, not an error.
    let notes: Vec<_> = findings
        .iter()
        .filter(|f| f.kind == FindingKind::SharedStackFallback)
        .collect();
    assert!(!notes.is_empty(), "no fallback notes: {findings:?}");
    assert!(
        findings.len() == notes.len(),
        "unexpected errors: {findings:?}"
    );
}

#[test]
fn injected_allocation_failure_is_a_structured_memory_error() {
    let m = build(GLOBALIZING);
    let err = launch_with_plan(
        &m,
        FaultPlan {
            fail_alloc_after: Some(0),
            ..FaultPlan::default()
        },
        1,
    )
    .unwrap_err();
    assert!(
        matches!(err.kind, SimErrorKind::Mem(MemError::AllocFaultInjected)),
        "{err:?}"
    );
    // Provenance points into the kernel.
    let prov = err.provenance.as_ref().expect("no provenance");
    assert!(prov.function.contains("counted"), "{prov:?}");
    // The message must not look like a real OOM (the oracle tolerates
    // documented baseline OOMs by substring).
    let msg = err.to_string();
    assert!(!msg.contains("OOM") && !msg.contains("heap"), "{msg}");
}

#[test]
fn trap_at_nth_instruction_and_team_abort_are_structured() {
    let m = build(GLOBALIZING);
    let trap = launch_with_plan(
        &m,
        FaultPlan {
            trap_at_inst: Some(20),
            ..FaultPlan::default()
        },
        1,
    )
    .unwrap_err();
    match &trap.kind {
        SimErrorKind::FaultInjected(msg) => {
            assert!(msg.contains("dynamic instruction 20"), "{msg}")
        }
        other => panic!("wrong kind: {other:?}"),
    }
    let abort = launch_with_plan(
        &m,
        FaultPlan {
            abort_team: Some(2),
            ..FaultPlan::default()
        },
        1,
    )
    .unwrap_err();
    match &abort.kind {
        SimErrorKind::FaultInjected(msg) => assert!(msg.contains("team 2 aborted"), "{msg}"),
        other => panic!("wrong kind: {other:?}"),
    }
}

#[test]
fn injected_failures_are_identical_across_worker_thread_counts() {
    let m = build(GLOBALIZING);
    for plan in [
        FaultPlan {
            fail_alloc_after: Some(0),
            ..FaultPlan::default()
        },
        FaultPlan {
            trap_at_inst: Some(20),
            ..FaultPlan::default()
        },
        FaultPlan {
            abort_team: Some(2),
            ..FaultPlan::default()
        },
    ] {
        let sequential = launch_with_plan(&m, plan.clone(), 1).unwrap_err();
        for jobs in [2u32, 4] {
            let parallel = launch_with_plan(&m, plan.clone(), jobs).unwrap_err();
            assert_eq!(
                sequential.to_string(),
                parallel.to_string(),
                "outcome differs at jobs={jobs} for {plan:?}"
            );
        }
    }
}

#[test]
fn device_survives_an_injected_failure_and_runs_again() {
    let m = build(GLOBALIZING);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_fault_plan(FaultPlan {
        fail_alloc_after: Some(0),
        ..FaultPlan::default()
    });
    let a = dev.alloc_f64(&[0.0; 16]).unwrap();
    dev.launch("counted", &[RtVal::Ptr(a), RtVal::I64(4)], dims(4, 4))
        .unwrap_err();
    // Disarm the plan: the same device must launch cleanly afterwards —
    // no wedged workers, no leaked team state.
    dev.set_fault_plan(FaultPlan::default());
    dev.launch("counted", &[RtVal::Ptr(a), RtVal::I64(4)], dims(4, 4))
        .unwrap();
    let out = dev.read_f64(a, 16).unwrap();
    assert_eq!(out[15], 3.0);
}

#[test]
fn watchdog_times_out_a_hung_kernel_with_a_structured_error() {
    let m = build(
        r#"
void spin(long* out) {
  #pragma omp target teams
  {
    long i = 0;
    while (i < 1000000000) {
      i = i + 0; // never progresses
    }
    out[0] = i;
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_watchdog(Some(Duration::from_millis(1)));
    let out = dev.alloc_i64(&[0]).unwrap();
    let err = dev
        .launch("spin", &[RtVal::Ptr(out)], dims(1, 2))
        .unwrap_err();
    assert!(
        matches!(err.kind, SimErrorKind::Timeout { .. }),
        "expected a watchdog timeout, got {err:?}"
    );
    assert!(err.to_string().contains("watchdog timeout"), "{err}");
}

#[test]
fn instruction_budget_override_reports_runaway_with_thread_positions() {
    let m = build(
        r#"
void spin(long* out) {
  #pragma omp target teams
  {
    long i = 0;
    while (i < 1000000000) {
      i = i + 0;
    }
    out[0] = i;
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    dev.set_max_insts(10_000);
    let out = dev.alloc_i64(&[0]).unwrap();
    let err = dev
        .launch("spin", &[RtVal::Ptr(out)], dims(1, 2))
        .unwrap_err();
    match err.kind {
        SimErrorKind::Runaway { budget } => assert_eq!(budget, 10_000),
        other => panic!("wrong kind: {other:?}"),
    }
    assert!(
        err.to_string()
            .contains("instruction budget exceeded (10000 per thread)"),
        "{err}"
    );
}
