//! Launching hand-built IR modules (no frontend): exercises interpreter
//! semantics that the dialect cannot express directly — phi swap
//! simultaneity, unsigned operations, casts, and selects.

use omp_gpusim::{Device, DeviceConfig, LaunchDims, RtVal};
use omp_ir::{BinOp, Builder, CastOp, CmpOp, ExecMode, Function, KernelInfo, Module, Type, Value};

fn kernelize(m: &mut Module, f: omp_ir::FuncId, name: &str) {
    m.kernels.push(KernelInfo {
        func: f,
        exec_mode: ExecMode::Spmd,
        num_teams: Some(1),
        thread_limit: Some(1),
        source_name: name.into(),
        launch: Default::default(),
    });
}

fn one_thread() -> LaunchDims {
    LaunchDims {
        teams: Some(1),
        threads: Some(1),
    }
}

/// The classic phi-swap: `(a, b) = (b, a)` each iteration. Evaluating
/// phis sequentially instead of simultaneously would corrupt one of
/// them.
#[test]
fn phi_swap_is_simultaneous() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition(
        "swap",
        vec![Type::Ptr, Type::I64],
        Type::Void,
    ));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64);
        let a = b.phi(Type::I64);
        let bb = b.phi(Type::I64);
        b.add_phi_incoming(i, entry, Value::i64(0));
        b.add_phi_incoming(a, entry, Value::i64(1));
        b.add_phi_incoming(bb, entry, Value::i64(2));
        let c = b.cmp(CmpOp::Slt, Type::I64, i, Value::Arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add_i64(i, Value::i64(1));
        // swap: a' = b, b' = a
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(a, body, bb);
        b.add_phi_incoming(bb, body, a);
        b.br(header);
        b.switch_to(exit);
        b.store(a, Value::Arg(0));
        let slot1 = b.gep_const(Value::Arg(0), 8);
        b.store(bb, slot1);
        b.ret(None);
    }
    kernelize(&mut m, f, "swap");
    omp_ir::verifier::assert_valid(&m);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[0, 0]).unwrap();
    // Odd number of swaps: (1,2) -> (2,1)
    dev.launch("swap", &[RtVal::Ptr(out), RtVal::I64(5)], one_thread())
        .unwrap();
    assert_eq!(dev.read_i64(out, 2).unwrap(), vec![2, 1]);
    // Even number of swaps: back to (1,2)
    dev.launch("swap", &[RtVal::Ptr(out), RtVal::I64(4)], one_thread())
        .unwrap();
    assert_eq!(dev.read_i64(out, 2).unwrap(), vec![1, 2]);
}

/// Unsigned division/comparison and zero-extension semantics.
#[test]
fn unsigned_ops_and_casts() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition("u", vec![Type::Ptr], Type::Void));
    {
        let mut b = Builder::at_entry(&mut m, f);
        // -8 as u32 / 2
        let udiv = b.bin(BinOp::UDiv, Type::I32, Value::i32(-8), Value::i32(2));
        let wide = b.cast(CastOp::ZExt, udiv, Type::I64);
        b.store(wide, Value::Arg(0));
        // unsigned comparison: -1 (as u32) > 5
        let ug = b.cmp(CmpOp::Ugt, Type::I32, Value::i32(-1), Value::i32(5));
        let ug64 = b.cast(CastOp::ZExt, ug, Type::I64);
        let s1 = b.gep_const(Value::Arg(0), 8);
        b.store(ug64, s1);
        // trunc of a large i64
        let t = b.cast(CastOp::Trunc, Value::i64(0x1_2345_6789), Type::I32);
        let t64 = b.cast(CastOp::SExt, t, Type::I64);
        let s2 = b.gep_const(Value::Arg(0), 16);
        b.store(t64, s2);
        // lshr vs ashr
        let lshr = b.bin(BinOp::LShr, Type::I32, Value::i32(-16), Value::i32(2));
        let l64 = b.cast(CastOp::ZExt, lshr, Type::I64);
        let s3 = b.gep_const(Value::Arg(0), 24);
        b.store(l64, s3);
        b.ret(None);
    }
    kernelize(&mut m, f, "u");
    omp_ir::verifier::assert_valid(&m);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[0; 4]).unwrap();
    dev.launch("u", &[RtVal::Ptr(out)], one_thread()).unwrap();
    let v = dev.read_i64(out, 4).unwrap();
    assert_eq!(v[0], ((u32::MAX - 7) / 2) as i64);
    assert_eq!(v[1], 1);
    assert_eq!(v[2], 0x2345_6789);
    assert_eq!(v[3], ((-16i32 as u32) >> 2) as i64);
}

/// Select on both arms, fp casts, and f32 rounding.
#[test]
fn selects_and_float_casts() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition(
        "s",
        vec![Type::Ptr, Type::I1],
        Type::Void,
    ));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let sel = b.select(Value::Arg(1), Type::F64, Value::f64(1.25), Value::f64(-2.5));
        b.store(sel, Value::Arg(0));
        // f64 -> f32 -> f64 loses precision deterministically
        let narrow = b.cast(CastOp::FpTrunc, Value::f64(0.1), Type::F32);
        let wide = b.cast(CastOp::FpExt, narrow, Type::F64);
        let s1 = b.gep_const(Value::Arg(0), 8);
        b.store(wide, s1);
        // fptosi truncates toward zero
        let i = b.cast(CastOp::FpToSi, Value::f64(-3.9), Type::I64);
        let fl = b.cast(CastOp::SiToFp, i, Type::F64);
        let s2 = b.gep_const(Value::Arg(0), 16);
        b.store(fl, s2);
        b.ret(None);
    }
    kernelize(&mut m, f, "s");
    omp_ir::verifier::assert_valid(&m);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_f64(&[0.0; 3]).unwrap();
    dev.launch("s", &[RtVal::Ptr(out), RtVal::Bool(true)], one_thread())
        .unwrap();
    let v = dev.read_f64(out, 3).unwrap();
    assert_eq!(v[0], 1.25);
    assert_eq!(v[1], 0.1f32 as f64);
    assert_eq!(v[2], -3.0);
    dev.launch("s", &[RtVal::Ptr(out), RtVal::Bool(false)], one_thread())
        .unwrap();
    assert_eq!(dev.read_f64(out, 3).unwrap()[0], -2.5);
}

/// Division by zero at runtime is a trap, not a wrong answer.
#[test]
fn division_by_zero_traps() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition(
        "d",
        vec![Type::Ptr, Type::I64],
        Type::Void,
    ));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let q = b.bin(BinOp::SDiv, Type::I64, Value::i64(10), Value::Arg(1));
        b.store(q, Value::Arg(0));
        b.ret(None);
    }
    kernelize(&mut m, f, "d");
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[0]).unwrap();
    dev.launch("d", &[RtVal::Ptr(out), RtVal::I64(2)], one_thread())
        .unwrap();
    assert_eq!(dev.read_i64(out, 1).unwrap()[0], 5);
    let err = dev
        .launch("d", &[RtVal::Ptr(out), RtVal::I64(0)], one_thread())
        .unwrap_err();
    assert!(matches!(err.kind, omp_gpusim::SimErrorKind::Trap(_)));
}

/// `unreachable` reached at runtime is reported as a trap with the
/// function name.
#[test]
fn unreachable_reports_function() {
    let mut m = Module::new("t");
    let f = m.add_function(Function::definition("bad", vec![Type::Ptr], Type::Void));
    {
        let fun = m.func_mut(f);
        let e = fun.entry();
        fun.block_mut(e).term = omp_ir::Terminator::Unreachable;
    }
    kernelize(&mut m, f, "bad");
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[0]).unwrap();
    let err = dev
        .launch("bad", &[RtVal::Ptr(out)], one_thread())
        .unwrap_err();
    match err.kind {
        omp_gpusim::SimErrorKind::Trap(msg) => assert!(msg.contains("bad"), "{msg}"),
        other => panic!("{other:?}"),
    }
}

/// Shared-space module globals resolve per team and are initialized.
#[test]
fn global_initializers_and_shared_globals() {
    let mut m = Module::new("t");
    let ginit = m.add_global(omp_ir::Global {
        name: "seed".into(),
        size: 8,
        align: 8,
        space: omp_ir::AddrSpace::Global,
        init: Some(42i64.to_le_bytes().to_vec()),
        is_const: false,
    });
    let gshared = m.add_global(omp_ir::Global {
        name: "scratch".into(),
        size: 8,
        align: 8,
        space: omp_ir::AddrSpace::Shared,
        init: None,
        is_const: false,
    });
    let f = m.add_function(Function::definition("g", vec![Type::Ptr], Type::Void));
    {
        let mut b = Builder::at_entry(&mut m, f);
        let seed = b.load(Type::I64, Value::Global(ginit));
        let team = b.call_rtl(omp_ir::RtlFn::TeamNum, vec![]);
        let team64 = b.cast(CastOp::SExt, team, Type::I64);
        let v = b.add_i64(seed, team64);
        b.store(v, Value::Global(gshared));
        let back = b.load(Type::I64, Value::Global(gshared));
        let slot = b.gep_elem8(Value::Arg(0), team64);
        b.store(back, slot);
        b.ret(None);
    }
    kernelize(&mut m, f, "g");
    omp_ir::verifier::assert_valid(&m);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[0, 0]).unwrap();
    dev.launch(
        "g",
        &[RtVal::Ptr(out)],
        LaunchDims {
            teams: Some(2),
            threads: Some(1),
        },
    )
    .unwrap();
    // Each team sees its own shared `scratch`: no cross-team clobber.
    assert_eq!(dev.read_i64(out, 2).unwrap(), vec![42, 43]);
}
