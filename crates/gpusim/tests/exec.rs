//! End-to-end execution tests: mini-C OpenMP source → IR → simulated
//! GPU, checking both results and cost-model behaviour.

use omp_frontend::{compile, FrontendOptions, GlobalizationScheme};
use omp_gpusim::{Device, DeviceConfig, LaunchDims, RtVal};

fn build(src: &str) -> omp_ir::Module {
    let m = compile(src, &FrontendOptions::default()).unwrap();
    omp_ir::verifier::assert_valid(&m);
    m
}

fn build_legacy(src: &str) -> omp_ir::Module {
    let opts = FrontendOptions {
        globalization: GlobalizationScheme::Legacy,
        ..FrontendOptions::default()
    };
    let m = compile(src, &opts).unwrap();
    omp_ir::verifier::assert_valid(&m);
    m
}

fn dims(teams: u32, threads: u32) -> LaunchDims {
    LaunchDims {
        teams: Some(teams),
        threads: Some(threads),
    }
}

#[test]
fn spmd_axpy_computes_correctly() {
    let m = build(
        r#"
void axpy(double* x, double* y, double a, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let n = 100usize;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let y: Vec<f64> = vec![1.0; n];
    let xb = dev.alloc_f64(&x).unwrap();
    let yb = dev.alloc_f64(&y).unwrap();
    let stats = dev
        .launch(
            "axpy",
            &[
                RtVal::Ptr(xb),
                RtVal::Ptr(yb),
                RtVal::F64(2.0),
                RtVal::I64(n as i64),
            ],
            dims(4, 8),
        )
        .unwrap();
    let out = dev.read_f64(yb, n).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, 2.0 * i as f64 + 1.0, "element {i}");
    }
    assert!(stats.cycles > 0);
    assert!(stats.registers > 0);
}

#[test]
fn generic_distribute_with_nested_parallel() {
    // The paper's Figure 1 shape: distribute over teams, parallel for
    // inside, shared team_val captured by the region.
    let m = build(
        r#"
void fig1(double* out, long nblocks, long nthreads) {
  #pragma omp target teams distribute
  for (long b = 0; b < nblocks; b++) {
    double team_val = (double)b + 1.0;
    #pragma omp parallel for
    for (long t = 0; t < nthreads; t++) {
      out[b * nthreads + t] = team_val * 10.0 + (double)t;
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let (nb, nt) = (4i64, 8i64);
    let out = dev.alloc_f64(&vec![0.0; (nb * nt) as usize]).unwrap();
    let stats = dev
        .launch(
            "fig1",
            &[RtVal::Ptr(out), RtVal::I64(nb), RtVal::I64(nt)],
            dims(2, 8),
        )
        .unwrap();
    let vals = dev.read_f64(out, (nb * nt) as usize).unwrap();
    for b in 0..nb {
        for t in 0..nt {
            assert_eq!(
                vals[(b * nt + t) as usize],
                (b + 1) as f64 * 10.0 + t as f64,
                "block {b} thread {t}"
            );
        }
    }
    // Generic dispatch happened (one per block iteration).
    assert!(stats.parallel_regions >= nb as u64 / 2);
    assert!(stats.rtl_count("__kmpc_parallel_51") >= nb as u64);
    assert!(
        stats.globalization_allocs > 0,
        "team_val must be globalized"
    );
}

#[test]
fn fig3_cross_thread_sharing_works_when_globalized() {
    // Paper Figure 3: thread 0 publishes the address of its local; all
    // threads read through it after a barrier.
    let src = r#"
void fig3(long* cell, int* out, int base) {
  #pragma omp target parallel
  {
    int lcl = base + omp_get_thread_num();
    #pragma omp barrier
    if (omp_get_thread_num() == 0) {
      cell[0] = (long)&lcl;
    }
    #pragma omp barrier
    out[omp_get_thread_num()] = *(int*)cell[0];
  }
}
"#;
    // The dialect has no int-to-pointer casts; emulate via helpers.
    let src = src
        .replace("cell[0] = (long)&lcl;", "publish(cell, &lcl);")
        .replace(
            "out[omp_get_thread_num()] = *(int*)cell[0];",
            "out[omp_get_thread_num()] = read_published(cell);",
        );
    let full = format!(
        r#"
void publish(long* cell, int* p);
int read_published(long* cell);
{src}
"#
    );
    // publish/read_published must be definitions for execution: express
    // them via raw pointer smuggling through a long buffer.
    let full = full
        .replace(
            "void publish(long* cell, int* p);",
            "void publish(long* cell, noescape int* p) { cell[0] = ptr2long(p); }\nlong ptr2long(noescape int* p);",
        )
        .replace(
            "int read_published(long* cell);",
            "int read_published(long* cell) { return *long2ptr(cell[0]); }\nint* long2ptr(long v);",
        );
    // ptr2long / long2ptr cannot be written in the dialect; this test
    // instead uses a simpler formulation below.
    let _ = full;

    // Simpler, dialect-native Figure 3: share through a pointer captured
    // by reference in a parallel region of a generic kernel... but the
    // essence (cross-thread access to a globalized local) is captured by
    // an SPMD kernel where thread 0's local is read by all threads via a
    // shared double buffer holding a *copy* -- not enough. Instead we use
    // a parallel region capture, which takes the address of a local and
    // shares it across threads:
    let m = build(
        r#"
void share(double* out, long nthreads) {
  #pragma omp target teams
  {
    double team_val = 7.5; // address taken by the region => globalized
    #pragma omp parallel for
    for (long t = 0; t < nthreads; t++) {
      out[t] = team_val; // every worker reads main's local
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_f64(&[0.0; 8]).unwrap();
    dev.launch("share", &[RtVal::Ptr(out), RtVal::I64(8)], dims(1, 8))
        .unwrap();
    let vals = dev.read_f64(out, 8).unwrap();
    assert_eq!(vals, vec![7.5; 8]);
}

#[test]
fn legacy_spmd_cross_thread_access_traps() {
    // With the legacy (LLVM 12) scheme, SPMD-mode locals stay on the
    // thread stack; sharing them across threads is a miscompile that the
    // simulator reports as a cross-thread local access.
    let src = r#"
void share(double* out, long nthreads) {
  #pragma omp target teams
  {
    double team_val = 7.5;
    #pragma omp parallel for
    for (long t = 0; t < nthreads; t++) {
      out[t] = team_val;
    }
  }
}
"#;
    // Generic mode: legacy allocates from the data-sharing stack; works.
    let m = build_legacy(src);
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_f64(&[0.0; 8]).unwrap();
    dev.launch("share", &[RtVal::Ptr(out), RtVal::I64(8)], dims(1, 8))
        .unwrap();
    assert_eq!(dev.read_f64(out, 8).unwrap(), vec![7.5; 8]);

    // SPMD-mode kernel (target parallel) with an escaping local shared
    // through a captured pointer: the legacy fast path uses an alloca and
    // the cross-thread read traps.
    let spmd_src = r#"
double passthrough(noescape double* p) { return p[0]; }
void spmd_share(double* out, long n) {
  #pragma omp target parallel
  {
    double lcl = 1.0 + (double)omp_get_thread_num();
    #pragma omp parallel for
    for (long i = 0; i < n; i++) {
      out[i] = out[i] + passthrough(&lcl);
    }
  }
}
"#;
    let _ = spmd_src; // nested-parallel capture; exercised elsewhere.

    // Direct demonstration: in SPMD mode a captured local crosses
    // threads through the capture struct. Legacy globalization uses an
    // alloca for both the local *and* the capture struct, so worker
    // reads trap... in SPMD mode there are no workers; each thread is
    // its own region executor, so the capture stays within the thread.
    // The observable difference therefore needs generic mode with
    // -fopenmp-cuda-mode (never globalize):
    let opts = FrontendOptions {
        cuda_mode: true,
        ..FrontendOptions::default()
    };
    let m = compile(src, &opts).unwrap();
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_f64(&[0.0; 8]).unwrap();
    let err = dev
        .launch("share", &[RtVal::Ptr(out), RtVal::I64(8)], dims(1, 8))
        .unwrap_err();
    match err.kind {
        omp_gpusim::SimErrorKind::Mem(omp_gpusim::MemError::CrossThreadLocal { .. }) => {}
        other => panic!("expected cross-thread trap, got {other:?}"),
    }
}

#[test]
fn barriers_synchronize_spmd_threads() {
    // Every thread writes its slot, then after a barrier reads its
    // neighbour's slot: without a working barrier the values would be
    // stale zeros for some threads under cooperative scheduling.
    let m = build(
        r#"
void neighbors(long* a, long* b, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    a[me] = me * 100;
    #pragma omp barrier
    long next = me + 1;
    if (next >= n) { next = 0; }
    b[me] = a[next];
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let n = 8usize;
    let a = dev.alloc_i64(&vec![0; n]).unwrap();
    let b = dev.alloc_i64(&vec![-1; n]).unwrap();
    let stats = dev
        .launch(
            "neighbors",
            &[RtVal::Ptr(a), RtVal::Ptr(b), RtVal::I64(n as i64)],
            dims(1, n as u32),
        )
        .unwrap();
    let out = dev.read_i64(b, n).unwrap();
    for (i, &got) in out.iter().enumerate() {
        assert_eq!(got, (((i + 1) % n) * 100) as i64, "thread {i}");
    }
    assert!(stats.barriers >= 1);
}

#[test]
fn nested_parallel_is_serialized() {
    let m = build(
        r#"
void nested(long* out, long n) {
  #pragma omp target teams distribute
  for (long b = 0; b < 1; b++) {
    #pragma omp parallel for
    for (long i = 0; i < n; i++) {
      #pragma omp parallel
      {
        // Nested region: runs serialized, thread num is 0.
        out[i] = out[i] + 1 + (long)omp_get_thread_num();
      }
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let n = 16usize;
    let out = dev.alloc_i64(&vec![0; n]).unwrap();
    dev.launch(
        "nested",
        &[RtVal::Ptr(out), RtVal::I64(n as i64)],
        dims(1, 4),
    )
    .unwrap();
    let vals = dev.read_i64(out, n).unwrap();
    assert_eq!(vals, vec![1i64; n], "each iteration exactly once, tid 0");
}

#[test]
fn worksharing_covers_exactly_once_with_odd_sizes() {
    let m = build(
        r#"
void count(long* out, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { out[i] = out[i] + 1; }
}
"#,
    );
    for (teams, threads, n) in [(3u32, 5u32, 37usize), (1, 1, 7), (4, 8, 1), (2, 2, 0)] {
        let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
        let out = dev.alloc_i64(&vec![0; n.max(1)]).unwrap();
        dev.launch(
            "count",
            &[RtVal::Ptr(out), RtVal::I64(n as i64)],
            dims(teams, threads),
        )
        .unwrap();
        let vals = dev.read_i64(out, n.max(1)).unwrap();
        for (i, v) in vals.iter().take(n).enumerate() {
            assert_eq!(*v, 1, "teams={teams} threads={threads} n={n} i={i}");
        }
    }
}

#[test]
fn generic_mode_costs_more_than_spmd_for_light_regions() {
    // SU3Bench's story: a lightweight parallel region in a generic-mode
    // kernel pays the dispatch handshake every iteration.
    let generic = build(
        r#"
void light(double* out, long nblocks, long nthreads) {
  #pragma omp target teams distribute
  for (long b = 0; b < nblocks; b++) {
    #pragma omp parallel for
    for (long t = 0; t < nthreads; t++) {
      out[b * nthreads + t] = 1.0;
    }
  }
}
"#,
    );
    let spmd = build(
        r#"
void light(double* out, long nblocks, long nthreads) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < nblocks * nthreads; i++) {
    out[i] = 1.0;
  }
}
"#,
    );
    let (nb, nt) = (16i64, 8i64);
    let run = |m: &omp_ir::Module| {
        let mut dev = Device::new(m, DeviceConfig::default()).unwrap();
        let out = dev.alloc_f64(&vec![0.0; (nb * nt) as usize]).unwrap();
        let stats = dev
            .launch(
                "light",
                &[RtVal::Ptr(out), RtVal::I64(nb), RtVal::I64(nt)],
                dims(2, nt as u32),
            )
            .unwrap();
        let v = dev.read_f64(out, (nb * nt) as usize).unwrap();
        assert!(v.iter().all(|&x| x == 1.0));
        stats.cycles
    };
    let g = run(&generic);
    let s = run(&spmd);
    assert!(
        g > s * 2,
        "generic ({g}) should be much slower than SPMD ({s})"
    );
}

#[test]
fn globalization_oom_when_heap_too_small() {
    // Simplified scheme + tiny shared memory + tiny heap: per-thread
    // escaping arrays exhaust the device heap (the paper's RSBench OOM).
    let m = build(
        r#"
double consume(noescape double* buf) { return buf[0]; }
void hog(double* out, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) {
    double scratch[64];
    scratch[0] = (double)i;
    out[i] = consume(scratch);
  }
}
"#,
    );
    let cfg = DeviceConfig {
        shared_mem_per_team: 256,
        global_heap_bytes: 1024,
        ..DeviceConfig::default()
    };
    let mut dev = Device::new(&m, cfg).unwrap();
    let out = dev.alloc_f64(&vec![0.0; 64]).unwrap();
    let err = dev
        .launch("hog", &[RtVal::Ptr(out), RtVal::I64(64)], dims(2, 32))
        .unwrap_err();
    assert!(
        matches!(
            err.kind,
            omp_gpusim::SimErrorKind::Mem(omp_gpusim::MemError::HeapExhausted { .. })
        ),
        "expected OOM, got {err:?}"
    );
}

#[test]
fn math_intrinsics_work() {
    let m = build(
        r#"
void mathy(double* out) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < 4; i++) {
    double x = (double)(i + 1);
    out[i] = sqrt(x) + exp(0.0) + fmax(x, 2.0) + fabs(0.0 - x);
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_f64(&[0.0; 4]).unwrap();
    dev.launch("mathy", &[RtVal::Ptr(out)], dims(1, 4)).unwrap();
    let v = dev.read_f64(out, 4).unwrap();
    for (i, &got) in v.iter().enumerate() {
        let x = (i + 1) as f64;
        assert!((got - (x.sqrt() + 1.0 + x.max(2.0) + x)).abs() < 1e-12);
    }
}

#[test]
fn coalesced_vs_strided_access_cost() {
    let coalesced = build(
        r#"
void copy(double* a, double* b, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { b[i] = a[i]; }
}
"#,
    );
    let strided = build(
        r#"
void copy(double* a, double* b, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { b[i * 33 % n] = a[i * 33 % n]; }
}
"#,
    );
    let n = 256usize;
    let run = |m: &omp_ir::Module| {
        let mut dev = Device::new(m, DeviceConfig::default()).unwrap();
        let a = dev.alloc_f64(&vec![1.0; n]).unwrap();
        let b = dev.alloc_f64(&vec![0.0; n]).unwrap();
        dev.launch(
            "copy",
            &[RtVal::Ptr(a), RtVal::Ptr(b), RtVal::I64(n as i64)],
            dims(1, 32),
        )
        .unwrap()
    };
    let c = run(&coalesced);
    let s = run(&strided);
    assert!(c.coalesced_accesses > 0);
    assert!(s.uncoalesced_accesses > 0);
    assert!(
        s.cycles > c.cycles,
        "strided ({}) should cost more than coalesced ({})",
        s.cycles,
        c.cycles
    );
}

#[test]
fn unknown_kernel_and_bad_args_error() {
    let m = build(
        r#"
void k(double* a) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < 4; i++) { a[i] = 0.0; }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    use omp_gpusim::SimErrorKind;
    assert!(matches!(
        dev.launch("nope", &[], LaunchDims::default()),
        Err(e) if matches!(e.kind, SimErrorKind::UnknownKernel(_))
    ));
    assert!(matches!(
        dev.launch("k", &[], LaunchDims::default()),
        Err(e) if matches!(e.kind, SimErrorKind::BadArgs(_))
    ));
    assert!(matches!(
        dev.launch("k", &[RtVal::I32(1)], LaunchDims::default()),
        Err(e) if matches!(e.kind, SimErrorKind::BadArgs(_))
    ));
}

#[test]
fn legacy_scheme_runs_fig1_correctly() {
    let m = build_legacy(
        r#"
void fig1(double* out, long nblocks, long nthreads) {
  #pragma omp target teams distribute
  for (long b = 0; b < nblocks; b++) {
    double team_val = (double)b + 1.0;
    #pragma omp parallel for
    for (long t = 0; t < nthreads; t++) {
      out[b * nthreads + t] = team_val + (double)t;
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let (nb, nt) = (3i64, 4i64);
    let out = dev.alloc_f64(&vec![0.0; (nb * nt) as usize]).unwrap();
    let stats = dev
        .launch(
            "fig1",
            &[RtVal::Ptr(out), RtVal::I64(nb), RtVal::I64(nt)],
            dims(1, nt as u32),
        )
        .unwrap();
    let vals = dev.read_f64(out, (nb * nt) as usize).unwrap();
    for b in 0..nb {
        for t in 0..nt {
            assert_eq!(vals[(b * nt + t) as usize], (b + 1) as f64 + t as f64);
        }
    }
    assert!(stats.rtl_count("__kmpc_data_sharing_coalesced_push_stack") > 0);
}

#[test]
fn results_identical_across_schemes() {
    // The same program must compute the same answer under every
    // globalization scheme — correctness is scheme-independent.
    let src = r#"
double helper(noescape double* v) { return v[0] * 2.0; }
void work(double* out, long n) {
  #pragma omp target teams distribute
  for (long b = 0; b < n; b++) {
    double acc = (double)b;
    #pragma omp parallel for
    for (long t = 0; t < 4; t++) {
      out[b * 4 + t] = helper(&acc) + (double)t;
    }
  }
}
"#;
    let run = |m: &omp_ir::Module| -> Vec<f64> {
        let mut dev = Device::new(m, DeviceConfig::default()).unwrap();
        let out = dev.alloc_f64(&[0.0; 16]).unwrap();
        dev.launch("work", &[RtVal::Ptr(out), RtVal::I64(4)], dims(2, 4))
            .unwrap();
        dev.read_f64(out, 16).unwrap()
    };
    let simplified = run(&build(src));
    let legacy = run(&build_legacy(src));
    assert_eq!(simplified, legacy);
}
