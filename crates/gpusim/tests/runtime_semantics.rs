//! Focused tests of the OpenMP device-runtime semantics implemented by
//! the interpreter: thread identities, dispatch narrowing, nesting,
//! deadlock detection, and runaway protection.

use omp_frontend::{compile, FrontendOptions};
use omp_gpusim::{Device, DeviceConfig, LaunchDims, RtVal, SimErrorKind};

fn build(src: &str) -> omp_ir::Module {
    let m = compile(src, &FrontendOptions::default()).unwrap();
    omp_ir::verifier::assert_valid(&m);
    m
}

fn dims(teams: u32, threads: u32) -> LaunchDims {
    LaunchDims {
        teams: Some(teams),
        threads: Some(threads),
    }
}

#[test]
fn thread_and_team_identities() {
    let m = build(
        r#"
void ids(long* tid, long* team, long* nthreads, long* nteams, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    tid[me] = me;
    team[me] = (long)omp_get_team_num();
    nthreads[me] = (long)omp_get_num_threads();
    nteams[me] = (long)omp_get_num_teams();
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let n = 8usize;
    let bufs: Vec<u64> = (0..4)
        .map(|_| dev.alloc_i64(&vec![-1; n]).unwrap())
        .collect();
    dev.launch(
        "ids",
        &[
            RtVal::Ptr(bufs[0]),
            RtVal::Ptr(bufs[1]),
            RtVal::Ptr(bufs[2]),
            RtVal::Ptr(bufs[3]),
            RtVal::I64(n as i64),
        ],
        dims(1, n as u32),
    )
    .unwrap();
    let tids = dev.read_i64(bufs[0], n).unwrap();
    assert_eq!(tids, (0..n as i64).collect::<Vec<_>>());
    assert_eq!(dev.read_i64(bufs[1], n).unwrap(), vec![0; n]);
    assert_eq!(dev.read_i64(bufs[2], n).unwrap(), vec![n as i64; n]);
    assert_eq!(dev.read_i64(bufs[3], n).unwrap(), vec![1; n]);
}

#[test]
fn num_threads_clause_narrows_generic_dispatch() {
    let m = build(
        r#"
void narrow(long* count, long nthreads) {
  #pragma omp target teams
  {
    #pragma omp parallel num_threads(3)
    {
      long me = (long)omp_get_thread_num();
      count[me] = (long)omp_get_num_threads();
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[-1; 8]).unwrap();
    dev.launch("narrow", &[RtVal::Ptr(out), RtVal::I64(8)], dims(1, 8))
        .unwrap();
    let v = dev.read_i64(out, 8).unwrap();
    // Exactly three participants, each seeing a team of three.
    assert_eq!(&v[..3], &[3, 3, 3]);
    assert_eq!(&v[3..], &[-1, -1, -1, -1, -1]);
}

#[test]
fn nested_region_sees_team_of_one() {
    let m = build(
        r#"
void nest(long* out, long n) {
  #pragma omp target teams
  {
    #pragma omp parallel
    {
      long outer = (long)omp_get_thread_num();
      #pragma omp parallel
      {
        out[outer * 2] = (long)omp_get_thread_num();
        out[outer * 2 + 1] = (long)omp_get_num_threads();
      }
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[-1; 8]).unwrap();
    dev.launch("nest", &[RtVal::Ptr(out), RtVal::I64(8)], dims(1, 4))
        .unwrap();
    let v = dev.read_i64(out, 8).unwrap();
    for t in 0..4 {
        assert_eq!(v[t * 2], 0, "nested tid for outer thread {t}");
        assert_eq!(v[t * 2 + 1], 1, "nested team size for outer thread {t}");
    }
}

#[test]
fn divergent_barrier_deadlocks_with_diagnosis() {
    // Only thread 0 reaches the barrier: a programming error the
    // simulator reports as a deadlock instead of hanging.
    let m = build(
        r#"
void bad(long* out, long n) {
  #pragma omp target parallel
  {
    if (omp_get_thread_num() == 0) {
      #pragma omp barrier
      out[0] = 1;
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[0; 4]).unwrap();
    let err = dev
        .launch("bad", &[RtVal::Ptr(out), RtVal::I64(4)], dims(1, 4))
        .unwrap_err();
    assert!(matches!(err.kind, SimErrorKind::Deadlock), "{err:?}");
}

#[test]
fn runaway_loops_hit_the_instruction_budget() {
    let m = build(
        r#"
void spin(long* out) {
  #pragma omp target teams
  {
    long i = 0;
    while (i < 1000000000) {
      i = i + 0; // never progresses
    }
    out[0] = i;
  }
}
"#,
    );
    let cfg = DeviceConfig {
        max_insts_per_thread: 10_000,
        ..DeviceConfig::default()
    };
    let mut dev = Device::new(&m, cfg).unwrap();
    let out = dev.alloc_i64(&[0]).unwrap();
    let err = dev
        .launch("spin", &[RtVal::Ptr(out)], dims(1, 2))
        .unwrap_err();
    assert!(matches!(err.kind, SimErrorKind::Runaway { .. }));
}

#[test]
fn warp_and_lane_identities() {
    // __kmpc_get_warp_size is folded by the optimizer normally; here we
    // query the raw runtime through a kernel that cannot fold (no
    // optimizer run).
    let m = build(
        r#"
void warps(long* warp, long* lane, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    warp[me] = probe_warp();
    lane[me] = probe_lane();
  }
}
long probe_warp();
long probe_lane();
"#,
    );
    // probe_warp/probe_lane are declarations: wire them to the runtime
    // by renaming the declarations to the runtime symbols is not
    // possible from source, so this test exercises the trap path for
    // unresolved externals instead.
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let w = dev.alloc_i64(&vec![0; 64]).unwrap();
    let l = dev.alloc_i64(&vec![0; 64]).unwrap();
    let err = dev
        .launch(
            "warps",
            &[RtVal::Ptr(w), RtVal::Ptr(l), RtVal::I64(64)],
            dims(1, 64),
        )
        .unwrap_err();
    assert!(matches!(err.kind, SimErrorKind::Trap(_)));
}

#[test]
fn barrier_in_serialized_nested_region_is_noop() {
    let m = build(
        r#"
void nested_barrier(long* out, long n) {
  #pragma omp target parallel
  {
    long me = (long)omp_get_thread_num();
    #pragma omp parallel
    {
      #pragma omp barrier
      out[me] = me + 100;
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let out = dev.alloc_i64(&[0; 4]).unwrap();
    dev.launch(
        "nested_barrier",
        &[RtVal::Ptr(out), RtVal::I64(4)],
        dims(1, 4),
    )
    .unwrap();
    assert_eq!(dev.read_i64(out, 4).unwrap(), vec![100, 101, 102, 103]);
}

#[test]
fn kernel_stats_count_what_ran() {
    let m = build(
        r#"
void counted(double* a, long n) {
  #pragma omp target teams distribute
  for (long b = 0; b < n; b++) {
    double tv = (double)b;
    #pragma omp parallel for
    for (long t = 0; t < 4; t++) {
      a[b * 4 + t] = tv;
    }
  }
}
"#,
    );
    let mut dev = Device::new(&m, DeviceConfig::default()).unwrap();
    let a = dev.alloc_f64(&[0.0; 16]).unwrap();
    let stats = dev
        .launch("counted", &[RtVal::Ptr(a), RtVal::I64(4)], dims(1, 4))
        .unwrap();
    // 4 distribute iterations, one generic dispatch each.
    assert_eq!(stats.parallel_regions, 4);
    assert_eq!(stats.rtl_count("__kmpc_parallel_51"), 4);
    // tv is globalized (captured by reference? no: read-only => by
    // value) — but the capture struct is allocated per dispatch.
    assert!(stats.globalization_allocs >= 4);
    assert!(stats.instructions > 0);
    assert!(stats.memory_accesses > 0);
}
