//! Unified telemetry for the workspace: a span tracer, a metrics
//! registry, and the shared Chrome trace-event writers.
//!
//! Three pieces, all dependency-free beyond `omp-json`:
//!
//! - [`trace`]: the Chrome trace-event object shapes (`M` metadata,
//!   `X` duration spans, `i` instants) that `gpusim`'s profiler has
//!   always emitted, factored out so every trace producer writes
//!   byte-identical events.
//! - the **span tracer** ([`span`], [`take_spans`]): opt-in
//!   (`set_enabled`), process-global, with parent links maintained
//!   per thread. Disabled it costs one relaxed atomic load per call
//!   site; spans record *wall-clock* time and are therefore
//!   informational only — they must never feed a bit-identity
//!   fingerprint.
//! - the [`MetricsRegistry`]: named counters, gauges, and
//!   power-of-two log-bucketed latency histograms with p50/p90/p99
//!   summaries, rendered as Prometheus text and as JSON. Registries
//!   are plain values owned by their producer (no global state), so
//!   counters populated from deterministic sources stay bit-identical
//!   across `--jobs`, tiers, and eager-vs-replay.
//!
//! The `ompgpu-telemetry/v1` artifact ([`telemetry_json`]) bundles the
//! collected spans with a registry snapshot; [`chrome_trace`] renders
//! the same spans as a Perfetto-loadable trace.

use omp_json::JsonWriter;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Schema identifier of the telemetry artifact.
pub const TELEMETRY_SCHEMA: &str = "ompgpu-telemetry/v1";
/// Schema identifier of one serve access-log record.
pub const ACCESS_LOG_SCHEMA: &str = "ompgpu-access-log/v1";

// ---------------------------------------------------------------------
// Chrome trace-event writers
// ---------------------------------------------------------------------

/// The Chrome trace-event object shapes shared by every trace producer
/// in the workspace (the profiler's launch timeline and the span
/// tracer's pipeline timeline). Loadable in Perfetto and
/// `chrome://tracing`.
pub mod trace {
    use omp_json::JsonWriter;

    /// An `M` metadata event: names the process (`tid` = `None`) or
    /// one thread track.
    pub fn meta_event(w: &mut JsonWriter, name: &str, tid: Option<u32>, value: &str) {
        w.begin_object();
        w.key("name").string(name);
        w.key("ph").string("M");
        w.key("pid").u32(0);
        if let Some(tid) = tid {
            w.key("tid").u32(tid);
        }
        w.key("args").begin_object();
        w.key("name").string(value);
        w.end_object();
        w.end_object();
    }

    /// An `X` complete-duration event on track `tid` spanning
    /// `start..end` (the format's microsecond fields; producers may map
    /// model cycles onto them).
    pub fn span_event(w: &mut JsonWriter, name: &str, cat: &str, tid: u32, start: u64, end: u64) {
        w.begin_object();
        w.key("name").string(name);
        w.key("cat").string(cat);
        w.key("ph").string("X");
        w.key("pid").u32(0);
        w.key("tid").u32(tid);
        w.key("ts").u64(start);
        w.key("dur").u64(end.saturating_sub(start));
        w.end_object();
    }

    /// An `i` thread-scoped instant event, optionally annotated with a
    /// byte count in its `args`.
    pub fn instant_event(
        w: &mut JsonWriter,
        name: &str,
        cat: &str,
        tid: u32,
        ts: u64,
        bytes: Option<u64>,
    ) {
        w.begin_object();
        w.key("name").string(name);
        w.key("cat").string(cat);
        w.key("ph").string("i");
        w.key("s").string("t");
        w.key("pid").u32(0);
        w.key("tid").u32(tid);
        w.key("ts").u64(ts);
        if let Some(bytes) = bytes {
            w.key("args").begin_object();
            w.key("bytes").u64(bytes);
            w.end_object();
        }
        w.end_object();
    }
}

// ---------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------

/// One finished span. `parent` is 0 for root spans; `track` is a small
/// per-thread index assigned in first-use order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    pub name: String,
    pub cat: String,
    pub start_micros: u64,
    pub dur_micros: u64,
    pub track: u32,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACK: AtomicU32 = AtomicU32::new(0);

struct TraceStore {
    epoch: Instant,
    spans: Vec<SpanRecord>,
}

fn store() -> &'static Mutex<TraceStore> {
    static STORE: OnceLock<Mutex<TraceStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(TraceStore {
            epoch: Instant::now(),
            spans: Vec::new(),
        })
    })
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static TRACK: RefCell<Option<u32>> = const { RefCell::new(None) };
}

/// Turns the span tracer on or off. Off (the default) every [`span`]
/// call site reduces to one relaxed atomic load.
pub fn set_enabled(on: bool) {
    if on {
        // Touch the store so the epoch exists before the first span.
        let _ = store();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the tracer is currently collecting spans.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII guard for an in-flight span; the span is recorded when the
/// guard drops. A no-op while the tracer is disabled.
#[must_use = "the span ends when this guard drops"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: String,
    cat: String,
    start_micros: u64,
    track: u32,
}

/// Opens a span named `name` in category `cat` on the current thread.
/// The innermost open span on this thread becomes its parent.
pub fn span(name: &str, cat: &str) -> Span {
    if !enabled() {
        return Span(None);
    }
    span_owned(name.to_string(), cat)
}

/// Like [`span`] but the name is built lazily, so call sites with
/// formatted names pay nothing while the tracer is off.
pub fn span_lazy(cat: &str, name: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span(None);
    }
    span_owned(name(), cat)
}

fn span_owned(name: String, cat: &str) -> Span {
    let start_micros = store()
        .lock()
        .map(|s| s.epoch.elapsed().as_micros() as u64)
        .unwrap_or(0);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    let track = TRACK.with(|t| {
        *t.borrow_mut()
            .get_or_insert_with(|| NEXT_TRACK.fetch_add(1, Ordering::Relaxed))
    });
    Span(Some(ActiveSpan {
        id,
        parent,
        name,
        cat: cat.to_string(),
        start_micros,
        track,
    }))
}

/// Records an already-completed span retroactively from its start
/// `Instant` — for call sites that already time themselves (the pass
/// manager) and only learn the span's name after the fact. The
/// innermost open span on this thread becomes the parent.
pub fn record_completed(name: &str, cat: &str, started: Instant) {
    if !enabled() {
        return;
    }
    let dur_micros = started.elapsed().as_micros() as u64;
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let track = TRACK.with(|t| {
        *t.borrow_mut()
            .get_or_insert_with(|| NEXT_TRACK.fetch_add(1, Ordering::Relaxed))
    });
    if let Ok(mut store) = store().lock() {
        let end = store.epoch.elapsed().as_micros() as u64;
        store.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            cat: cat.to_string(),
            start_micros: end.saturating_sub(dur_micros),
            dur_micros,
            track,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&active.id) {
                s.pop();
            } else {
                // Out-of-order drop (guards dropped in non-LIFO order):
                // remove the id wherever it sits.
                s.retain(|&id| id != active.id);
            }
        });
        if let Ok(mut store) = store().lock() {
            let end = store.epoch.elapsed().as_micros() as u64;
            store.spans.push(SpanRecord {
                id: active.id,
                parent: active.parent,
                name: active.name,
                cat: active.cat,
                start_micros: active.start_micros,
                dur_micros: end.saturating_sub(active.start_micros),
                track: active.track,
            });
        }
    }
}

/// Drains every finished span collected so far, ordered by start time
/// (ties broken by span id).
pub fn take_spans() -> Vec<SpanRecord> {
    let mut spans = store()
        .lock()
        .map(|mut s| std::mem::take(&mut s.spans))
        .unwrap_or_default();
    spans.sort_by_key(|s| (s.start_micros, s.id));
    spans
}

/// Discards any finished spans collected so far.
pub fn clear_spans() {
    let _ = take_spans();
}

/// Renders spans as a Chrome trace-event JSON document (Perfetto-
/// loadable), one track per recording thread, using the shared
/// [`trace`] writers.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_array();
    trace::meta_event(&mut w, "process_name", None, "ompgpu");
    let mut tracks: Vec<u32> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for &t in &tracks {
        trace::meta_event(&mut w, "thread_name", Some(t), &format!("thread {t}"));
    }
    for s in spans {
        trace::span_event(
            &mut w,
            &s.name,
            &s.cat,
            s.track,
            s.start_micros,
            s.start_micros + s.dur_micros,
        );
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Renders the `ompgpu-telemetry/v1` artifact: the collected spans
/// (with parent links) plus a metrics-registry snapshot.
pub fn telemetry_json(spans: &[SpanRecord], metrics: &MetricsRegistry) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.key("schema").string(TELEMETRY_SCHEMA);
    w.key("spans").begin_array();
    for s in spans {
        w.begin_object();
        w.key("id").u64(s.id);
        w.key("parent").u64(s.parent);
        w.key("name").string(&s.name);
        w.key("cat").string(&s.cat);
        w.key("start_micros").u64(s.start_micros);
        w.key("dur_micros").u64(s.dur_micros);
        w.key("track").u32(s.track);
        w.end_object();
    }
    w.end_array();
    w.key("metrics");
    metrics.write_json(&mut w);
    w.end_object();
    w.finish()
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// Number of log₂ buckets: bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`; bucket 0 holds zero. The last bucket absorbs
/// everything at or above `2^(BUCKETS-2)`.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// A log₂-bucketed (HDR-style) histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`2^i - 1`); the overflow
    /// bucket has no finite bound (`u64::MAX`).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// observation (`q` in `0..=1`). Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Named counters, gauges, and latency histograms. A plain value —
/// producers own their registry, merge them explicitly, and render on
/// demand; iteration order is always name-sorted so every rendering is
/// deterministic for identical contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `v` to the named monotonic counter.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v`.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of a gauge (`None` if absent).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters and histogram buckets add,
    /// gauges take `other`'s value.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Drops every histogram — used where wall-clock distributions must
    /// be excluded from a deterministic comparison while counters and
    /// gauges are kept.
    pub fn without_histograms(&self) -> MetricsRegistry {
        MetricsRegistry {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: BTreeMap::new(),
        }
    }

    /// Writes the JSON rendering into an open writer position:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,
    /// sum,p50,p90,p99,buckets:{le:count}}}}`, everything name-sorted,
    /// bucket keys being each bucket's inclusive upper bound (the
    /// overflow bucket is keyed `"inf"`), only non-empty buckets shown.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters").begin_object();
        for (k, v) in &self.counters {
            w.key(k).u64(*v);
        }
        w.end_object();
        w.key("gauges").begin_object();
        for (k, v) in &self.gauges {
            w.key(k).i64(*v);
        }
        w.end_object();
        w.key("histograms").begin_object();
        for (k, h) in &self.histograms {
            w.key(k).begin_object();
            w.key("count").u64(h.count);
            w.key("sum").u64(h.sum);
            w.key("p50").u64(h.quantile(0.50));
            w.key("p90").u64(h.quantile(0.90));
            w.key("p99").u64(h.quantile(0.99));
            w.key("buckets").begin_object();
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if i >= HISTOGRAM_BUCKETS - 1 {
                    w.key("inf").u64(n);
                } else {
                    w.key(&Histogram::bucket_bound(i).to_string()).u64(n);
                }
            }
            w.end_object();
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }

    /// The JSON rendering as a standalone compact document.
    pub fn render_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(1024);
        self.write_json(&mut w);
        w.finish()
    }

    /// The Prometheus text-exposition rendering: counters and gauges as
    /// single samples, histograms as cumulative `_bucket{le="..."}`
    /// series plus `_sum`/`_count`. Metric names are sanitized to the
    /// Prometheus charset (`[a-zA-Z0-9_:]`).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = sanitize_metric_name(k);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, v) in &self.gauges {
            let name = sanitize_metric_name(k);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, h) in &self.histograms {
            let name = sanitize_metric_name(k);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let top = h
                .buckets
                .iter()
                .rposition(|&n| n != 0)
                .map_or(0, |i| i.min(HISTOGRAM_BUCKETS - 2));
            let mut cum = 0u64;
            for i in 0..=top {
                cum += h.buckets[i];
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cum}",
                    Histogram::bucket_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

/// Maps a metric name onto the Prometheus charset: every byte outside
/// `[a-zA-Z0-9_:]` becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The fixed example registry rendered in `docs/TELEMETRY.md`; the
/// doc-drift test replays both renderings byte-for-byte.
pub fn example_registry() -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.counter_add("serve.requests", 11);
    m.counter_add("serve.errors", 2);
    m.counter_add("serve.cache.device.hits", 3);
    m.gauge_set("serve.device_entries", 1);
    for v in [90, 120, 700, 1300, 1350, 6000] {
        m.observe("serve.service_micros.run", v);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The tracer is process-global; tests that enable it serialize on
    /// this lock so concurrent test threads don't cross-contaminate.
    fn tracer_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn spans_record_parent_links_and_drain() {
        let _guard = tracer_lock().lock().unwrap();
        set_enabled(true);
        clear_spans();
        {
            let _outer = span("outer", "test");
            let _inner = span("inner", "test");
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.cat, "test");
        assert!(inner.start_micros >= outer.start_micros);
        // Drained: a second take returns nothing.
        assert!(take_spans().is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _guard = tracer_lock().lock().unwrap();
        set_enabled(false);
        clear_spans();
        {
            let _s = span("ghost", "test");
            let _l = span_lazy("test", || unreachable!("lazy name built while disabled"));
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn chrome_trace_and_artifact_validate() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "compile".into(),
                cat: "pipeline".into(),
                start_micros: 0,
                dur_micros: 120,
                track: 0,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "gvn".into(),
                cat: "pass".into(),
                start_micros: 10,
                dur_micros: 30,
                track: 0,
            },
        ];
        let trace = chrome_trace(&spans);
        omp_json::validate(&trace).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""));
        let artifact = telemetry_json(&spans, &example_registry());
        omp_json::validate(&artifact).unwrap();
        let v = omp_json::parse(&artifact).unwrap();
        assert_eq!(
            v.get("schema").and_then(omp_json::Value::as_str),
            Some(TELEMETRY_SCHEMA)
        );
        assert_eq!(
            v.get("spans")
                .and_then(omp_json::Value::as_array)
                .map(<[omp_json::Value]>::len),
            Some(2)
        );
        assert!(v.get("metrics").is_some());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 111);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 2); // 1, 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[7], 1); // 100 in [64,128)
        assert_eq!(h.quantile(0.5), Histogram::bucket_bound(2));
        assert_eq!(h.quantile(0.99), Histogram::bucket_bound(7));
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn registry_renderings_are_consistent() {
        let m = example_registry();
        let json = m.render_json();
        omp_json::validate(&json).unwrap();
        let v = omp_json::parse(&json).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(omp_json::Value::as_u64),
            Some(11)
        );
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 11\n"));
        assert!(text.contains("# TYPE serve_device_entries gauge\nserve_device_entries 1\n"));
        assert!(text.contains("# TYPE serve_service_micros_run histogram\n"));
        assert!(text.contains("serve_service_micros_run_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("serve_service_micros_run_sum 9560\n"));
        assert!(text.contains("serve_service_micros_run_count 6\n"));
        // Cumulative bucket counts end at the total count.
        let last_finite = text
            .lines()
            .rev()
            .find(|l| l.starts_with("serve_service_micros_run_bucket{le=\"") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_finite.ends_with(" 6"));
    }

    #[test]
    fn registry_merge_and_determinism() {
        let mut a = example_registry();
        let b = example_registry();
        a.merge(&b);
        assert_eq!(a.counter("serve.requests"), 22);
        assert_eq!(a.histogram("serve.service_micros.run").unwrap().count, 12);
        // Two identically-populated registries render identically,
        // independent of insertion order.
        let mut x = MetricsRegistry::new();
        x.counter_add("b", 2);
        x.counter_add("a", 1);
        let mut y = MetricsRegistry::new();
        y.counter_add("a", 1);
        y.counter_add("b", 2);
        assert_eq!(x, y);
        assert_eq!(x.render_json(), y.render_json());
        assert_eq!(x.render_prometheus(), y.render_prometheus());
    }

    #[test]
    fn sanitizer_maps_to_prometheus_charset() {
        assert_eq!(
            sanitize_metric_name("serve.cache.device.hits"),
            "serve_cache_device_hits"
        );
        assert_eq!(sanitize_metric_name("a-b c:d_e9"), "a_b_c:d_e9");
    }
}
