//! Doc-drift guard for `docs/TELEMETRY.md`: the exposition examples on
//! that page must be the *verbatim* output of
//! [`omp_telemetry::example_registry`]'s renderers, byte for byte, so
//! the documented wire format can never silently diverge from the
//! code. Mirrors the approach `crates/core/tests/serve_docs.rs` takes
//! for the serve protocol page.

const DOC: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../docs/TELEMETRY.md"
));

/// Extracts the bodies of all fenced code blocks with the given info
/// string (e.g. `text` or `json`), in document order.
fn fenced_blocks(doc: &str, info: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match &mut current {
            Some(body) => {
                if line.trim_end() == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
            None => {
                if line.trim_end() == format!("```{info}") {
                    current = Some(String::new());
                }
            }
        }
    }
    blocks
}

#[test]
fn prometheus_example_is_byte_identical() {
    let rendered = omp_telemetry::example_registry().render_prometheus();
    let blocks = fenced_blocks(DOC, "text");
    assert!(
        blocks.contains(&rendered),
        "docs/TELEMETRY.md has no ```text block matching \
         example_registry().render_prometheus() — regenerate the page.\n\
         expected:\n{rendered}"
    );
}

#[test]
fn json_example_is_byte_identical() {
    let rendered = omp_telemetry::example_registry().render_json();
    let blocks = fenced_blocks(DOC, "json");
    assert!(
        blocks.iter().any(|b| b.trim_end() == rendered.trim_end()),
        "docs/TELEMETRY.md has no ```json block matching \
         example_registry().render_json() — regenerate the page.\n\
         expected:\n{rendered}"
    );
}

#[test]
fn doc_names_both_schemas_and_the_schema_exit_code() {
    assert!(DOC.contains(omp_telemetry::TELEMETRY_SCHEMA));
    assert!(DOC.contains(omp_telemetry::ACCESS_LOG_SCHEMA));
    assert!(
        DOC.contains('6'),
        "the unknown-schema exit code must be documented"
    );
}
