//! Doc-drift guard for `docs/SERVE.md`: every fenced ```json block in
//! the protocol spec must stay wire truth.
//!
//! The contract, shared with the doc's preamble:
//!
//! * every block parses as JSON;
//! * a block that is an object with an `"op"` member and no `"schema"`
//!   member is a **request example** — it is replayed, in document
//!   order, against one fresh [`Session`];
//! * a block whose `"schema"` is `ompgpu-serve/v1` is a **response
//!   example** — it must match the actual response the replay produced
//!   for the same `id`, byte-for-byte after whitespace normalization;
//! * every protocol op appears among the request examples.
//!
//! Because responses embed per-request cache counters and the `stats`
//! payload embeds running totals, the comparison only works if the doc
//! shows one coherent session transcript — which is exactly what keeps
//! the examples honest.

use omp_gpu::serve::{spawn_executor, Session, ALL_OPS, SCHEMA};
use omp_json::Value;
use std::collections::HashMap;

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVE.md");
    std::fs::read_to_string(path).expect("docs/SERVE.md exists")
}

/// Extracts the contents of every fenced ```json block, in order.
fn json_blocks(text: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        match &mut current {
            None => {
                if line.trim() == "```json" {
                    current = Some(String::new());
                }
            }
            Some(buf) => {
                if line.trim() == "```" {
                    blocks.push(std::mem::take(buf));
                    current = None;
                } else {
                    buf.push_str(line);
                    buf.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```json fence in SERVE.md");
    blocks
}

#[test]
fn serve_md_examples_are_wire_truth() {
    let blocks = json_blocks(&spec_text());
    assert!(
        blocks.len() >= 2 * ALL_OPS.len(),
        "SERVE.md should carry a request and a response example per op, \
         found only {} json blocks",
        blocks.len()
    );

    // Replay through a real executor (not Session::handle_line
    // directly) so the stats example's batching counters match a live
    // daemon's transcript.
    let (handle, executor) = spawn_executor(Session::default());
    let mut actual_by_id: HashMap<u64, String> = HashMap::new();
    let mut ops_seen: Vec<String> = Vec::new();
    let mut responses_checked = 0usize;

    for (i, block) in blocks.iter().enumerate() {
        let v = omp_json::parse(block)
            .unwrap_or_else(|e| panic!("SERVE.md json block #{i} does not parse: {e}"));
        let is_response = v.get("schema").and_then(Value::as_str) == Some(SCHEMA);
        if is_response {
            let op = v.get("op").and_then(Value::as_str);
            assert!(
                op.is_none() || ALL_OPS.contains(&op.unwrap()),
                "response example #{i} documents unknown op {op:?}"
            );
            for key in ["id", "op", "ok", "exit_code", "cache"] {
                assert!(
                    v.get(key).is_some(),
                    "response example #{i} lacks the envelope member {key:?}"
                );
            }
            let id = v
                .get("id")
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("response example #{i} needs a numeric id to pair it"));
            let actual = actual_by_id
                .get(&id)
                .unwrap_or_else(|| panic!("response example #{i} (id {id}) precedes its request"));
            assert_eq!(
                &v.to_json(),
                actual,
                "response example #{i} (id {id}) drifted from the actual wire bytes \
                 — regenerate the SERVE.md examples"
            );
            responses_checked += 1;
        } else if let Some(op) = v.get("op").and_then(Value::as_str) {
            // A request example: replay it. Re-serializing the parsed
            // block yields the single-line wire form of the
            // pretty-printed doc text.
            let response = handle.request(&v.to_json());
            let resp = omp_json::parse(&response).expect("server response parses");
            let exit = resp.get("exit_code").and_then(Value::as_u64).unwrap();
            assert_ne!(
                exit, 2,
                "request example #{i} (op {op:?}) is rejected as a usage error: {response}"
            );
            if let Some(id) = v.get("id").and_then(Value::as_u64) {
                actual_by_id.insert(id, response);
            }
            ops_seen.push(op.to_string());
        }
        // Other json blocks (if any) only need to parse.
    }

    drop(handle);
    let _ = executor.join();

    for op in ALL_OPS {
        assert!(
            ops_seen.iter().any(|o| o == op),
            "SERVE.md has no request example for op {op:?}"
        );
    }
    assert!(
        responses_checked >= ALL_OPS.len(),
        "SERVE.md verified only {responses_checked} response examples"
    );
}

#[test]
fn serve_md_documents_every_exit_code_and_config() {
    let text = spec_text();
    for code in 0..=9u8 {
        assert!(
            text.lines().any(|l| l.contains(&format!("| {code} |"))),
            "SERVE.md exit-code table lacks code {code}"
        );
    }
    for config in omp_gpu::BuildConfig::ALL {
        assert!(
            text.contains(config.cli_name()),
            "SERVE.md never mentions config {:?}",
            config.cli_name()
        );
    }
}
