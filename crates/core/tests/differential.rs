//! Differential-execution oracle tests: every proxy benchmark and every
//! oracle example must produce bit-identical outputs under all six
//! OpenMP-source configurations of the paper's ablation matrix, with
//! monotone resource statistics along the ablation chain. This is the
//! repository's strongest correctness gate — it catches any optimizer
//! change that alters observable behavior, not just ones a hand-written
//! assertion anticipates.

use omp_gpu::oracle::{self, ORACLE_CONFIGS};
use omp_gpu::{all_proxies, BuildConfig, Scale};
use std::path::PathBuf;

fn examples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/omp")
}

#[test]
fn oracle_matrix_has_six_configs() {
    assert_eq!(ORACLE_CONFIGS.len(), 6);
    assert!(!ORACLE_CONFIGS.contains(&BuildConfig::CudaStyle));
}

#[test]
fn xsbench_is_bit_identical_across_matrix() {
    let app = &all_proxies(Scale::Small)[0];
    let case = oracle::verify_proxy(app.as_ref());
    assert_eq!(case.name, "XSBench");
    assert!(case.passed(), "{:?}", case.failures);
    assert_eq!(case.successes(), ORACLE_CONFIGS.len());
}

#[test]
fn rsbench_is_bit_identical_across_matrix() {
    let app = &all_proxies(Scale::Small)[1];
    let case = oracle::verify_proxy(app.as_ref());
    assert_eq!(case.name, "RSBench");
    assert!(case.passed(), "{:?}", case.failures);
    // At test scale the baseline fits in the heap; at bench scale its
    // globalization overflows (the paper's OOM row) — either way every
    // *successful* configuration must agree, and the optimized ones
    // must all succeed.
    assert!(case.successes() >= ORACLE_CONFIGS.len() - 1);
}

#[test]
fn su3bench_is_bit_identical_across_matrix() {
    let app = &all_proxies(Scale::Small)[2];
    let case = oracle::verify_proxy(app.as_ref());
    assert_eq!(case.name, "SU3Bench");
    assert!(case.passed(), "{:?}", case.failures);
    assert_eq!(case.successes(), ORACLE_CONFIGS.len());
}

#[test]
fn miniqmc_is_bit_identical_across_matrix() {
    let app = &all_proxies(Scale::Small)[3];
    let case = oracle::verify_proxy(app.as_ref());
    assert_eq!(case.name, "miniQMC");
    assert!(case.passed(), "{:?}", case.failures);
    assert_eq!(case.successes(), ORACLE_CONFIGS.len());
}

#[test]
fn example_corpus_is_bit_identical_across_matrix() {
    let report = oracle::verify_examples_dir(&examples_dir()).expect("examples dir");
    assert!(report.cases.len() >= 5, "example corpus shrank");
    for case in &report.cases {
        assert!(case.passed(), "{}: {:?}", case.name, case.failures);
        assert_eq!(
            case.successes(),
            ORACLE_CONFIGS.len(),
            "{}: some configuration failed to execute",
            case.name
        );
    }
}

#[test]
fn optimizations_actually_fire_on_the_chain() {
    // The oracle would pass vacuously if the ablation matrix collapsed
    // to identical builds. Assert the optimized end of the chain really
    // removes globalization allocations on a proxy that globalizes.
    let app = &all_proxies(Scale::Small)[2]; // SU3Bench
    let case = oracle::verify_proxy(app.as_ref());
    let get = |c: BuildConfig| {
        case.results
            .iter()
            .find(|r| r.config == c)
            .and_then(|r| r.stats.as_ref())
            .expect("stats")
            .clone()
    };
    let noopt = get(BuildConfig::NoOpenmpOpt);
    let dev = get(BuildConfig::LlvmDev);
    assert!(noopt.globalization_allocs > 0, "proxy stopped globalizing");
    assert_eq!(
        dev.globalization_allocs, 0,
        "deglobalization stopped firing"
    );
    assert!(
        dev.cycles < noopt.cycles,
        "optimizations stopped paying off"
    );
}

#[test]
fn pass_stats_surface_reaches_the_oracle() {
    // The per-pass statistics derived from structured remarks must be
    // visible on oracle results for configurations that ran the
    // optimizer, and absent for the baseline.
    let app = &all_proxies(Scale::Small)[0]; // XSBench
    let case = oracle::verify_proxy(app.as_ref());
    for r in &case.results {
        match r.config {
            BuildConfig::Llvm12Baseline => assert!(r.pass_stats.is_empty()),
            _ => {
                assert!(!r.pass_stats.is_empty(), "{}", r.config.label());
                let total: usize = r.pass_stats.iter().map(|s| s.transformed).sum();
                if r.config == BuildConfig::LlvmDev {
                    assert!(total > 0, "LLVM Dev transformed nothing");
                }
            }
        }
    }
}

#[test]
fn remark_stream_roundtrips_for_every_config() {
    // The structured remark JSON must round-trip for real compiler
    // output, not just synthetic remarks.
    let app = &all_proxies(Scale::Small)[3]; // miniQMC: every pass fires
    for &config in &ORACLE_CONFIGS {
        let Some(_) = config.opt_config() else {
            continue;
        };
        let (_, report) = omp_gpu::pipeline::build(&app.openmp_source(), config).expect("build");
        let report = report.expect("report");
        let text = report.remarks.to_json_lines();
        let parsed = omp_opt::Remarks::from_json_lines(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
        assert_eq!(parsed.all(), report.remarks.all(), "{}", config.label());
    }
}

#[test]
fn stats_snapshots_are_deterministic() {
    // Two independent runs of the same build must produce identical
    // snapshots — the property every differential comparison rests on.
    let app = &all_proxies(Scale::Small)[0];
    let a = omp_gpu::run_proxy(app.as_ref(), BuildConfig::LlvmDev);
    let b = omp_gpu::run_proxy(app.as_ref(), BuildConfig::LlvmDev);
    assert_eq!(a.snapshot().expect("run a"), b.snapshot().expect("run b"));
    assert_eq!(
        a.snapshot().unwrap().to_json(),
        b.snapshot().unwrap().to_json()
    );
}
