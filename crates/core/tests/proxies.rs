//! The central reproduction gate: every proxy application computes
//! correct results under every build configuration (except the
//! documented RSBench OOM at bench scale), and the performance ordering
//! matches the paper's Figure 11.

use omp_gpu::{all_proxies, pipeline, Scale};

#[test]
fn every_proxy_correct_under_every_config_at_small_scale() {
    for app in all_proxies(Scale::Small) {
        for outcome in pipeline::run_all_configs(app.as_ref()) {
            assert!(
                outcome.error.is_none(),
                "{} under {:?}: {}",
                app.name(),
                outcome.config,
                outcome.error.unwrap()
            );
            assert!(outcome.cycles().unwrap() > 0);
        }
    }
}
