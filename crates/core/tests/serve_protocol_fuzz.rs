//! Protocol robustness: no matter how malformed, truncated, oversized,
//! or type-confused a request frame is, `Session::handle_line` must
//! answer a valid `ompgpu-serve/v1` envelope with a nonzero exit code —
//! and the session must stay usable afterwards.

use omp_gpu::serve::{Session, EXIT_OK, MAX_FRAME_BYTES, SCHEMA};
use omp_json::Value;
use proptest::prelude::*;

/// Feeds one frame and asserts the protocol invariants hold: the reply
/// parses, carries the schema, and (for `expect_error`) a nonzero exit
/// code; a follow-up ping then proves the session survived.
fn assert_survives(session: &mut Session, frame: &str, expect_error: bool) {
    let (resp, shutdown) = session.handle_line(frame);
    assert!(!shutdown, "no fuzzed frame may shut the session down");
    let v =
        omp_json::parse(&resp).unwrap_or_else(|e| panic!("reply must be valid JSON ({e}): {resp}"));
    assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
    let exit = v
        .get("exit_code")
        .and_then(Value::as_u64)
        .expect("exit_code present");
    if expect_error {
        assert_ne!(exit, EXIT_OK as u64, "bad frame must not succeed: {resp}");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("error").is_some(), "errors carry an error object");
    }
    let (pong, _) = session.handle_line("{\"op\":\"ping\"}");
    assert!(
        pong.contains("\"pong\":true"),
        "session must stay usable after {frame:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary ASCII soup (almost never valid JSON, never a valid
    /// request) gets a structured usage error.
    #[test]
    fn arbitrary_text_yields_structured_errors(frame in "[ -~]{0,120}") {
        let mut s = Session::default();
        let (resp, shutdown) = s.handle_line(&frame);
        prop_assert!(!shutdown);
        let v = omp_json::parse(&resp).expect("reply is valid JSON");
        prop_assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
        prop_assert!(v.get("exit_code").and_then(Value::as_u64).is_some());
        let (pong, _) = s.handle_line("{\"op\":\"ping\"}");
        prop_assert!(pong.contains("\"pong\":true"));
    }

    /// Truncations of a valid request are malformed JSON (or a field
    /// subset) and must never panic or wedge the session.
    #[test]
    fn truncated_requests_never_wedge(cut in 1usize..60) {
        let full = "{\"op\":\"run\",\"source\":\"void k() {}\",\"kernel\":\"k\",\"deadline_ms\":1000}";
        let keep = full.len().saturating_sub(cut);
        let frame: String = full.chars().take(keep).collect();
        let mut s = Session::default();
        let (resp, shutdown) = s.handle_line(&frame);
        prop_assert!(!shutdown);
        prop_assert!(omp_json::parse(&resp).is_ok(), "{}", resp);
        let (pong, _) = s.handle_line("{\"op\":\"ping\"}");
        prop_assert!(pong.contains("\"pong\":true"));
    }

    /// Type confusion: every known field with a wrong-typed value must
    /// produce a structured usage error, never a panic.
    #[test]
    fn type_confused_fields_are_usage_errors(
        field in prop_oneof![
            Just("id"), Just("source"), Just("config"), Just("kernel"),
            Just("teams"), Just("threads"), Just("args"), Just("jobs"),
            Just("watchdog_secs"), Just("max_insts"), Just("dump"),
            Just("deadline_ms"), Just("fault"),
        ],
        bad in prop_oneof![
            Just("[]"), Just("{}"), Just("\"x\""), Just("-1"),
            Just("1.5"), Just("true"), Just("[1,2]"),
            Just("{\"stage\":7}"), Just("{\"stage\":\"warp\"}"),
            Just("{\"stage\":\"launch\",\"mode\":\"explode\"}"),
        ],
    ) {
        // Every combination fails somewhere: either field validation
        // rejects the type, or (when the value happens to type-check,
        // like kernel:"x") the run itself fails on the kernel-less
        // stub source — there is no path to exit code 0.
        let frame = format!("{{\"op\":\"run\",\"source\":\"void k() {{}}\",{field:?}:{bad}}}");
        let mut s = Session::default();
        assert_survives(&mut s, &frame, true);
    }
}

#[test]
fn type_confused_op_and_oversized_frames() {
    let mut s = Session::default();
    for frame in [
        "{\"op\":3}",
        "{\"op\":null}",
        "{\"op\":[\"ping\"]}",
        "{\"op\":{\"name\":\"ping\"}}",
        "[1,2,3]",
        "\"just a string\"",
        "42",
        "null",
        "{}",
    ] {
        assert_survives(&mut s, frame, true);
    }
    // A frame just past the limit is rejected with the structured
    // frame-too-large usage error even through handle_line.
    let huge = format!(
        "{{\"op\":\"ping\",\"pad\":\"{}\"}}",
        "y".repeat(MAX_FRAME_BYTES)
    );
    assert_survives(&mut s, &huge, true);
}
