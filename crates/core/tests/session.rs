//! Serve-session determinism: the property the whole compile service
//! rests on is that answering from a warm cache is unobservable.
//!
//! For every configuration of the ablation matrix and every request
//! type, a warmed [`Session`] must return a `result` payload
//! byte-identical to the cold computation — and the warm pass must
//! actually hit the caches (otherwise the property would hold
//! vacuously). Separately, configuration fingerprints must be pairwise
//! distinct, so no two build configurations can ever alias one cache
//! entry.

use omp_gpu::oracle::ORACLE_CONFIGS;
use omp_gpu::serve::Session;
use omp_gpu::BuildConfig;
use omp_json::Value;

const SRC: &str = r#"
// oracle-kernel: blend
// oracle-teams: 4
// oracle-threads: 8
// oracle-arg: buf f64 64 pseudo
// oracle-arg: buf f64 64 iota
// oracle-arg: f64 0.75
// oracle-arg: i64 64
void blend(double* a, double* b, double f, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) {
    a[i] = a[i] * f + b[i] * (1.0 - f);
  }
}
"#;

/// Builds the request corpus: every cacheable op for every OpenMP
/// configuration, plus one `verify` (which sweeps all six internally).
fn corpus() -> Vec<String> {
    let mut lines = Vec::new();
    let escaped = omp_json::escape(SRC);
    for config in ORACLE_CONFIGS {
        for op in ["compile", "run", "profile", "sanitize"] {
            lines.push(format!(
                "{{\"op\":\"{op}\",\"source\":\"{escaped}\",\"name\":\"blend\",\
                 \"config\":\"{}\",\"dump\":8}}",
                config.cli_name()
            ));
        }
    }
    lines.push(format!(
        "{{\"op\":\"verify\",\"source\":\"{escaped}\",\"name\":\"blend\"}}"
    ));
    lines
}

fn result_payload(response: &str) -> String {
    let v = omp_json::parse(response).expect("response parses");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("ompgpu-serve/v1")
    );
    let exit = v.get("exit_code").and_then(Value::as_u64).unwrap();
    assert_eq!(exit, 0, "request must succeed, got: {response}");
    v.get("result")
        .expect("successful response has a result")
        .to_json()
}

fn tier_hits(response: &str, tier: &str) -> u64 {
    omp_json::parse(response)
        .ok()
        .and_then(|v| v.get("cache")?.get(tier)?.get("hits")?.as_u64())
        .unwrap_or(0)
}

#[test]
fn warm_session_is_byte_identical_to_cold_across_the_matrix() {
    let mut session = Session::default();
    let corpus = corpus();

    let cold: Vec<String> = corpus
        .iter()
        .map(|line| session.handle_line(line).0)
        .collect();
    let warm: Vec<String> = corpus
        .iter()
        .map(|line| session.handle_line(line).0)
        .collect();

    for ((line, cold), warm) in corpus.iter().zip(&cold).zip(&warm) {
        assert_eq!(
            result_payload(cold),
            result_payload(warm),
            "cold and warm results differ for request {line}"
        );
        // The property must not hold vacuously: every warm request
        // answers from the frontend and optimized tiers.
        assert!(
            tier_hits(warm, "frontend") > 0,
            "warm request missed the frontend tier: {line}"
        );
        assert!(
            tier_hits(warm, "optimized") > 0,
            "warm request missed the optimized tier: {line}"
        );
    }
    assert!(
        session.stats().device.hits > 0,
        "the warm pass never reused a warmed device"
    );
}

/// A multi-kernel async pipeline: `run` requests for it go through the
/// captured-graph cache.
const PIPE_SRC: &str = r#"
// oracle-kernel: pipe
// oracle-arg: buf f64 32 pseudo
// oracle-arg: buf f64 32 zero
// oracle-arg: i64 32
void pipe(double* a, double* b, long n) {
  #pragma omp target teams distribute parallel for nowait depend(inout: a) num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
  #pragma omp target teams distribute parallel for nowait depend(in: a) depend(out: b) num_teams(2) thread_limit(8)
  for (long i = 0; i < n; i++) { b[i] = a[i] * 2.0; }
}
"#;

fn tier_misses(response: &str, tier: &str) -> u64 {
    omp_json::parse(response)
        .ok()
        .and_then(|v| v.get("cache")?.get(tier)?.get("misses")?.as_u64())
        .unwrap_or(0)
}

#[test]
fn captured_graphs_are_cached_and_replay_byte_identically() {
    let mut session = Session::default();
    let escaped = omp_json::escape(PIPE_SRC);
    let run = format!(
        "{{\"op\":\"run\",\"source\":\"{escaped}\",\"name\":\"pipe\",\
         \"config\":\"dev\",\"dump\":8}}"
    );

    // Cold: the plan is captured (graph-cache miss), then replayed.
    let cold = session.handle_line(&run).0;
    assert_eq!(tier_misses(&cold, "graphs"), 1, "cold run must capture");
    assert_eq!(tier_hits(&cold, "graphs"), 0);

    // Warm: the captured graph answers (hit), with byte-identical
    // results — stats, dumped output bits, everything.
    let warm = session.handle_line(&run).0;
    assert_eq!(tier_hits(&warm, "graphs"), 1, "warm run must replay");
    assert_eq!(tier_misses(&warm, "graphs"), 0);
    assert_eq!(
        result_payload(&cold),
        result_payload(&warm),
        "graph replay must be byte-identical to the eager capture run"
    );

    // The stats op surfaces both the per-tier device cache and the
    // captured-graph cache accounting.
    let stats = session.handle_line("{\"op\":\"stats\"}").0;
    let v = omp_json::parse(&result_payload(&stats)).unwrap();
    let graphs = v.get("cache").and_then(|c| c.get("graphs")).unwrap();
    assert_eq!(graphs.get("hits").and_then(Value::as_u64), Some(1));
    assert_eq!(graphs.get("misses").and_then(Value::as_u64), Some(1));
    assert_eq!(v.get("graph_entries").and_then(Value::as_u64), Some(1));
    assert!(v.get("cache").and_then(|c| c.get("device")).is_some());

    // Single-kernel sources never touch the graph cache.
    let escaped = omp_json::escape(SRC);
    let single = format!(
        "{{\"op\":\"run\",\"source\":\"{escaped}\",\"name\":\"blend\",\
         \"config\":\"dev\"}}"
    );
    let resp = session.handle_line(&single).0;
    assert_eq!(tier_hits(&resp, "graphs") + tier_misses(&resp, "graphs"), 0);
}

#[test]
fn fingerprints_are_pairwise_distinct() {
    // Every pair of configurations differs in at least one frontend or
    // optimizer field, so every pair of fingerprints must differ —
    // aliasing two configs to one optimized-cache entry would serve one
    // config's artifacts for the other.
    for a in BuildConfig::ALL {
        for b in BuildConfig::ALL {
            if a != b {
                assert_ne!(
                    a.fingerprint(),
                    b.fingerprint(),
                    "configs {:?} and {:?} share a cache fingerprint",
                    a,
                    b
                );
            }
        }
    }
}

#[test]
fn cli_names_round_trip() {
    for config in BuildConfig::ALL {
        assert_eq!(
            BuildConfig::from_cli_name(config.cli_name()),
            Some(config),
            "cli name {:?} does not round-trip",
            config.cli_name()
        );
    }
    assert_eq!(BuildConfig::from_cli_name("nope"), None);
}
