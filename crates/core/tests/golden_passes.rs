//! Golden IR tests for the classic mid-end passes (inliner, GVN, LICM)
//! on small hand-built fixtures.
//!
//! Each test builds a module exercising one pass's signature
//! transformation, runs just that pass, and compares the printed IR
//! against a checked-in golden file, then re-parses and re-prints the
//! output to keep the parse→print fixpoint honest (the same contract as
//! the whole-proxy goldens in `golden_ir.rs`).
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! OMP_UPDATE_GOLDEN=1 cargo test -p omp-gpu --test golden_passes
//! ```

use omp_ir::{BinOp, Builder, CmpOp, Function, Module, Type, Value};
use omp_passes::{AnalysisCache, InlineOptions};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_golden(name: &str, text: &str) {
    let path = golden_dir().join(format!("{name}.ir"));
    if std::env::var_os("OMP_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with OMP_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        golden, text,
        "{name}: IR drifted from golden file; if intentional, regenerate with OMP_UPDATE_GOLDEN=1"
    );
}

fn roundtrip(name: &str, m: &Module) {
    omp_ir::verifier::assert_valid(m);
    let printed = omp_ir::printer::print_module(m);
    check_golden(name, &printed);
    let reparsed = omp_ir::parser::parse_module(&printed)
        .unwrap_or_else(|e| panic!("{name}: printer output does not parse: {e}"));
    let reprinted = omp_ir::printer::print_module(&reparsed);
    assert_eq!(
        printed, reprinted,
        "{name}: print→parse→print is not a fixpoint"
    );
}

/// A small helper callee with an alloca and two return paths, called
/// from a loop: inlining must hoist the cloned alloca to the caller
/// entry, merge the returns through a phi, and delete the call.
#[test]
fn inline_merges_callee_into_caller() {
    let mut m = Module::new("pass_inline");
    let callee = m.add_function(Function::definition(
        "clamp_scaled",
        vec![Type::I64],
        Type::I64,
    ));
    {
        let mut b = Builder::at_entry(&mut m, callee);
        let p = b.alloca(8, 8);
        b.store(Value::Arg(0), p);
        let v = b.load(Type::I64, p);
        let s = b.bin(BinOp::Mul, Type::I64, v, Value::i64(3));
        let c = b.cmp(CmpOp::Slt, Type::I64, s, Value::i64(100));
        let small = b.new_block();
        let big = b.new_block();
        b.cond_br(c, small, big);
        b.switch_to(small);
        b.ret(Some(s));
        b.switch_to(big);
        b.ret(Some(Value::i64(100)));
    }
    let caller = m.add_function(Function::definition("sum", vec![Type::I64], Type::I64));
    {
        let mut b = Builder::at_entry(&mut m, caller);
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let iv = b.phi(Type::I64);
        let acc = b.phi(Type::I64);
        let c = b.cmp(CmpOp::Slt, Type::I64, iv, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let r = b.call(callee, vec![iv]);
        let acc2 = b.bin(BinOp::Add, Type::I64, acc, r);
        let iv2 = b.bin(BinOp::Add, Type::I64, iv, Value::i64(1));
        b.br(header);
        b.add_phi_incoming(iv, entry, Value::i64(0));
        b.add_phi_incoming(iv, body, iv2);
        b.add_phi_incoming(acc, entry, Value::i64(0));
        b.add_phi_incoming(acc, body, acc2);
        b.switch_to(exit);
        b.ret(Some(acc));
    }
    let mut cache = AnalysisCache::new();
    let decisions = omp_passes::inline::run(&mut m, &mut cache, &InlineOptions::pre_openmp_opt());
    assert!(decisions.iter().any(|d| d.inlined));
    roundtrip("pass_inline", &m);
}

/// The argument-struct pattern SPMD inlining produces: fields stored
/// into one alloca and reloaded (same block and across a dominating
/// edge). GVN must forward every load and delete the dead stores.
#[test]
fn gvn_forwards_struct_fields_and_kills_dead_stores() {
    let mut m = Module::new("pass_gvn");
    let f = m.add_function(Function::definition(
        "kernel_body",
        vec![Type::I64, Type::I64, Type::F64],
        Type::F64,
    ));
    let mut b = Builder::at_entry(&mut m, f);
    let s = b.alloca(24, 8);
    b.store(Value::Arg(0), s);
    let f1 = b.gep(s, Value::i64(1), 8, 0);
    b.store(Value::Arg(1), f1);
    let f2 = b.gep(s, Value::i64(2), 8, 0);
    b.store(Value::Arg(2), f2);
    let v0 = b.load(Type::I64, s);
    let v1 = b.load(Type::I64, f1);
    let next = b.new_block();
    b.br(next);
    b.switch_to(next);
    // Cross-block reload: the stores all live in the (dominating) entry.
    let v2 = b.load(Type::F64, f2);
    let t0 = b.bin(BinOp::Add, Type::I64, v0, v1);
    let t1 = b.cast(omp_ir::CastOp::SiToFp, t0, Type::F64);
    let t2 = b.bin(BinOp::FAdd, Type::F64, t1, v2);
    b.ret(Some(t2));
    let mut cache = AnalysisCache::new();
    let stats = omp_passes::gvn::run(&mut m, &mut cache);
    assert_eq!(stats[0].loads_forwarded, 3);
    assert_eq!(stats[0].dead_stores, 3);
    roundtrip("pass_gvn", &m);
}

/// An inner-loop body recomputing a loop-invariant product and
/// reloading a loop-invariant private slot: LICM must move both to a
/// preheader.
#[test]
fn licm_hoists_invariants_to_a_preheader() {
    let mut m = Module::new("pass_licm");
    let f = m.add_function(Function::definition(
        "scale_sum",
        vec![Type::I64, Type::I64, Type::F64],
        Type::F64,
    ));
    let mut b = Builder::at_entry(&mut m, f);
    let entry = b.current_block();
    let p = b.alloca(8, 8);
    b.store(Value::Arg(2), p);
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let iv = b.phi(Type::I64);
    let acc = b.phi(Type::F64);
    let c = b.cmp(CmpOp::Slt, Type::I64, iv, Value::Arg(0));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    // Invariant: arg1 * 8 and the load of the private slot.
    let inv = b.bin(BinOp::Mul, Type::I64, Value::Arg(1), Value::i64(8));
    let w = b.load(Type::F64, p);
    let ivf = b.cast(omp_ir::CastOp::SiToFp, iv, Type::F64);
    let invf = b.cast(omp_ir::CastOp::SiToFp, inv, Type::F64);
    let t0 = b.bin(BinOp::FMul, Type::F64, ivf, invf);
    let t1 = b.bin(BinOp::FMul, Type::F64, t0, w);
    let acc2 = b.bin(BinOp::FAdd, Type::F64, acc, t1);
    let iv2 = b.bin(BinOp::Add, Type::I64, iv, Value::i64(1));
    b.br(header);
    b.add_phi_incoming(iv, entry, Value::i64(0));
    b.add_phi_incoming(iv, body, iv2);
    b.add_phi_incoming(acc, entry, Value::f64(0.0));
    b.add_phi_incoming(acc, body, acc2);
    b.switch_to(exit);
    b.ret(Some(acc));
    let mut cache = AnalysisCache::new();
    let stats = omp_passes::licm::run(&mut m, &mut cache);
    assert!(stats[0].hoisted >= 3, "hoisted {}", stats[0].hoisted);
    roundtrip("pass_licm", &m);
}
