//! Parallel-scheduler determinism: running independent teams across
//! host worker threads must be unobservable. For every proxy benchmark,
//! a launch with `--jobs 4` must produce bit-identical outputs and
//! identical statistics (including per-team cycles) to `--jobs 1`.

use omp_benchmarks::{all_proxies, ProxyApp, Scale};
use omp_gpu::{pipeline, BuildConfig, Device, StatsSnapshot};

fn run_with_jobs(
    app: &dyn ProxyApp,
    config: BuildConfig,
    jobs: u32,
) -> (Vec<u64>, Vec<u64>, StatsSnapshot) {
    let (module, _) = pipeline::build(&app.openmp_source(), config).expect("build");
    let mut dev = Device::new(&module, app.device_config()).expect("device");
    dev.set_jobs(jobs);
    let workload = app.prepare(&mut dev).expect("prepare");
    let stats = dev
        .launch(app.kernel_name(), &workload.args, app.dims())
        .expect("launch");
    let out = dev
        .read_f64(workload.out_buf, workload.out_len)
        .expect("readback");
    (
        out.iter().map(|v| v.to_bits()).collect(),
        stats.team_cycles.clone(),
        stats.snapshot(),
    )
}

#[test]
fn parallel_execution_is_bit_identical_to_sequential() {
    for app in all_proxies(Scale::Small) {
        for config in [BuildConfig::NoOpenmpOpt, BuildConfig::LlvmDev] {
            let (bits1, teams1, snap1) = run_with_jobs(app.as_ref(), config, 1);
            let (bits4, teams4, snap4) = run_with_jobs(app.as_ref(), config, 4);
            assert_eq!(
                bits1,
                bits4,
                "{} under {}: outputs differ between --jobs 1 and --jobs 4",
                app.name(),
                config.label()
            );
            assert_eq!(
                teams1,
                teams4,
                "{} under {}: per-team cycles differ between --jobs 1 and --jobs 4",
                app.name(),
                config.label()
            );
            assert_eq!(
                snap1,
                snap4,
                "{} under {}: statistics differ between --jobs 1 and --jobs 4",
                app.name(),
                config.label()
            );
        }
    }
}

#[test]
fn jobs_auto_detect_matches_sequential() {
    let apps = all_proxies(Scale::Small);
    let app = apps.first().expect("proxies").as_ref();
    let (bits1, teams1, snap1) = run_with_jobs(app, BuildConfig::LlvmDev, 1);
    let (bits0, teams0, snap0) = run_with_jobs(app, BuildConfig::LlvmDev, 0);
    assert_eq!(bits1, bits0);
    assert_eq!(teams1, teams0);
    assert_eq!(snap1, snap0);
}
