//! Golden printer→parser round-trip tests over real compiler output.
//!
//! For each proxy benchmark the frontend IR (both globalization
//! schemes) and the fully optimized IR are printed, compared against a
//! checked-in golden file, parsed back, and re-printed — asserting that
//! (a) the textual IR is stable and reviewable in diffs, and (b) the
//! parser accepts everything the printer emits, byte-for-byte
//! (`parse(print(m))` prints identically).
//!
//! To regenerate after an intentional IR change:
//!
//! ```text
//! OMP_UPDATE_GOLDEN=1 cargo test -p omp-gpu --test golden_ir
//! ```

use omp_gpu::{all_proxies, pipeline, BuildConfig, Scale};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_golden(name: &str, text: &str) {
    let path = golden_dir().join(format!("{name}.ir"));
    if std::env::var_os("OMP_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with OMP_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if golden != text {
        // Locate the first differing line for an actionable message.
        let (mut line, mut a, mut b) = (0, "", "");
        for (i, (g, t)) in golden.lines().zip(text.lines()).enumerate() {
            if g != t {
                (line, a, b) = (i + 1, g, t);
                break;
            }
        }
        panic!(
            "{name}: IR drifted from golden file (first diff at line {line}:\n\
             golden: {a}\n\
             actual: {b}\n\
             ); if intentional, regenerate with OMP_UPDATE_GOLDEN=1"
        );
    }
}

fn roundtrip(name: &str, m: &omp_gpu::Module) {
    let printed = omp_ir::printer::print_module(m);
    check_golden(name, &printed);
    let reparsed = omp_ir::parser::parse_module(&printed)
        .unwrap_or_else(|e| panic!("{name}: printer output does not parse: {e}"));
    omp_ir::verifier::assert_valid(&reparsed);
    let reprinted = omp_ir::printer::print_module(&reparsed);
    assert_eq!(
        printed, reprinted,
        "{name}: print→parse→print is not a fixpoint"
    );
}

#[test]
fn proxy_frontend_ir_roundtrips_simplified_scheme() {
    for app in all_proxies(Scale::Small) {
        let (m, _) = pipeline::build(&app.openmp_source(), BuildConfig::NoOpenmpOpt)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        roundtrip(&format!("{}_frontend", app.name().to_lowercase()), &m);
    }
}

#[test]
fn proxy_frontend_ir_roundtrips_legacy_scheme() {
    for app in all_proxies(Scale::Small) {
        let (m, _) = pipeline::build(&app.openmp_source(), BuildConfig::Llvm12Baseline)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        roundtrip(&format!("{}_legacy", app.name().to_lowercase()), &m);
    }
}

#[test]
fn proxy_optimized_ir_roundtrips() {
    for app in all_proxies(Scale::Small) {
        let (m, _) = pipeline::build(&app.openmp_source(), BuildConfig::LlvmDev)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        roundtrip(&format!("{}_dev", app.name().to_lowercase()), &m);
    }
}
