//! Profiles must be bit-identical regardless of host parallelism, and
//! profiling must not perturb the unprofiled pipeline.

use omp_gpu::{all_proxies, pipeline, BuildConfig, Scale, Tier};

#[test]
fn proxy_profile_is_bit_identical_across_jobs() {
    let proxies = all_proxies(Scale::Small);
    let app = proxies
        .iter()
        .find(|p| p.name() == "SU3Bench")
        .expect("SU3Bench proxy");
    let one = pipeline::profile_proxy(app.as_ref(), BuildConfig::LlvmDev, Some(1));
    let four = pipeline::profile_proxy(app.as_ref(), BuildConfig::LlvmDev, Some(4));
    assert_eq!(one.outcome.error, None);
    assert_eq!(four.outcome.error, None);
    let (p1, p4) = (one.profile.unwrap(), four.profile.unwrap());
    assert_eq!(p1, p4, "profile must not depend on --jobs");
    assert_eq!(p1.to_json(), p4.to_json());
    assert_eq!(p1.chrome_trace(), p4.chrome_trace());
    assert_eq!(
        one.outcome.stats.as_ref().map(|s| s.snapshot()),
        four.outcome.stats.as_ref().map(|s| s.snapshot())
    );
}

#[test]
fn profiling_does_not_perturb_stats() {
    let proxies = all_proxies(Scale::Small);
    let app = proxies
        .iter()
        .find(|p| p.name() == "SU3Bench")
        .expect("SU3Bench proxy");
    let plain = pipeline::run_proxy(app.as_ref(), BuildConfig::LlvmDev);
    let profiled = pipeline::profile_proxy(app.as_ref(), BuildConfig::LlvmDev, None);
    let plain_snap = plain.snapshot();
    let prof_snap = profiled.outcome.stats.as_ref().map(|s| s.snapshot());
    assert_eq!(plain_snap.as_ref().map(|s| s.tier), Some(Tier::Compiled));
    assert_eq!(
        prof_snap.as_ref().map(|s| s.tier),
        Some(Tier::Interp),
        "profiling must force the interpreter tier"
    );
    // The tier tag and the superinstruction hit counters are informational
    // tier-selection artifacts (the interpreter tier executes no compiled
    // steps, so its counters are zero by construction); every simulated
    // counter must be identical.
    let plain_snap = plain_snap.map(|mut s| {
        s.tier = Tier::Interp;
        s.superinstructions = [0; 4];
        s
    });
    assert_eq!(
        plain_snap, prof_snap,
        "profiling on vs off must produce identical statistics"
    );
}

#[test]
fn pass_timings_and_remarks_are_recorded_deterministically() {
    let src = r#"
void scale(double* a, double f, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { a[i] = a[i] * f; }
}
"#;
    let (_, r1) = pipeline::build(src, BuildConfig::LlvmDev).unwrap();
    let (_, r2) = pipeline::build(src, BuildConfig::LlvmDev).unwrap();
    let (r1, r2) = (r1.unwrap(), r2.unwrap());
    assert!(!r1.pass_timings.is_empty(), "mid-end stages must be timed");
    for t in &r1.pass_timings {
        assert!(t.runs > 0);
    }
    for stage in ["early-inline", "openmp-opt", "cleanup"] {
        assert!(
            r1.pass_timings.iter().any(|t| t.pass == stage),
            "missing stage {stage}"
        );
    }
    // Wall time varies run to run; everything else — including the
    // OMP230 remark stream — must not.
    let strip = |r: &omp_gpu::OptReport| {
        r.pass_timings
            .iter()
            .map(|t| {
                (
                    t.pass.clone(),
                    t.runs,
                    t.insts_before,
                    t.insts_after,
                    t.blocks_before,
                    t.blocks_after,
                    t.funcs_before,
                    t.funcs_after,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&r1), strip(&r2));
    assert_eq!(
        r1.remarks.to_json_lines(),
        r2.remarks.to_json_lines(),
        "remark streams (incl. OMP230) must be deterministic"
    );
    let timing_remarks = r1.remarks.with_id(omp_opt::remarks::ids::PASS_TIMING);
    assert_eq!(timing_remarks.len(), r1.pass_timings.len());
    // The rendered table is the only place wall time appears.
    let table = pipeline::render_pass_timings(&r1.pass_timings);
    assert!(table.contains("early-inline"));
    assert!(table.contains("total mid-end wall time"));
}
