//! Chaos soak: concurrent clients mixing valid requests, malformed
//! frames, oversized frames, mid-request disconnects, injected faults
//! (error and panic mode), and deadline expiries against a live daemon
//! with a tiny admission queue. The daemon must answer every frame with
//! a valid envelope, never hang or die, and every successful `run`
//! result — cold, warm, any interleaving, any `jobs` value — must be
//! byte-identical. Afterwards the daemon still answers clean `stats` /
//! `metrics` / `shutdown`.

use omp_gpu::serve::{serve_unix, Session, EXIT_OK, MAX_FRAME_BYTES, SCHEMA};
use omp_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

const SRC: &str = r#"
// oracle-kernel: scale
// oracle-teams: 2
// oracle-threads: 8
// oracle-arg: buf f64 32 iota
// oracle-arg: f64 3.0
// oracle-arg: i64 32
void scale(double* a, double f, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { a[i] = a[i] * f; }
}
"#;

fn socket_path() -> PathBuf {
    std::env::temp_dir().join(format!("ompgpu_chaos_{}.sock", std::process::id()))
}

fn connect(socket: &PathBuf) -> UnixStream {
    for _ in 0..100 {
        if let Ok(s) = UnixStream::connect(socket) {
            return s;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    panic!("daemon did not come up on {}", socket.display());
}

/// Sends one frame and returns the parsed reply after validating the
/// envelope invariants every response must satisfy. Under pressure the
/// tiny admission queue may shed ANY frame; a shed must be a structured
/// overload reply carrying a retry hint, and the retried frame must
/// eventually get its real answer — so shedding is handled here, once.
fn roundtrip(reader: &mut BufReader<UnixStream>, writer: &mut UnixStream, frame: &str) -> Value {
    loop {
        writer
            .write_all(frame.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .expect("send");
        let mut resp = String::new();
        let n = reader.read_line(&mut resp).expect("read reply");
        assert!(n > 0, "daemon closed the connection mid-protocol");
        let v = omp_json::parse(resp.trim_end())
            .unwrap_or_else(|e| panic!("invalid reply JSON ({e}): {resp}"));
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
        let exit = v
            .get("exit_code")
            .and_then(Value::as_u64)
            .expect("exit_code");
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(exit == EXIT_OK as u64)
        );
        if exit != 8 {
            return v;
        }
        let wait = v
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Value::as_u64)
            .expect("shed replies carry a retry hint");
        std::thread::sleep(std::time::Duration::from_millis(wait));
    }
}

/// One chaos client: mixed good/bad/fault-injected traffic. Returns the
/// serialized `result` of every successful run response it saw.
fn chaos_client(socket: PathBuf, jobs: u32, rounds: usize) -> Vec<String> {
    let stream = connect(&socket);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let run_line = format!("{{\"op\":\"run\",\"source\":{SRC:?},\"jobs\":{jobs},\"dump\":4}}");
    let mut results = Vec::new();
    for round in 0..rounds {
        // Valid run.
        let v = roundtrip(&mut reader, &mut writer, &run_line);
        assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(0));
        results.push(v.get("result").expect("run result").to_json());
        // Malformed frame.
        let v = roundtrip(&mut reader, &mut writer, "{\"op\":chaos");
        assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(2));
        // Unknown op.
        let v = roundtrip(&mut reader, &mut writer, "{\"op\":\"warp\"}");
        assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(2));
        // Deadline already expired when admitted.
        let v = roundtrip(
            &mut reader,
            &mut writer,
            &format!("{{\"op\":\"run\",\"source\":{SRC:?},\"deadline_ms\":0}}"),
        );
        assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(7));
        // Injected stage fault (error mode) — degrades to a build error.
        let v = roundtrip(
            &mut reader,
            &mut writer,
            &format!(
                "{{\"op\":\"compile\",\"source\":{SRC:?},\"fault\":{{\"stage\":\"optimize\"}}}}"
            ),
        );
        assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(1));
        // Injected panic — isolated into exit code 9.
        if round == 0 {
            let v = roundtrip(
                &mut reader,
                &mut writer,
                &format!(
                    "{{\"op\":\"compile\",\"source\":{SRC:?},\
                     \"fault\":{{\"stage\":\"frontend\",\"mode\":\"panic\"}}}}"
                ),
            );
            assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(9));
        }
    }
    results
}

#[test]
fn chaos_soak_survives_and_stays_deterministic() {
    let socket = socket_path();
    let _ = std::fs::remove_file(&socket);
    let mut session = Session::new(2);
    session.set_queue_capacity(4);
    session.set_default_deadline_ms(60_000);
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || serve_unix(&socket, session))
    };
    // Wait for the daemon, then unleash 4 chaos clients with different
    // jobs values (byte-identity must hold across them).
    drop(connect(&socket));
    let clients: Vec<_> = [0u32, 1, 2, 4]
        .into_iter()
        .map(|jobs| {
            let socket = socket.clone();
            std::thread::spawn(move || chaos_client(socket, jobs, 3))
        })
        .collect();
    // One client sends an oversized frame and one disconnects
    // mid-request; neither may destabilize the daemon.
    {
        let stream = connect(&socket);
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let huge = format!(
            "{{\"op\":\"ping\",\"pad\":\"{}\"}}",
            "z".repeat(MAX_FRAME_BYTES)
        );
        let v = roundtrip(&mut reader, &mut writer, &huge);
        assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(2));
        assert!(v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap()
            .starts_with("frame too large:"));
        let v = roundtrip(&mut reader, &mut writer, "{\"op\":\"ping\"}");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    }
    {
        let mut half = connect(&socket);
        half.write_all(b"{\"op\":\"run\",\"source\":\"void")
            .expect("partial write");
        drop(half); // mid-request disconnect
    }
    let mut all_results: Vec<String> = Vec::new();
    for c in clients {
        all_results.extend(c.join().expect("chaos client must not panic"));
    }
    // Every successful run result across every client, jobs value, and
    // warm/cold state is byte-identical.
    assert!(all_results.len() >= 12);
    for r in &all_results {
        assert_eq!(r, &all_results[0], "run results diverged under chaos");
    }
    // Post-chaos: a fresh (cold) session must agree byte-for-byte with
    // the daemon's post-chaos warm answer.
    let mut cold = Session::default();
    let run_line = format!("{{\"op\":\"run\",\"source\":{SRC:?},\"jobs\":0,\"dump\":4}}");
    let (cold_resp, _) = cold.handle_line(&run_line);
    let cold_result = omp_json::parse(&cold_resp)
        .unwrap()
        .get("result")
        .expect("cold run result")
        .to_json();
    assert_eq!(cold_result, all_results[0], "warm diverged from cold");
    // Clean stats / metrics / shutdown.
    let stream = connect(&socket);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let stats = roundtrip(&mut reader, &mut writer, "{\"op\":\"stats\"}");
    let result = stats.get("result").expect("stats result");
    assert!(result.get("panics").and_then(Value::as_u64).unwrap() >= 4);
    assert!(result.get("timeouts").and_then(Value::as_u64).unwrap() >= 12);
    assert!(result.get("requests").and_then(Value::as_u64).unwrap() >= 60);
    let metrics = roundtrip(&mut reader, &mut writer, "{\"op\":\"metrics\"}");
    let prom = metrics
        .get("result")
        .and_then(|r| r.get("prometheus"))
        .and_then(Value::as_str)
        .expect("prometheus text");
    assert!(prom.contains("serve_panic"));
    assert!(prom.contains("serve_timeout"));
    assert!(prom.contains("serve_shed"));
    let bye = roundtrip(&mut reader, &mut writer, "{\"op\":\"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    server
        .join()
        .expect("server thread")
        .expect("serve_unix exits cleanly");
    assert!(!socket.exists(), "socket removed on shutdown");
}
