//! Seeded-bug fixtures for the device sanitizer
//! (`tests/fixtures/sanitize/`): each known bug must yield exactly the
//! expected finding kind with correct provenance, and its fixed variant
//! must be clean — under the unoptimized baseline *and* the fully
//! optimized pipeline (the optimizer must neither mask a real bug nor
//! fabricate one).

use omp_gpu::pipeline::{sanitize_source, SanitizeOptions, SanitizeOutcome};
use omp_gpu::{BuildConfig, FaultPlan, FindingKind, Severity};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/sanitize")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn sanitize(name: &str, config: BuildConfig) -> SanitizeOutcome {
    let out = sanitize_source(&fixture(name), config, &SanitizeOptions::default());
    assert!(
        out.setup_error.is_none(),
        "{name} failed to build under {}: {:?}",
        config.label(),
        out.setup_error
    );
    assert!(
        out.error.is_none(),
        "{name} failed to run under {}: {}",
        config.label(),
        out.error.as_ref().unwrap()
    );
    out
}

const BOTH_ENDS: [BuildConfig; 2] = [BuildConfig::Llvm12Baseline, BuildConfig::LlvmDev];

#[test]
fn seeded_race_is_reported_with_provenance() {
    for config in BOTH_ENDS {
        let out = sanitize("race.c", config);
        let races: Vec<_> = out
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::DataRace)
            .collect();
        assert!(!races.is_empty(), "no data-race under {}", config.label());
        for f in races {
            assert_eq!(f.severity, Severity::Error);
            assert!(
                f.function.contains("race"),
                "provenance names the wrong function: {}",
                f.function
            );
            assert_eq!(f.team, 0);
            assert!(
                f.message.contains("write"),
                "race message names the conflicting access: {}",
                f.message
            );
        }
        assert!(!out.is_clean());
    }
}

#[test]
fn seeded_race_fixed_variant_is_clean() {
    for config in BOTH_ENDS {
        let out = sanitize("race_fixed.c", config);
        assert!(
            out.is_clean(),
            "false positive under {}: {:?}",
            config.label(),
            out.findings
        );
    }
}

#[test]
fn missing_barrier_is_a_data_race_and_barrier_fixes_it() {
    for config in BOTH_ENDS {
        let bad = sanitize("missing_barrier.c", config);
        assert!(
            bad.findings
                .iter()
                .any(|f| f.kind == FindingKind::DataRace && f.function.contains("prodcons")),
            "missing barrier not reported under {}: {:?}",
            config.label(),
            bad.findings
        );
        let good = sanitize("missing_barrier_fixed.c", config);
        assert!(
            good.is_clean(),
            "barrier-ordered accesses misreported under {}: {:?}",
            config.label(),
            good.findings
        );
    }
}

#[test]
fn divergent_barrier_sites_are_reported() {
    for config in BOTH_ENDS {
        let bad = sanitize("divergent_barrier.c", config);
        let divs: Vec<_> = bad
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::BarrierDivergence)
            .collect();
        assert!(
            !divs.is_empty(),
            "no barrier-divergence under {}: {:?}",
            config.label(),
            bad.findings
        );
        for f in divs {
            assert_eq!(f.severity, Severity::Error);
            assert!(f.function.contains("divb"));
        }
        let good = sanitize("divergent_barrier_fixed.c", config);
        assert!(
            good.is_clean(),
            "convergent barrier misreported under {}: {:?}",
            config.label(),
            good.findings
        );
    }
}

#[test]
fn capped_shared_stack_degrades_to_heap_fallback_notes() {
    // The seeded degradation needs runtime globalization, so pin the
    // unoptimized baseline (the mid-end promotes the allocation away
    // under the full pipeline — which is the point of the paper).
    let opts = SanitizeOptions {
        fault: FaultPlan {
            shared_stack_limit: Some(0),
            ..FaultPlan::default()
        },
        ..SanitizeOptions::default()
    };
    let out = sanitize_source(
        &fixture("stack_overflow.c"),
        BuildConfig::NoOpenmpOpt,
        &opts,
    );
    assert!(out.setup_error.is_none(), "{:?}", out.setup_error);
    assert!(
        out.error.is_none(),
        "fallback must not fail the run: {}",
        out.error.as_ref().unwrap()
    );
    let notes: Vec<_> = out
        .findings
        .iter()
        .filter(|f| f.kind == FindingKind::SharedStackFallback)
        .collect();
    assert!(!notes.is_empty(), "no fallback note: {:?}", out.findings);
    for f in &notes {
        assert_eq!(
            f.severity,
            Severity::Note,
            "fallback is a note, not an error"
        );
    }
    // Notes do not make the run unclean.
    assert!(out.is_clean());
    // Without the cap the same kernel allocates from shared and stays
    // silent.
    let calm = sanitize("stack_overflow.c", BuildConfig::NoOpenmpOpt);
    assert!(
        calm.is_clean() && calm.findings.is_empty(),
        "{:?}",
        calm.findings
    );
}

#[test]
fn seeded_cross_kernel_race_is_reported_and_depend_edges_fix_it() {
    for config in BOTH_ENDS {
        let bad = sanitize("cross_kernel_race.c", config);
        let races: Vec<_> = bad
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::CrossKernelRace)
            .collect();
        assert_eq!(
            races.len(),
            1,
            "exactly one unordered pair under {}: {:?}",
            config.label(),
            bad.findings
        );
        let f = races[0];
        assert_eq!(f.severity, Severity::Error);
        assert!(
            f.function.contains("__omp_offloading_xrace"),
            "provenance names the later node: {}",
            f.function
        );
        assert!(
            f.message.contains("depend") && f.message.contains("write-write"),
            "message explains the missing edge: {}",
            f.message
        );
        assert!(!bad.is_clean());
        let good = sanitize("cross_kernel_race_fixed.c", config);
        assert!(
            good.is_clean(),
            "depend-ordered kernels misreported under {}: {:?}",
            config.label(),
            good.findings
        );
    }
}

#[test]
fn findings_are_identical_across_worker_thread_counts() {
    for jobs in [1u32, 4] {
        let opts = SanitizeOptions {
            jobs: Some(jobs),
            ..SanitizeOptions::default()
        };
        let out = sanitize_source(&fixture("race.c"), BuildConfig::LlvmDev, &opts);
        let baseline = sanitize_source(
            &fixture("race.c"),
            BuildConfig::LlvmDev,
            &SanitizeOptions::default(),
        );
        assert_eq!(
            out.findings, baseline.findings,
            "findings differ at --jobs {jobs}"
        );
    }
}
