//! Prints the full build-configuration x proxy-application matrix:
//! cycles, relative speedup, registers, shared memory, and the
//! optimizer's per-configuration counts. Pass `bench` for the larger
//! workloads.
//!
//! Run with: `cargo run --release -p omp-gpu --example config_matrix [bench]`

use omp_gpu::{all_proxies, pipeline, Scale};
fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("bench") => Scale::Bench,
        _ => Scale::Small,
    };
    for app in all_proxies(scale) {
        println!("== {} ==", app.name());
        let outcomes = pipeline::run_all_configs(app.as_ref());
        let base = outcomes[0].cycles();
        for o in &outcomes {
            match (&o.stats, &o.error) {
                (Some(s), _) => {
                    let rel = base.map(|b| b as f64 / s.cycles as f64).unwrap_or(0.0);
                    println!(
                        "  {:44} {:>10} cyc  {:>6.2}x  regs={:<3} smem={:<6} heap={}",
                        format!("{:?}", o.config),
                        s.cycles,
                        rel,
                        s.registers,
                        s.shared_mem_bytes,
                        s.heap_bytes
                    );
                }
                (None, Some(e)) => println!("  {:44} FAILED: {e}", format!("{:?}", o.config)),
                _ => unreachable!(),
            }
            if let Some(r) = &o.report {
                let c = r.counts;
                println!(
                    "      h2s={} h2shared={} spmd={} csm=({}) {} EM={} PL={} LP={} remarks={}",
                    c.heap_to_stack,
                    c.heap_to_shared,
                    c.spmdized,
                    c.csm_possible,
                    c.csm_rewritten,
                    c.folds_exec_mode,
                    c.folds_parallel_level,
                    c.folds_launch_params,
                    r.remarks.len()
                );
            }
        }
    }
}
