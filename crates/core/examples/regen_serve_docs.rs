//! Regenerates the response examples in `docs/SERVE.md` from a live
//! session, keeping the byte-replay test `serve_docs.rs` green.
//!
//! Walks the fenced ```json blocks in document order: request examples
//! (an `"op"` member, no `"schema"`) are replayed through a real
//! executor; response examples (`"schema": "ompgpu-serve/v1"`) are
//! rewritten with a pretty-printed rendering of the actual wire bytes
//! for the same `id`.
//!
//! Usage: cargo run -p omp-gpu --example regen_serve_docs

use omp_gpu::serve::{spawn_executor, Session, SCHEMA};
use omp_json::Value;
use std::collections::HashMap;

fn pretty_into(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(s) => out.push_str(s),
        Value::String(s) => {
            out.push('"');
            out.push_str(&omp_json::escape(s));
            out.push('"');
        }
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                pretty_into(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(members) if members.is_empty() => out.push_str("{}"),
        Value::Object(members) => {
            out.push_str("{\n");
            for (i, (k, mv)) in members.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                out.push('"');
                out.push_str(&omp_json::escape(k));
                out.push_str("\": ");
                pretty_into(out, mv, indent + 1);
                if i + 1 < members.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVE.md");
    let text = std::fs::read_to_string(path).expect("docs/SERVE.md exists");

    let (handle, executor) = spawn_executor(Session::default());
    let mut actual_by_id: HashMap<u64, String> = HashMap::new();

    let mut out: Vec<String> = Vec::new();
    let mut block: Option<Vec<String>> = None;
    let mut rewritten = 0usize;
    for line in text.lines() {
        match &mut block {
            None => {
                out.push(line.to_string());
                if line.trim() == "```json" {
                    block = Some(Vec::new());
                }
            }
            Some(buf) => {
                if line.trim() == "```" {
                    let body = buf.join("\n");
                    let v = omp_json::parse(&body).expect("doc json block parses");
                    if v.get("schema").and_then(Value::as_str) == Some(SCHEMA) {
                        let id = v
                            .get("id")
                            .and_then(Value::as_u64)
                            .expect("response example has a numeric id");
                        let actual = actual_by_id
                            .get(&id)
                            .unwrap_or_else(|| panic!("no request replayed for id {id}"));
                        let parsed = omp_json::parse(actual).expect("wire response parses");
                        let mut pretty = String::new();
                        pretty_into(&mut pretty, &parsed, 0);
                        out.extend(pretty.lines().map(str::to_string));
                        rewritten += 1;
                    } else {
                        if let Some(op) = v.get("op").and_then(Value::as_str) {
                            let response = handle.request(&v.to_json());
                            if let Some(id) = v.get("id").and_then(Value::as_u64) {
                                actual_by_id.insert(id, response);
                            }
                            eprintln!("replayed op {op:?}");
                        }
                        out.extend(buf.iter().cloned());
                    }
                    out.push(line.to_string());
                    block = None;
                } else {
                    buf.push(line.to_string());
                }
            }
        }
    }
    assert!(block.is_none(), "unterminated json fence");

    drop(handle);
    let _ = executor.join();

    let mut joined = out.join("\n");
    joined.push('\n');
    std::fs::write(path, joined).expect("write SERVE.md");
    eprintln!("rewrote {rewritten} response examples in {path}");
}
