//! # omp-gpu
//!
//! The facade crate of the reproduction of *"Efficient Execution of
//! OpenMP on GPUs"* (CGO 2022): compile the mini-C OpenMP dialect,
//! run the paper's OpenMP-aware optimizations, and execute the result
//! on the GPU simulator.
//!
//! * [`BuildConfig`] — the build configurations of the paper's
//!   Figure 11 legends (LLVM 12 baseline, "No OpenMP Optimization",
//!   `h2s²`, `+RTCspec`, `+CSM`, the full LLVM Dev pipeline, and the
//!   CUDA-style watermark);
//! * [`pipeline::build`] — source → optimized module under a
//!   configuration;
//! * [`pipeline::run_proxy`] / [`pipeline::run_all_configs`] — build,
//!   launch, and verify one of the four proxy applications;
//! * [`oracle`] — the differential-execution oracle: every subject runs
//!   under the full ablation matrix and must produce bit-identical
//!   outputs with monotone resource statistics (`ompgpu verify`).
//!
//! ```
//! use omp_gpu::{pipeline, BuildConfig};
//!
//! let src = r#"
//! void scale(double* a, double f, long n) {
//!   #pragma omp target teams distribute parallel for
//!   for (long i = 0; i < n; i++) { a[i] = a[i] * f; }
//! }
//! "#;
//! let (module, _report) = pipeline::build(src, BuildConfig::LlvmDev).unwrap();
//! assert_eq!(module.kernels.len(), 1);
//! ```

pub mod config;
pub mod oracle;
pub mod pipeline;
pub mod serve;

pub use config::BuildConfig;
pub use omp_benchmarks::{all_proxies, ProxyApp, Scale};
pub use omp_frontend::{compile, FrontendOptions, GlobalizationScheme};
pub use omp_gpusim::{
    findings_to_json, Device, DeviceConfig, FaultPlan, Finding, FindingKind, KernelStats,
    LaunchDims, LaunchProfile, ProfileMode, Provenance, RtVal, SanitizeMode, Severity, SimError,
    SimErrorKind, StatsSnapshot, ThreadPos, Tier,
};
pub use omp_ir::Module;
pub use omp_opt::{OpenMpOptConfig, OptReport, PassStat, PassTiming};
pub use oracle::{OracleCase, OracleReport, VerifyOptions};
pub use pipeline::{
    build, profile_proxy, render_pass_timings, run_all_configs, run_proxy, sanitize_proxy,
    sanitize_report_json, sanitize_source, ProfiledRun, RunOutcome, SanitizeOptions,
    SanitizeOutcome,
};
pub use serve::{
    serve_unix, spawn_executor, ExecShared, ExecutorHandle, ServeJob, Session, SessionStats,
    TierStats,
};
