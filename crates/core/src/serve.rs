//! The compile service: `ompgpu serve`.
//!
//! A [`Session`] is a long-lived compilation context with
//! content-addressed caches at the pipeline's stage boundaries plus
//! one launch-level tier (see `docs/SERVE.md` for the full protocol
//! specification):
//!
//! 1. **frontend tier** — `fnv1a(globalization scheme, CUDA flag,
//!    source text)` → parsed + lowered [`Module`]. The frontend depends
//!    on the build configuration only through those two options, so all
//!    six OpenMP-source configurations share at most two entries per
//!    source.
//! 2. **optimized tier** — `fnv1a(frontend IR hash,
//!    [`BuildConfig::fingerprint`])` → optimized [`Module`] plus the
//!    pre-serialized deterministic compile result (counts, remarks,
//!    kernel table). The fingerprint covers every optimizer and
//!    frontend option, so two configurations can never alias.
//! 3. **device tier** — an LRU of warmed [`OwnedDevice`]s keyed by the
//!    optimized module's IR content hash. A device embeds its decoded
//!    [`ExecPlan`](omp_gpusim::ExecPlan), so this tier is the
//!    module → ExecPlan cache; on reuse the device is
//!    [`reset`](omp_gpusim::Device::reset) back to its freshly
//!    constructed memory state, which makes warm launches byte-identical
//!    to cold ones.
//! 4. **graphs tier** — `fnv1a(optimized IR hash, kernel, dims,
//!    argument specs)` → [`CapturedGraph`](omp_gpusim::CapturedGraph)
//!    of a multi-kernel launch plan. A warm `run` replays the captured
//!    graph, skipping every per-launch setup step, with `result` bytes
//!    identical to the eager cold run.
//!
//! Requests arrive as JSON-lines (`ompgpu-serve/v1`); each response
//! carries per-request cache hit/miss accounting in its envelope and a
//! deterministic `result` payload: for every request type except
//! `stats`, the `result` object from a warm cache is byte-identical to
//! the cold one (the envelope's `cache` field is the only part allowed
//! to differ). Wall-clock quantities (pass timings) are deliberately
//! excluded from every payload.
//!
//! [`spawn_executor`] runs a session on a dedicated thread behind an
//! MPSC queue: requests from any number of clients are serialized FIFO
//! and drained in batches, which is both the concurrency story (the
//! session needs no locks) and the determinism story (arrival order is
//! execution order). [`serve_unix`] exposes the executor on a Unix
//! socket for `ompgpu serve` / `ompgpu client`.

use crate::config::BuildConfig;
use crate::oracle::{self, ArgSpec, CaseResult, ExampleSpec, ORACLE_CONFIGS};
use crate::pipeline::{self, SanitizeOutcome};
use omp_gpusim::{FaultPlan, LaunchDims, OwnedDevice, ProfileMode, SanitizeMode};
use omp_ir::Module;
use omp_json::{content_address, fnv1a, JsonWriter, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Schema identifier carried by every response envelope.
pub const SCHEMA: &str = "ompgpu-serve/v1";

/// Every request type the protocol accepts, in documentation order.
pub const ALL_OPS: [&str; 9] = [
    "ping", "compile", "run", "verify", "profile", "sanitize", "metrics", "stats", "shutdown",
];

/// Exit-code semantics shared with the CLI: success / clean.
pub const EXIT_OK: u8 = 0;
/// Compile or I/O failure.
pub const EXIT_BUILD: u8 = 1;
/// Usage error (malformed request, unknown op, bad field).
pub const EXIT_USAGE: u8 = 2;
/// Simulation or launch failure.
pub const EXIT_SIM: u8 = 3;
/// Oracle divergence.
pub const EXIT_DIVERGED: u8 = 4;
/// Error-severity sanitizer findings.
pub const EXIT_FINDINGS: u8 = 5;

/// Default per-launch wall-clock watchdog, in seconds.
const DEFAULT_WATCHDOG_SECS: u64 = 60;

/// Default capacity of the warm-device LRU: enough to keep the whole
/// six-configuration ablation matrix of one subject warm, plus slack.
pub const DEFAULT_DEVICE_CAPACITY: usize = 8;

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

/// Hit/miss counters of one cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
}

impl TierStats {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("hits").u64(self.hits);
        w.key("misses").u64(self.misses);
        w.end_object();
    }
}

/// Cumulative accounting of one [`Session`], surfaced by the `stats`
/// request and rendered per request into each response envelope (the
/// per-request slice lives in [`Session::trace`]-internal counters).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Source → frontend-module tier.
    pub frontend: TierStats,
    /// (frontend module, configuration) → optimized-module tier.
    pub optimized: TierStats,
    /// Optimized module → warmed device (with decoded ExecPlan) tier.
    pub device: TierStats,
    /// (optimized module, kernel, dims, args) → captured-graph tier
    /// (multi-kernel launch plans only; a hit replays without any
    /// per-launch setup).
    pub graphs: TierStats,
    /// Requests handled (including malformed ones).
    pub requests: u64,
    /// Requests that produced a non-zero exit code.
    pub errors: u64,
    /// Per-op request counts, keyed by the op's stable [`ALL_OPS`]
    /// name (not positionally — the protocol gaining an op must never
    /// silently re-index existing counters).
    pub ops: std::collections::BTreeMap<&'static str, u64>,
    /// Executor batches drained (one batch per wake-up).
    pub batches: u64,
    /// Requests drained across all batches.
    pub batched_requests: u64,
}

impl SessionStats {
    /// Total cache hits across all four tiers (the quantity the CI
    /// smoke test asserts is positive on a warm second pass).
    pub fn total_hits(&self) -> u64 {
        self.frontend.hits + self.optimized.hits + self.device.hits + self.graphs.hits
    }
}

/// Per-request cache accounting, rendered into the response envelope.
#[derive(Debug, Clone, Copy, Default)]
struct CacheTrace {
    frontend: TierStats,
    optimized: TierStats,
    device: TierStats,
    graphs: TierStats,
}

impl CacheTrace {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("frontend");
        self.frontend.write_json(w);
        w.key("optimized");
        self.optimized.write_json(w);
        w.key("device");
        self.device.write_json(w);
        w.key("graphs");
        self.graphs.write_json(w);
        w.end_object();
    }
}

// ---------------------------------------------------------------------
// Cache entries
// ---------------------------------------------------------------------

struct FrontendEntry {
    module: Arc<Module>,
    /// FNV-1a of the printed frontend IR — the content half of the
    /// optimized tier's key.
    ir_hash: u64,
}

#[derive(Clone)]
struct OptimizedEntry {
    module: Arc<Module>,
    /// FNV-1a of the printed optimized IR — the device tier's key and
    /// the artifact's public content address.
    ir_hash: u64,
    /// The deterministic `compile` result payload, serialized once at
    /// miss time so hits are byte-identical by construction.
    compile_result: String,
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// One decoded request. Field meanings are per-op; see `docs/SERVE.md`.
struct Request {
    id: Option<u64>,
    op: String,
    source: Option<String>,
    /// Report name: explicit `name`, else the `path` file stem, else
    /// `"<inline>"`.
    subject: String,
    config: BuildConfig,
    all_configs: bool,
    kernel: Option<String>,
    teams: Option<u32>,
    threads: Option<u32>,
    args: Option<Vec<ArgSpec>>,
    jobs: Option<u32>,
    watchdog_secs: u64,
    max_insts: Option<u64>,
    dump: usize,
}

/// A request failure before dispatch: `(exit_code, message)`.
struct RequestError(u8, String);

fn field_u64(v: &Value, key: &str) -> Result<Option<u64>, RequestError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| RequestError(EXIT_USAGE, format!("field {key:?} must be an integer"))),
    }
}

fn field_str<'v>(v: &'v Value, key: &str) -> Result<Option<&'v str>, RequestError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(Some)
            .ok_or_else(|| RequestError(EXIT_USAGE, format!("field {key:?} must be a string"))),
    }
}

impl Request {
    fn from_value(v: &Value) -> Result<Request, RequestError> {
        let op = field_str(v, "op")?
            .ok_or_else(|| RequestError(EXIT_USAGE, "missing \"op\" field".into()))?
            .to_string();
        if !ALL_OPS.contains(&op.as_str()) {
            return Err(RequestError(
                EXIT_USAGE,
                format!("unknown op {op:?} (known: {})", ALL_OPS.join(", ")),
            ));
        }
        let id = field_u64(v, "id")?;
        let inline = field_str(v, "source")?.map(str::to_string);
        let path = field_str(v, "path")?.map(str::to_string);
        if inline.is_some() && path.is_some() {
            return Err(RequestError(
                EXIT_USAGE,
                "give either \"source\" or \"path\", not both".into(),
            ));
        }
        let mut subject = field_str(v, "name")?.map(str::to_string);
        let source = match (inline, &path) {
            (Some(s), _) => Some(s),
            (None, Some(p)) => {
                if subject.is_none() {
                    subject = Path::new(p)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned());
                }
                Some(
                    std::fs::read_to_string(p)
                        .map_err(|e| RequestError(EXIT_BUILD, format!("cannot read {p}: {e}")))?,
                )
            }
            (None, None) => None,
        };
        let config = match field_str(v, "config")? {
            None => BuildConfig::LlvmDev,
            Some(s) => BuildConfig::from_cli_name(s).ok_or_else(|| {
                RequestError(
                    EXIT_USAGE,
                    format!(
                        "unknown config {s:?} (known: {})",
                        BuildConfig::ALL.map(BuildConfig::cli_name).join(", ")
                    ),
                )
            })?,
        };
        let args = match v.get("args") {
            None | Some(Value::Null) => None,
            Some(Value::Array(items)) => {
                let mut specs = Vec::with_capacity(items.len());
                for item in items {
                    let s = item.as_str().ok_or_else(|| {
                        RequestError(EXIT_USAGE, "\"args\" entries must be strings".into())
                    })?;
                    specs.push(ArgSpec::parse_colon(s).ok_or_else(|| {
                        RequestError(EXIT_USAGE, format!("malformed arg spec {s:?}"))
                    })?);
                }
                Some(specs)
            }
            Some(_) => {
                return Err(RequestError(
                    EXIT_USAGE,
                    "\"args\" must be an array of spec strings".into(),
                ))
            }
        };
        Ok(Request {
            id,
            op,
            source,
            subject: subject.unwrap_or_else(|| "<inline>".to_string()),
            config,
            all_configs: v
                .get("all_configs")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            kernel: field_str(v, "kernel")?.map(str::to_string),
            teams: field_u64(v, "teams")?.map(|n| n as u32),
            threads: field_u64(v, "threads")?.map(|n| n as u32),
            args,
            jobs: field_u64(v, "jobs")?.map(|n| n as u32),
            watchdog_secs: field_u64(v, "watchdog_secs")?.unwrap_or(DEFAULT_WATCHDOG_SECS),
            max_insts: field_u64(v, "max_insts")?,
            dump: field_u64(v, "dump")?.unwrap_or(0) as usize,
        })
    }

    fn source(&self) -> Result<&str, RequestError> {
        self.source.as_deref().ok_or_else(|| {
            RequestError(
                EXIT_USAGE,
                format!("op {:?} needs a \"source\" or \"path\" field", self.op),
            )
        })
    }
}

/// Outcome of one dispatched request: exit code plus either a `result`
/// payload or an error (`message`, optional structured `detail`).
struct Outcome {
    exit_code: u8,
    result: Option<String>,
    error: Option<(String, Option<String>)>,
}

impl Outcome {
    fn ok(result: String) -> Outcome {
        Outcome {
            exit_code: EXIT_OK,
            result: Some(result),
            error: None,
        }
    }

    fn ok_with_exit(exit_code: u8, result: String) -> Outcome {
        Outcome {
            exit_code,
            result: Some(result),
            error: None,
        }
    }

    fn fail(exit_code: u8, message: String) -> Outcome {
        Outcome {
            exit_code,
            result: None,
            error: Some((message, None)),
        }
    }

    fn fail_with_detail(exit_code: u8, message: String, detail: String) -> Outcome {
        Outcome {
            exit_code,
            result: None,
            error: Some((message, Some(detail))),
        }
    }
}

impl From<RequestError> for Outcome {
    fn from(e: RequestError) -> Outcome {
        Outcome::fail(e.0, e.1)
    }
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// The per-request launch knobs applied to a (possibly warmed) device.
/// Every mode is set explicitly on every request, so a device inherited
/// from a previous request carries nothing over except its warmed
/// memory image and decoded plan.
struct Knobs {
    jobs: Option<u32>,
    watchdog_secs: u64,
    max_insts: Option<u64>,
    profile: bool,
    sanitize: bool,
}

impl Knobs {
    fn of(req: &Request) -> Knobs {
        Knobs {
            jobs: req.jobs,
            watchdog_secs: req.watchdog_secs,
            max_insts: req.max_insts,
            profile: req.op == "profile",
            sanitize: req.op == "sanitize",
        }
    }
}

/// The per-thread instruction budget a freshly constructed device gets:
/// the `OMPGPU_MAX_INSTS` override, else the config default. Warm
/// devices are re-armed with this so they match cold ones.
fn default_max_insts() -> u64 {
    std::env::var("OMPGPU_MAX_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(omp_gpusim::DeviceConfig::default().max_insts_per_thread)
}

/// The execution tier freshly constructed devices request: the
/// `OMPGPU_TIER` override, else the config default (`compiled`).
/// Observability knobs (`profile`, `sanitize`) still force individual
/// launches onto the interpreter; per-launch stats record the tier that
/// actually ran.
fn default_tier() -> omp_gpusim::Tier {
    std::env::var("OMPGPU_TIER")
        .ok()
        .and_then(|v| omp_gpusim::Tier::parse(&v))
        .unwrap_or(omp_gpusim::DeviceConfig::default().tier)
}

/// A long-lived compile-service session: the three artifact cache tiers
/// plus request accounting. Not internally synchronized — wrap it in
/// [`spawn_executor`] to share it across clients.
pub struct Session {
    frontend: HashMap<u64, FrontendEntry>,
    optimized: HashMap<u64, OptimizedEntry>,
    /// Warm-device LRU, oldest first; each entry is keyed by the
    /// optimized module's IR hash.
    devices: Vec<(u64, OwnedDevice)>,
    device_capacity: usize,
    /// Captured multi-kernel launch graphs, content-addressed by
    /// (optimized IR hash, kernel, dims, argument specs). A hit skips
    /// every per-launch setup step on replay.
    graphs: HashMap<u64, omp_gpusim::CapturedGraph>,
    stats: SessionStats,
    trace: CacheTrace,
    /// Live latency/batch-size histograms (wall clock — informational).
    /// Deterministic counters are *not* stored here: the `metrics` op
    /// derives them from [`SessionStats`] at render time so the two
    /// expositions can never drift apart.
    metrics: omp_telemetry::MetricsRegistry,
    /// Opt-in JSON-lines access log, one record per request.
    access_log: Option<std::io::BufWriter<std::fs::File>>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new(DEFAULT_DEVICE_CAPACITY)
    }
}

impl Session {
    /// Creates a session whose warm-device LRU holds up to
    /// `device_capacity` entries (minimum 1).
    pub fn new(device_capacity: usize) -> Session {
        Session {
            frontend: HashMap::new(),
            optimized: HashMap::new(),
            devices: Vec::new(),
            device_capacity: device_capacity.max(1),
            graphs: HashMap::new(),
            stats: SessionStats::default(),
            trace: CacheTrace::default(),
            metrics: omp_telemetry::MetricsRegistry::new(),
            access_log: None,
        }
    }

    /// Cumulative session statistics.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Opens (appending) the JSON-lines access log at `path`; every
    /// subsequent request writes one `ompgpu-access-log/v1` record.
    pub fn set_access_log(&mut self, path: &Path) -> Result<(), String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open access log {}: {e}", path.display()))?;
        self.access_log = Some(std::io::BufWriter::new(file));
        Ok(())
    }

    /// Records one executor batch of `n` requests.
    pub fn note_batch(&mut self, n: usize) {
        self.stats.batches += 1;
        self.stats.batched_requests += n as u64;
        self.metrics.observe("serve.batch_size", n as u64);
    }

    // -- cache tiers --------------------------------------------------

    fn frontend_key(source: &str, config: BuildConfig) -> u64 {
        let fe = config.frontend_options("bench");
        fnv1a(
            format!(
                "fe\x00{:?}\x00{}\x00{source}",
                fe.globalization, fe.cuda_mode
            )
            .as_bytes(),
        )
    }

    fn frontend_module(
        &mut self,
        source: &str,
        config: BuildConfig,
    ) -> Result<(Arc<Module>, u64), String> {
        let key = Session::frontend_key(source, config);
        if let Some(e) = self.frontend.get(&key) {
            self.stats.frontend.hits += 1;
            self.trace.frontend.hits += 1;
            return Ok((Arc::clone(&e.module), e.ir_hash));
        }
        self.stats.frontend.misses += 1;
        self.trace.frontend.misses += 1;
        let module = pipeline::compile_frontend(source, config).map_err(|e| e.to_string())?;
        let ir_hash = fnv1a(omp_ir::printer::print_module(&module).as_bytes());
        let module = Arc::new(module);
        self.frontend.insert(
            key,
            FrontendEntry {
                module: Arc::clone(&module),
                ir_hash,
            },
        );
        Ok((module, ir_hash))
    }

    fn optimized_module(
        &mut self,
        source: &str,
        config: BuildConfig,
    ) -> Result<OptimizedEntry, String> {
        let (fe_module, fe_hash) = self.frontend_module(source, config)?;
        let key =
            fnv1a(format!("opt\x00{fe_hash:016x}\x00{:016x}", config.fingerprint()).as_bytes());
        if let Some(e) = self.optimized.get(&key) {
            self.stats.optimized.hits += 1;
            self.trace.optimized.hits += 1;
            return Ok(e.clone());
        }
        self.stats.optimized.misses += 1;
        self.trace.optimized.misses += 1;
        let (module, report) =
            pipeline::optimize((*fe_module).clone(), config).map_err(|e| e.to_string())?;
        let ir_hash = fnv1a(omp_ir::printer::print_module(&module).as_bytes());
        let compile_result = render_compile_result(config, &module, ir_hash, report.as_ref());
        let entry = OptimizedEntry {
            module: Arc::new(module),
            ir_hash,
            compile_result,
        };
        self.optimized.insert(key, entry.clone());
        Ok(entry)
    }

    /// Returns the LRU index of a warmed device for `entry`, building
    /// one on miss and resetting the memory image on hit.
    fn device_for(&mut self, entry: &OptimizedEntry) -> Result<usize, String> {
        let key = entry.ir_hash;
        if let Some(pos) = self.devices.iter().position(|(k, _)| *k == key) {
            self.stats.device.hits += 1;
            self.trace.device.hits += 1;
            let mut pair = self.devices.remove(pos);
            pair.1.with(|d| d.reset());
            self.devices.push(pair);
            return Ok(self.devices.len() - 1);
        }
        self.stats.device.misses += 1;
        self.trace.device.misses += 1;
        let dev = OwnedDevice::new(Arc::clone(&entry.module), Default::default())
            .map_err(|e| e.to_string())?;
        if self.devices.len() >= self.device_capacity {
            self.devices.remove(0);
        }
        self.devices.push((key, dev));
        Ok(self.devices.len() - 1)
    }

    /// Arms the device at `idx` with this request's launch knobs.
    fn arm_device(&mut self, idx: usize, knobs: &Knobs) {
        let watchdog = (knobs.watchdog_secs > 0).then(|| Duration::from_secs(knobs.watchdog_secs));
        let max_insts = knobs.max_insts.unwrap_or_else(default_max_insts);
        self.devices[idx].1.with(|d| {
            d.set_jobs(knobs.jobs.unwrap_or(0));
            d.set_profile(if knobs.profile {
                ProfileMode::On
            } else {
                ProfileMode::Off
            });
            d.set_sanitize(if knobs.sanitize {
                SanitizeMode::On
            } else {
                SanitizeMode::Off
            });
            d.set_fault_plan(FaultPlan::default());
            d.set_watchdog(watchdog);
            d.set_max_insts(max_insts);
        });
    }

    // -- request handling ---------------------------------------------

    /// Handles one JSON-lines request, returning the serialized response
    /// envelope and whether this request shuts the session down.
    pub fn handle_line(&mut self, line: &str) -> (String, bool) {
        self.handle_line_timed(line, 0)
    }

    /// Like [`Session::handle_line`], with the request's executor-queue
    /// wait (microseconds) supplied by the caller so it can be folded
    /// into the latency histograms and the access log.
    pub fn handle_line_timed(&mut self, line: &str, queue_micros: u64) -> (String, bool) {
        let t0 = std::time::Instant::now();
        self.trace = CacheTrace::default();
        self.stats.requests += 1;
        let (id, op, outcome) = match omp_json::parse(line) {
            Err(e) => (
                None,
                None,
                Outcome::fail(EXIT_USAGE, format!("malformed request JSON: {e}")),
            ),
            Ok(v) => match Request::from_value(&v) {
                Err(e) => (
                    v.get("id").and_then(Value::as_u64),
                    v.get("op").and_then(Value::as_str).map(str::to_string),
                    e.into(),
                ),
                Ok(req) => {
                    if let Some(name) = ALL_OPS.iter().find(|o| **o == req.op) {
                        *self.stats.ops.entry(name).or_insert(0) += 1;
                    }
                    let _span = omp_telemetry::span_lazy("serve", || format!("serve.{}", req.op));
                    let outcome = self.dispatch(&req);
                    (req.id, Some(req.op), outcome)
                }
            },
        };
        if outcome.exit_code != EXIT_OK && outcome.result.is_none() {
            self.stats.errors += 1;
        }
        let service_micros = t0.elapsed().as_micros() as u64;
        self.metrics.observe("serve.queue_micros", queue_micros);
        self.metrics.observe(
            &match op.as_deref() {
                Some(o) => format!("serve.service_micros.{o}"),
                None => "serve.service_micros.invalid".to_string(),
            },
            service_micros,
        );
        let shutdown = op.as_deref() == Some("shutdown") && outcome.exit_code == EXIT_OK;
        let response = self.envelope(id, op.as_deref(), &outcome);
        self.log_access(
            id,
            op.as_deref(),
            &outcome,
            queue_micros,
            service_micros,
            response.len(),
        );
        (response, shutdown)
    }

    /// Writes one access-log record, if the log is enabled.
    fn log_access(
        &mut self,
        id: Option<u64>,
        op: Option<&str>,
        outcome: &Outcome,
        queue_micros: u64,
        service_micros: u64,
        bytes: usize,
    ) {
        let Some(out) = self.access_log.as_mut() else {
            return;
        };
        let ts_micros = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let mut w = JsonWriter::with_capacity(256);
        w.begin_object();
        w.key("schema").string(omp_telemetry::ACCESS_LOG_SCHEMA);
        w.key("ts_micros").u64(ts_micros);
        w.key("id");
        match id {
            Some(n) => {
                w.u64(n);
            }
            None => {
                w.null();
            }
        }
        w.key("op");
        match op {
            Some(o) => {
                w.string(o);
            }
            None => {
                w.null();
            }
        }
        w.key("ok").bool(outcome.exit_code == EXIT_OK);
        w.key("exit_code").u64(outcome.exit_code as u64);
        w.key("cache");
        self.trace.write_json(&mut w);
        w.key("queue_micros").u64(queue_micros);
        w.key("service_micros").u64(service_micros);
        w.key("bytes").u64(bytes as u64);
        w.end_object();
        let _ = writeln!(out, "{}", w.finish());
        let _ = out.flush();
    }

    fn dispatch(&mut self, req: &Request) -> Outcome {
        match req.op.as_str() {
            "ping" => Outcome::ok("{\"pong\":true}".to_string()),
            "metrics" => Outcome::ok(self.render_metrics()),
            "stats" => Outcome::ok(self.render_stats()),
            "shutdown" => Outcome::ok("{\"shutting_down\":true}".to_string()),
            "compile" => self.op_compile(req),
            "run" => self.op_run(req),
            "verify" => self.op_verify(req),
            "profile" => self.op_profile(req),
            "sanitize" => self.op_sanitize(req),
            _ => unreachable!("op validated in Request::from_value"),
        }
    }

    fn op_compile(&mut self, req: &Request) -> Outcome {
        let source = match req.source() {
            Ok(s) => s.to_string(),
            Err(e) => return e.into(),
        };
        match self.optimized_module(&source, req.config) {
            Ok(entry) => Outcome::ok(entry.compile_result),
            Err(e) => Outcome::fail(EXIT_BUILD, e),
        }
    }

    /// Resolves kernel/dims/args from request fields with the source's
    /// `// oracle-*:` header as fallback (same precedence as the CLI).
    fn resolve_spec(
        req: &Request,
        source: &str,
    ) -> Result<(String, LaunchDims, Vec<ArgSpec>), RequestError> {
        let header = ExampleSpec::parse(source).ok();
        let kernel = req
            .kernel
            .clone()
            .or_else(|| header.as_ref().map(|s| s.kernel.clone()))
            .ok_or_else(|| {
                RequestError(
                    EXIT_USAGE,
                    "need a \"kernel\" field (or an `// oracle-kernel:` header)".into(),
                )
            })?;
        let dims = LaunchDims {
            teams: req.teams.or(header.as_ref().and_then(|s| s.teams)),
            threads: req.threads.or(header.as_ref().and_then(|s| s.threads)),
        };
        let args = req
            .args
            .clone()
            .or_else(|| header.map(|s| s.args))
            .unwrap_or_default();
        Ok((kernel, dims, args))
    }

    fn op_run(&mut self, req: &Request) -> Outcome {
        let source = match req.source() {
            Ok(s) => s.to_string(),
            Err(e) => return e.into(),
        };
        let (kernel, dims, specs) = match Session::resolve_spec(req, &source) {
            Ok(x) => x,
            Err(e) => return e.into(),
        };
        let entry = match self.optimized_module(&source, req.config) {
            Ok(e) => e,
            Err(e) => return Outcome::fail(EXIT_BUILD, e),
        };
        let idx = match self.device_for(&entry) {
            Ok(i) => i,
            Err(e) => return Outcome::fail(EXIT_SIM, e),
        };
        self.arm_device(idx, &Knobs::of(req));
        let dump = req.dump;
        // Multi-kernel launch plans go through the captured-graph
        // cache: capture once per (module, kernel, dims, args), replay
        // on every later request. Replay is bit-identical to the eager
        // plan, so warm responses stay byte-identical to cold ones.
        let graph_key = (entry
            .module
            .kernels
            .iter()
            .filter(|k| k.source_name == kernel)
            .count()
            > 1)
        .then(|| {
            fnv1a(
                format!(
                    "graph\x00{:016x}\x00{kernel}\x00{:?}\x00{:?}\x00{specs:?}",
                    entry.ir_hash, dims.teams, dims.threads
                )
                .as_bytes(),
            )
        });
        let cached = graph_key.and_then(|k| self.graphs.get(&k).cloned());
        // (stats json, dumped buffers, graph captured by this request)
        type RunOk = (String, Option<String>, Option<omp_gpusim::CapturedGraph>);
        // (message, structured SimError json)
        type RunErr = (String, Option<String>);
        let launched = self.devices[idx].1.with(|d| -> Result<RunOk, RunErr> {
            let (rt_args, buffers) = oracle::materialize_args(d, &specs).map_err(|e| (e, None))?;
            let sim = |e: omp_gpusim::SimError| (e.to_string(), Some(e.to_json()));
            let (stats, captured) = if graph_key.is_some() {
                match cached {
                    // The device is reset to a pristine image before
                    // each warm request, so re-materialized argument
                    // addresses match the captured ones exactly.
                    Some(g) if g.args() == rt_args => (d.replay_graph(&g).map_err(sim)?, None),
                    _ => {
                        let g = d.capture_graph(&kernel, &rt_args, dims).map_err(sim)?;
                        (d.replay_graph(&g).map_err(sim)?, Some(g))
                    }
                }
            } else {
                (d.launch(&kernel, &rt_args, dims).map_err(sim)?, None)
            };
            let dumped = if dump > 0 {
                let mut w = JsonWriter::with_capacity(256);
                w.begin_array();
                for (addr, len, is_f64) in &buffers {
                    let k = dump.min(*len);
                    w.begin_array();
                    if *is_f64 {
                        let vals = d.read_f64(*addr, k).map_err(|e| (e.to_string(), None))?;
                        for v in vals {
                            w.f64(v);
                        }
                    } else {
                        let vals = d.read_i64(*addr, k).map_err(|e| (e.to_string(), None))?;
                        for v in vals {
                            w.i64(v);
                        }
                    }
                    w.end_array();
                }
                w.end_array();
                Some(w.finish())
            } else {
                None
            };
            Ok((stats.snapshot().to_json(), dumped, captured))
        });
        match launched {
            Ok((stats, dumped, captured)) => {
                if let Some(k) = graph_key {
                    match captured {
                        Some(g) => {
                            self.stats.graphs.misses += 1;
                            self.trace.graphs.misses += 1;
                            self.graphs.insert(k, g);
                        }
                        None => {
                            self.stats.graphs.hits += 1;
                            self.trace.graphs.hits += 1;
                        }
                    }
                }
                let mut w = JsonWriter::with_capacity(256);
                w.begin_object();
                w.key("config").string(req.config.cli_name());
                w.key("kernel").string(&kernel);
                w.key("stats").raw(&stats);
                if let Some(d) = dumped {
                    w.key("dump").raw(&d);
                }
                w.end_object();
                Outcome::ok(w.finish())
            }
            Err((msg, detail)) => match detail {
                Some(d) => Outcome::fail_with_detail(EXIT_SIM, msg, d),
                None => Outcome::fail(EXIT_SIM, msg),
            },
        }
    }

    fn op_profile(&mut self, req: &Request) -> Outcome {
        let source = match req.source() {
            Ok(s) => s.to_string(),
            Err(e) => return e.into(),
        };
        let (kernel, dims, specs) = match Session::resolve_spec(req, &source) {
            Ok(x) => x,
            Err(e) => return e.into(),
        };
        let entry = match self.optimized_module(&source, req.config) {
            Ok(e) => e,
            Err(e) => return Outcome::fail(EXIT_BUILD, e),
        };
        let idx = match self.device_for(&entry) {
            Ok(i) => i,
            Err(e) => return Outcome::fail(EXIT_SIM, e),
        };
        self.arm_device(idx, &Knobs::of(req));
        let launched =
            self.devices[idx]
                .1
                .with(|d| -> Result<(String, String), (String, Option<String>)> {
                    let (rt_args, _buffers) =
                        oracle::materialize_args(d, &specs).map_err(|e| (e, None))?;
                    let (stats, profile) = d
                        .launch_plan_profiled(&kernel, &rt_args, dims)
                        .map_err(|e| (e.to_string(), Some(e.to_json())))?;
                    let profile = profile.expect("profiling was enabled");
                    Ok((stats.snapshot().to_json(), profile.to_json()))
                });
        match launched {
            Ok((stats, profile)) => {
                let mut w = JsonWriter::with_capacity(1024);
                w.begin_object();
                w.key("config").string(req.config.cli_name());
                w.key("kernel").string(&kernel);
                w.key("stats").raw(&stats);
                w.key("profile").raw(&profile);
                w.end_object();
                Outcome::ok(w.finish())
            }
            Err((msg, detail)) => match detail {
                Some(d) => Outcome::fail_with_detail(EXIT_SIM, msg, d),
                None => Outcome::fail(EXIT_SIM, msg),
            },
        }
    }

    fn op_verify(&mut self, req: &Request) -> Outcome {
        let source = match req.source() {
            Ok(s) => s.to_string(),
            Err(e) => return e.into(),
        };
        let spec = match ExampleSpec::parse(&source) {
            Ok(s) => s,
            Err(e) => {
                let mut w = JsonWriter::with_capacity(128);
                w.begin_object();
                w.key("name").string(&req.subject);
                w.key("passed").bool(false);
                w.key("configs").begin_array().end_array();
                w.key("failures").begin_array();
                w.string(&format!("spec error: {e}"));
                w.end_array();
                w.key("expected_failures").begin_array().end_array();
                w.end_object();
                return Outcome::ok_with_exit(EXIT_DIVERGED, w.finish());
            }
        };
        let failed = |config: BuildConfig, error: String| CaseResult {
            config,
            bits: None,
            stats: None,
            error: Some(error),
            pass_stats: Vec::new(),
        };
        let mut results: Vec<CaseResult> = Vec::with_capacity(ORACLE_CONFIGS.len());
        for &config in &ORACLE_CONFIGS {
            let entry = match self.optimized_module(&source, config) {
                Ok(e) => e,
                Err(e) => {
                    results.push(failed(config, e));
                    continue;
                }
            };
            let idx = match self.device_for(&entry) {
                Ok(i) => i,
                Err(e) => {
                    results.push(failed(config, e));
                    continue;
                }
            };
            self.arm_device(idx, &Knobs::of(req));
            let spec = &spec;
            let run = self.devices[idx].1.with(
                |d| -> Result<(Vec<u64>, omp_gpusim::StatsSnapshot), String> {
                    let (rt_args, buffers) = oracle::materialize_args(d, &spec.args)?;
                    let dims = LaunchDims {
                        teams: spec.teams,
                        threads: spec.threads,
                    };
                    let stats = d
                        .launch_plan(&spec.kernel, &rt_args, dims)
                        .map_err(|e| e.to_string())?;
                    let mut bits: Vec<u64> = Vec::new();
                    for (addr, len, is_f64) in buffers {
                        if is_f64 {
                            let v = d
                                .read_f64(addr, len)
                                .map_err(|e| format!("readback failed: {e}"))?;
                            bits.extend(v.iter().map(|x| x.to_bits()));
                        } else {
                            let v = d
                                .read_i64(addr, len)
                                .map_err(|e| format!("readback failed: {e}"))?;
                            bits.extend(v.iter().map(|x| *x as u64));
                        }
                    }
                    Ok((bits, stats.snapshot()))
                },
            );
            results.push(match run {
                Ok((bits, stats)) => CaseResult {
                    config,
                    bits: Some(bits),
                    stats: Some(stats),
                    error: None,
                    pass_stats: Vec::new(),
                },
                Err(e) => failed(config, e),
            });
        }
        let case = oracle::finish_case(&req.subject, results);
        let mut w = JsonWriter::with_capacity(512);
        w.begin_object();
        w.key("name").string(&case.name);
        w.key("passed").bool(case.passed());
        w.key("configs").begin_array();
        for r in &case.results {
            w.begin_object();
            w.key("config").string(r.config.cli_name());
            match (&r.stats, &r.error) {
                (Some(s), _) => {
                    w.key("stats").raw(&s.to_json());
                }
                (None, Some(e)) => {
                    w.key("error").string(e);
                }
                (None, None) => {}
            }
            w.end_object();
        }
        w.end_array();
        w.key("failures").begin_array();
        for f in &case.failures {
            w.string(f);
        }
        w.end_array();
        w.key("expected_failures").begin_array();
        for f in &case.expected_failures {
            w.string(f);
        }
        w.end_array();
        w.end_object();
        let exit = if case.passed() {
            EXIT_OK
        } else {
            EXIT_DIVERGED
        };
        Outcome::ok_with_exit(exit, w.finish())
    }

    fn op_sanitize(&mut self, req: &Request) -> Outcome {
        let source = match req.source() {
            Ok(s) => s.to_string(),
            Err(e) => return e.into(),
        };
        let spec = match ExampleSpec::parse(&source) {
            Ok(s) => s,
            Err(e) => return Outcome::fail(EXIT_BUILD, format!("spec error: {e}")),
        };
        let configs: Vec<BuildConfig> = if req.all_configs {
            ORACLE_CONFIGS.to_vec()
        } else {
            vec![req.config]
        };
        let mut outcomes: Vec<SanitizeOutcome> = Vec::with_capacity(configs.len());
        for &config in &configs {
            let setup_failed = |error: String| SanitizeOutcome {
                config,
                stats: None,
                error: None,
                setup_error: Some(error),
                findings: Vec::new(),
            };
            let entry = match self.optimized_module(&source, config) {
                Ok(e) => e,
                Err(e) => {
                    outcomes.push(setup_failed(e));
                    continue;
                }
            };
            let idx = match self.device_for(&entry) {
                Ok(i) => i,
                Err(e) => {
                    outcomes.push(setup_failed(e));
                    continue;
                }
            };
            self.arm_device(idx, &Knobs::of(req));
            let spec = &spec;
            let outcome = self.devices[idx].1.with(|d| {
                let (rt_args, _buffers) = match oracle::materialize_args(d, &spec.args) {
                    Ok(x) => x,
                    Err(e) => return setup_failed(e),
                };
                let dims = LaunchDims {
                    teams: spec.teams,
                    threads: spec.threads,
                };
                match d.launch_plan_checked(&spec.kernel, &rt_args, dims) {
                    Ok((stats, findings)) => SanitizeOutcome {
                        config,
                        stats: Some(stats),
                        error: None,
                        setup_error: None,
                        findings,
                    },
                    Err(e) => {
                        let findings = e.findings.clone();
                        SanitizeOutcome {
                            config,
                            stats: None,
                            error: Some(e),
                            setup_error: None,
                            findings,
                        }
                    }
                }
            });
            outcomes.push(outcome);
        }
        let result = pipeline::sanitize_report_json(&req.subject, &outcomes);
        let exit = if outcomes.iter().any(|o| o.error_findings() > 0) {
            EXIT_FINDINGS
        } else if outcomes.iter().any(|o| o.error.is_some()) {
            EXIT_SIM
        } else if outcomes.iter().any(|o| o.setup_error.is_some()) {
            EXIT_BUILD
        } else {
            EXIT_OK
        };
        Outcome::ok_with_exit(exit, result)
    }

    /// The current metrics registry: the live latency/batch-size
    /// histograms plus every deterministic counter and gauge derived
    /// from [`SessionStats`] at call time. Deriving (rather than
    /// double-booking) keeps the `metrics` exposition consistent with
    /// the `stats` op by construction.
    pub fn metrics_registry(&self) -> omp_telemetry::MetricsRegistry {
        let mut reg = self.metrics.clone();
        reg.counter_add("serve.requests", self.stats.requests);
        reg.counter_add("serve.errors", self.stats.errors);
        for op in ALL_OPS {
            reg.counter_add(
                &format!("serve.ops.{op}"),
                self.stats.ops.get(op).copied().unwrap_or(0),
            );
        }
        for (tier, t) in [
            ("frontend", self.stats.frontend),
            ("optimized", self.stats.optimized),
            ("device", self.stats.device),
            ("graphs", self.stats.graphs),
        ] {
            reg.counter_add(&format!("serve.cache.{tier}.hits"), t.hits);
            reg.counter_add(&format!("serve.cache.{tier}.misses"), t.misses);
        }
        reg.counter_add("serve.batches", self.stats.batches);
        reg.counter_add("serve.batched_requests", self.stats.batched_requests);
        reg.gauge_set("serve.device_entries", self.devices.len() as i64);
        reg.gauge_set("serve.device_capacity", self.device_capacity as i64);
        reg.gauge_set("serve.graph_entries", self.graphs.len() as i64);
        reg
    }

    /// The `metrics` result payload: the Prometheus text exposition and
    /// the JSON rendering of one registry snapshot.
    fn render_metrics(&self) -> String {
        let reg = self.metrics_registry();
        let mut w = JsonWriter::with_capacity(2048);
        w.begin_object();
        w.key("prometheus").string(&reg.render_prometheus());
        w.key("metrics");
        reg.write_json(&mut w);
        w.end_object();
        w.finish()
    }

    fn render_stats(&self) -> String {
        let mut w = JsonWriter::with_capacity(512);
        w.begin_object();
        w.key("requests").u64(self.stats.requests);
        w.key("errors").u64(self.stats.errors);
        w.key("ops").begin_object();
        for name in ALL_OPS {
            w.key(name)
                .u64(self.stats.ops.get(name).copied().unwrap_or(0));
        }
        w.end_object();
        w.key("cache").begin_object();
        w.key("frontend");
        self.stats.frontend.write_json(&mut w);
        w.key("optimized");
        self.stats.optimized.write_json(&mut w);
        w.key("device");
        self.stats.device.write_json(&mut w);
        w.key("graphs");
        self.stats.graphs.write_json(&mut w);
        w.end_object();
        w.key("total_hits").u64(self.stats.total_hits());
        w.key("device_entries").usize(self.devices.len());
        w.key("device_capacity").usize(self.device_capacity);
        w.key("graph_entries").usize(self.graphs.len());
        w.key("tier").string(default_tier().as_str());
        w.key("batches").u64(self.stats.batches);
        w.key("batched_requests").u64(self.stats.batched_requests);
        w.end_object();
        w.finish()
    }

    fn envelope(&self, id: Option<u64>, op: Option<&str>, outcome: &Outcome) -> String {
        let mut w = JsonWriter::with_capacity(512);
        w.begin_object();
        w.key("schema").string(SCHEMA);
        w.key("id");
        match id {
            Some(n) => {
                w.u64(n);
            }
            None => {
                w.null();
            }
        }
        w.key("op");
        match op {
            Some(o) => {
                w.string(o);
            }
            None => {
                w.null();
            }
        }
        w.key("ok").bool(outcome.exit_code == EXIT_OK);
        w.key("exit_code").u64(outcome.exit_code as u64);
        w.key("cache");
        self.trace.write_json(&mut w);
        if let Some(r) = &outcome.result {
            w.key("result").raw(r);
        }
        if let Some((msg, detail)) = &outcome.error {
            w.key("error").begin_object();
            w.key("message").string(msg);
            if let Some(d) = detail {
                w.key("detail").raw(d);
            }
            w.end_object();
        }
        w.end_object();
        w.finish()
    }
}

/// Serializes the deterministic `compile` result payload. Pass timings
/// (wall clock) are deliberately excluded; everything here is a pure
/// function of (source, configuration).
fn render_compile_result(
    config: BuildConfig,
    module: &Module,
    ir_hash: u64,
    report: Option<&omp_opt::OptReport>,
) -> String {
    let mut w = JsonWriter::with_capacity(1024);
    w.begin_object();
    w.key("config").string(config.cli_name());
    w.key("module").string(&content_address(ir_hash));
    w.key("functions").usize(module.num_functions());
    w.key("kernels").begin_array();
    for k in &module.kernels {
        w.begin_object();
        w.key("name").string(&k.source_name);
        w.key("mode").string(&format!("{:?}", k.exec_mode));
        w.end_object();
    }
    w.end_array();
    match report {
        Some(r) => {
            let c = r.counts;
            w.key("counts").begin_object();
            w.key("internalized").usize(c.internalized);
            w.key("heap_to_stack").usize(c.heap_to_stack);
            w.key("heap_to_shared").usize(c.heap_to_shared);
            w.key("spmdized").usize(c.spmdized);
            w.key("csm_possible").usize(c.csm_possible);
            w.key("csm_rewritten").usize(c.csm_rewritten);
            w.key("csm_with_fallback").usize(c.csm_with_fallback);
            w.key("folds_exec_mode").usize(c.folds_exec_mode);
            w.key("folds_parallel_level").usize(c.folds_parallel_level);
            w.key("folds_launch_params").usize(c.folds_launch_params);
            w.key("guard_regions").usize(c.guard_regions);
            w.key("broadcasts").usize(c.broadcasts);
            w.end_object();
            w.key("remarks").begin_array();
            for remark in r.remarks.all() {
                w.raw(&remark.to_json());
            }
            w.end_array();
        }
        None => {
            w.key("counts").null();
            w.key("remarks").begin_array().end_array();
        }
    }
    w.end_object();
    w.finish()
}

// ---------------------------------------------------------------------
// Executor: one thread owning the session, FIFO over an MPSC queue
// ---------------------------------------------------------------------

/// One queued request: the raw JSON line plus the channel the serialized
/// response goes back on.
pub struct ServeJob {
    /// Raw request line (one JSON object).
    pub line: String,
    /// Reply channel for the serialized response envelope.
    pub reply: mpsc::Sender<String>,
    /// When the job entered the queue; the executor derives the
    /// queue-wait histogram and access-log field from it.
    pub enqueued: std::time::Instant,
}

impl ServeJob {
    /// A job stamped with the current time as its enqueue instant.
    pub fn new(line: String, reply: mpsc::Sender<String>) -> ServeJob {
        ServeJob {
            line,
            reply,
            enqueued: std::time::Instant::now(),
        }
    }
}

/// Handle to a running executor. Cloneable across client threads; every
/// clone feeds the same FIFO queue.
#[derive(Clone)]
pub struct ExecutorHandle {
    tx: mpsc::Sender<ServeJob>,
}

impl ExecutorHandle {
    /// Submits one request line and blocks for its response. Returns a
    /// synthesized usage-error envelope if the executor has shut down.
    pub fn request(&self, line: &str) -> String {
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = ServeJob::new(line.to_string(), reply_tx);
        if self.tx.send(job).is_ok() {
            if let Ok(resp) = reply_rx.recv() {
                return resp;
            }
        }
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"id\":null,\"op\":null,\"ok\":false,\
             \"exit_code\":{EXIT_USAGE},\"error\":{{\"message\":\"session is shut down\"}}}}"
        )
    }

    /// The raw job queue, for callers managing their own reply channels.
    pub fn sender(&self) -> mpsc::Sender<ServeJob> {
        self.tx.clone()
    }
}

/// Spawns the executor thread owning `session`. Requests are processed
/// strictly in arrival order; each wake-up drains everything queued
/// (the batch) before sleeping, and batch sizes are recorded in the
/// session statistics. The thread exits — returning the session — when
/// a `shutdown` request is processed or every handle is dropped.
pub fn spawn_executor(session: Session) -> (ExecutorHandle, std::thread::JoinHandle<Session>) {
    let (tx, rx) = mpsc::channel::<ServeJob>();
    let thread = std::thread::spawn(move || {
        let mut session = session;
        'outer: loop {
            let first = match rx.recv() {
                Ok(j) => j,
                Err(_) => break,
            };
            let mut batch = vec![first];
            while let Ok(j) = rx.try_recv() {
                batch.push(j);
            }
            session.note_batch(batch.len());
            let mut stop = false;
            for job in batch {
                let queue_micros = job.enqueued.elapsed().as_micros() as u64;
                let (resp, shutdown) = session.handle_line_timed(&job.line, queue_micros);
                let _ = job.reply.send(resp);
                stop = stop || shutdown;
            }
            if stop {
                break 'outer;
            }
        }
        session
    });
    (ExecutorHandle { tx }, thread)
}

// ---------------------------------------------------------------------
// Unix-socket daemon
// ---------------------------------------------------------------------

/// Runs the daemon: binds `socket`, accepts any number of concurrent
/// clients, and feeds their JSON-lines requests into a shared executor.
/// Returns after a `shutdown` request has been answered (the socket file
/// is removed on the way out).
pub fn serve_unix(socket: &Path, session: Session) -> Result<(), String> {
    let _ = std::fs::remove_file(socket);
    let listener =
        UnixListener::bind(socket).map_err(|e| format!("cannot bind {}: {e}", socket.display()))?;
    let (handle, exec_thread) = spawn_executor(session);
    let shutting = Arc::new(AtomicBool::new(false));
    eprintln!("ompgpu serve: listening on {}", socket.display());
    for stream in listener.incoming() {
        if shutting.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let handle = handle.clone();
        let shutting = Arc::clone(&shutting);
        let sock: PathBuf = socket.to_path_buf();
        // Connection threads are detached: a client that never
        // disconnects must not block shutdown (its next send simply
        // fails once the executor is gone).
        std::thread::spawn(move || serve_connection(stream, handle, shutting, sock));
    }
    drop(listener);
    drop(handle);
    let _ = exec_thread.join();
    let _ = std::fs::remove_file(socket);
    Ok(())
}

fn serve_connection(
    stream: UnixStream,
    handle: ExecutorHandle,
    shutting: Arc<AtomicBool>,
    socket: PathBuf,
) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let resp = handle.request(&line);
        if writer.write_all(resp.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            break;
        }
        let _ = writer.flush();
        // An acknowledged shutdown stops the accept loop: set the flag
        // and poke the listener with a throwaway connection.
        if response_is_shutdown(&resp) {
            shutting.store(true, Ordering::SeqCst);
            let _ = UnixStream::connect(&socket);
            break;
        }
    }
}

fn response_is_shutdown(resp: &str) -> bool {
    match omp_json::parse(resp) {
        Ok(v) => {
            v.get("op").and_then(Value::as_str) == Some("shutdown")
                && v.get("ok").and_then(Value::as_bool) == Some(true)
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
// oracle-kernel: scale
// oracle-teams: 2
// oracle-threads: 8
// oracle-arg: buf f64 32 iota
// oracle-arg: f64 3.0
// oracle-arg: i64 32
void scale(double* a, double f, long n) {
  #pragma omp target teams distribute parallel for
  for (long i = 0; i < n; i++) { a[i] = a[i] * f; }
}
"#;

    fn request(session: &mut Session, json: &str) -> Value {
        let (resp, _) = session.handle_line(json);
        omp_json::parse(&resp).expect("response is valid JSON")
    }

    fn result_of(v: &Value) -> String {
        v.get("result").expect("result present").to_json()
    }

    #[test]
    fn ping_stats_and_unknown_op() {
        let mut s = Session::default();
        let v = request(&mut s, "{\"op\":\"ping\",\"id\":7}");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
        let v = request(&mut s, "{\"op\":\"nope\"}");
        assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(2));
        let v = request(&mut s, "not json");
        assert_eq!(v.get("exit_code").and_then(Value::as_u64), Some(2));
        let v = request(&mut s, "{\"op\":\"stats\"}");
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("requests"))
                .and_then(Value::as_u64),
            Some(4),
            "stats counts every request including itself"
        );
    }

    #[test]
    fn compile_hits_cache_with_identical_result() {
        let mut s = Session::default();
        let line = format!(
            "{{\"op\":\"compile\",\"source\":{:?},\"config\":\"dev\"}}",
            SRC
        );
        let cold = request(&mut s, &line);
        assert_eq!(cold.get("ok").and_then(Value::as_bool), Some(true));
        let cache = cold.get("cache").unwrap();
        assert_eq!(
            cache
                .get("optimized")
                .and_then(|t| t.get("misses"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let warm = request(&mut s, &line);
        let cache = warm.get("cache").unwrap();
        assert_eq!(
            cache
                .get("optimized")
                .and_then(|t| t.get("hits"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            result_of(&cold),
            result_of(&warm),
            "cold and warm compile results must be byte-identical"
        );
    }

    #[test]
    fn run_via_oracle_header_is_warm_deterministic() {
        let mut s = Session::default();
        let line = format!("{{\"op\":\"run\",\"source\":{:?},\"dump\":4}}", SRC);
        let cold = request(&mut s, &line);
        assert_eq!(
            cold.get("exit_code").and_then(Value::as_u64),
            Some(0),
            "{}",
            cold.to_json()
        );
        let warm = request(&mut s, &line);
        assert_eq!(
            warm.get("cache")
                .and_then(|c| c.get("device"))
                .and_then(|t| t.get("hits"))
                .and_then(Value::as_u64),
            Some(1),
            "second run must reuse the warmed device"
        );
        assert_eq!(result_of(&cold), result_of(&warm));
    }

    #[test]
    fn verify_passes_and_is_warm_deterministic() {
        let mut s = Session::default();
        let line = format!(
            "{{\"op\":\"verify\",\"source\":{:?},\"name\":\"scale\"}}",
            SRC
        );
        let cold = request(&mut s, &line);
        assert_eq!(
            cold.get("exit_code").and_then(Value::as_u64),
            Some(0),
            "{}",
            cold.to_json()
        );
        assert_eq!(
            cold.get("result")
                .and_then(|r| r.get("passed"))
                .and_then(Value::as_bool),
            Some(true)
        );
        let warm = request(&mut s, &line);
        assert_eq!(result_of(&cold), result_of(&warm));
        assert!(
            warm.get("cache")
                .and_then(|c| c.get("device"))
                .and_then(|t| t.get("hits"))
                .and_then(Value::as_u64)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn executor_round_trip_and_shutdown() {
        let (handle, thread) = spawn_executor(Session::default());
        let resp = handle.request("{\"op\":\"ping\",\"id\":1}");
        assert!(resp.contains("\"pong\":true"));
        let resp = handle.request("{\"op\":\"shutdown\",\"id\":2}");
        assert!(response_is_shutdown(&resp));
        let session = thread.join().unwrap();
        assert_eq!(session.stats().requests, 2);
        // Post-shutdown requests fail gracefully.
        let resp = handle.request("{\"op\":\"ping\"}");
        assert!(resp.contains("session is shut down"));
    }

    /// Parse Prometheus text exposition into (plain samples, bucket samples).
    ///
    /// Plain samples map a metric name (including `_sum`/`_count` suffixes)
    /// to its value; bucket samples map `(name, le)` to a cumulative count.
    fn parse_prometheus(
        text: &str,
    ) -> (
        std::collections::BTreeMap<String, u64>,
        std::collections::BTreeMap<(String, String), u64>,
    ) {
        let mut plain = std::collections::BTreeMap::new();
        let mut buckets = std::collections::BTreeMap::new();
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name_part, value_part) = line.rsplit_once(' ').expect("sample has a value");
            let value: u64 = value_part.parse().expect("sample value parses as u64");
            if let Some(idx) = name_part.find('{') {
                let name = &name_part[..idx];
                let labels = name_part[idx..]
                    .strip_prefix("{le=\"")
                    .and_then(|s| s.strip_suffix("\"}"))
                    .expect("only le labels are emitted");
                assert!(name.ends_with("_bucket"), "labelled sample is a bucket");
                buckets.insert((name.to_string(), labels.to_string()), value);
            } else {
                plain.insert(name_part.to_string(), value);
            }
        }
        (plain, buckets)
    }

    #[test]
    fn metrics_exposition_is_consistent() {
        let mut s = Session::default();
        request(&mut s, "{\"op\":\"ping\"}");
        let line = format!("{{\"op\":\"run\",\"source\":{:?}}}", SRC);
        request(&mut s, &line);
        request(&mut s, &line);
        request(&mut s, "{\"op\":\"nonsense\"}");
        let resp = request(&mut s, "{\"op\":\"metrics\"}");
        let result = resp.get("result").expect("metrics returns a result");
        let prom = result
            .get("prometheus")
            .and_then(Value::as_str)
            .expect("prometheus text rendering");
        let json = result.get("metrics").expect("json rendering");

        let (plain, buckets) = parse_prometheus(prom);

        // Deterministic counters derived from SessionStats.
        let counters = json
            .get("counters")
            .and_then(Value::as_object)
            .expect("counters object");
        assert!(!counters.is_empty());
        for (name, value) in counters {
            let v = value.as_u64().expect("counter is u64");
            let sanitized = omp_telemetry::sanitize_metric_name(name);
            assert_eq!(
                plain.get(&sanitized).copied(),
                Some(v),
                "counter {name} must match between renderings"
            );
        }
        assert_eq!(
            counters
                .iter()
                .find(|(k, _)| k == "serve.requests")
                .and_then(|(_, v)| v.as_u64()),
            Some(5),
            "metrics request counts itself"
        );
        assert_eq!(
            counters
                .iter()
                .find(|(k, _)| k == "serve.ops.metrics")
                .and_then(|(_, v)| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            counters
                .iter()
                .find(|(k, _)| k == "serve.errors")
                .and_then(|(_, v)| v.as_u64()),
            Some(1),
            "the unknown op is the only error"
        );

        // Gauges appear in both renderings too.
        for (name, value) in json.get("gauges").and_then(Value::as_object).unwrap() {
            let v = value.as_i64().expect("gauge is i64");
            let sanitized = omp_telemetry::sanitize_metric_name(name);
            assert_eq!(plain.get(&sanitized).copied(), Some(v as u64));
        }

        // Histograms: _count/_sum and cumulative buckets must agree with the
        // JSON rendering's non-cumulative, non-empty bucket map.
        let histograms = json
            .get("histograms")
            .and_then(Value::as_object)
            .expect("histograms object");
        assert!(
            histograms
                .iter()
                .any(|(k, _)| k == "serve.service_micros.run"),
            "per-op latency histogram is exported"
        );
        for (name, h) in histograms {
            let sanitized = omp_telemetry::sanitize_metric_name(name);
            let count = h.get("count").and_then(Value::as_u64).unwrap();
            let sum = h.get("sum").and_then(Value::as_u64).unwrap();
            assert_eq!(
                plain.get(&format!("{sanitized}_count")).copied(),
                Some(count)
            );
            assert_eq!(plain.get(&format!("{sanitized}_sum")).copied(), Some(sum));
            let bucket_name = format!("{sanitized}_bucket");
            assert_eq!(
                buckets
                    .get(&(bucket_name.clone(), "+Inf".to_string()))
                    .copied(),
                Some(count),
                "{name}: +Inf bucket is the total count"
            );
            // De-cumulate the finite text buckets and compare with JSON.
            let mut finite: Vec<(u64, u64)> = buckets
                .iter()
                .filter(|((n, le), _)| n == &bucket_name && le != "+Inf")
                .map(|((_, le), v)| (le.parse::<u64>().expect("finite bound"), *v))
                .collect();
            finite.sort_unstable();
            let mut prev = 0u64;
            let mut derived: Vec<(String, u64)> = Vec::new();
            for (bound, cumulative) in finite {
                let per_bucket = cumulative - prev;
                prev = cumulative;
                if per_bucket > 0 {
                    derived.push((bound.to_string(), per_bucket));
                }
            }
            let json_buckets: Vec<(String, u64)> = h
                .get("buckets")
                .and_then(Value::as_object)
                .unwrap()
                .iter()
                .filter(|(k, _)| k != "inf")
                .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
                .collect();
            assert_eq!(derived, json_buckets, "{name}: bucket counts must agree");
        }
    }

    #[test]
    fn access_log_writes_one_record_per_request() {
        let path = std::env::temp_dir().join(format!(
            "ompgpu_access_log_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut s = Session::default();
        s.set_access_log(&path).expect("access log opens");
        request(&mut s, "{\"op\":\"ping\",\"id\":7}");
        let (resp, _) = s.handle_line("not json");
        assert!(resp.contains("\"ok\":false"));
        let log = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2, "one record per request");
        let first = omp_json::parse(lines[0]).expect("access-log line is valid JSON");
        assert_eq!(
            first.get("schema").and_then(Value::as_str),
            Some(omp_telemetry::ACCESS_LOG_SCHEMA)
        );
        assert_eq!(first.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(first.get("op").and_then(Value::as_str), Some("ping"));
        assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true));
        assert!(first.get("bytes").and_then(Value::as_u64).unwrap() > 0);
        let second = omp_json::parse(lines[1]).unwrap();
        assert_eq!(second.get("ok").and_then(Value::as_bool), Some(false));
        assert!(second.get("op").unwrap().as_str().is_none(), "op is null");
    }

    #[test]
    fn device_lru_evicts_oldest() {
        let mut s = Session::new(1);
        let src_b = SRC.replace("scale", "scale2");
        let line_a = format!("{{\"op\":\"run\",\"source\":{:?}}}", SRC);
        let line_b = format!("{{\"op\":\"run\",\"source\":{:?}}}", src_b);
        request(&mut s, &line_a);
        request(&mut s, &line_b);
        let third = request(&mut s, &line_a);
        assert_eq!(
            third
                .get("cache")
                .and_then(|c| c.get("device"))
                .and_then(|t| t.get("misses"))
                .and_then(Value::as_u64),
            Some(1),
            "capacity-1 LRU must have evicted the first device"
        );
        assert_eq!(s.stats().device.hits, 0);
    }
}
